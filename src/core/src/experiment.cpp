#include "fmore/core/experiment.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "fmore/auction/mechanism.hpp"
#include "fmore/core/run_checkpoint.hpp"
#include "fmore/fl/policy.hpp"
#include "fmore/util/fault_injector.hpp"

namespace fmore::core {

// ---------------------------------------------------------------------------
// Equality
// ---------------------------------------------------------------------------

bool operator==(const PopulationSpec& a, const PopulationSpec& b) {
    return a.num_nodes == b.num_nodes && a.shards_lo == b.shards_lo
           && a.shards_hi == b.shards_hi && a.data_lo == b.data_lo
           && a.data_hi == b.data_hi && a.cpu_lo == b.cpu_lo && a.cpu_hi == b.cpu_hi
           && a.bandwidth_lo == b.bandwidth_lo && a.bandwidth_hi == b.bandwidth_hi
           && a.theta_lo == b.theta_lo && a.theta_hi == b.theta_hi
           && a.resource_jitter == b.resource_jitter && a.theta_jitter == b.theta_jitter;
}

bool operator==(const AuctionSpec& a, const AuctionSpec& b) {
    return a.mechanism == b.mechanism && a.winners == b.winners && a.alpha == b.alpha
           && a.alpha_cpu == b.alpha_cpu && a.alpha_bandwidth == b.alpha_bandwidth
           && a.alpha_data == b.alpha_data && a.beta_data == b.beta_data
           && a.beta_category == b.beta_category && a.psi == b.psi
           && a.psi_per_node == b.psi_per_node && a.budget == b.budget
           && a.payment_rule == b.payment_rule && a.win_model == b.win_model
           && a.full_scoreboard == b.full_scoreboard && a.shards == b.shards
           && a.shard_timeout_s == b.shard_timeout_s
           && a.latency_discount == b.latency_discount
           && a.fault_plan == b.fault_plan
           && a.shard_respawn_backoff_s == b.shard_respawn_backoff_s
           && a.shard_max_respawns == b.shard_max_respawns
           && a.shard_quorum == b.shard_quorum;
}

bool operator==(const TrainingSpec& a, const TrainingSpec& b) {
    return a.dataset == b.dataset && a.train_samples == b.train_samples
           && a.test_samples == b.test_samples && a.rounds == b.rounds
           && a.local_epochs == b.local_epochs && a.batch_size == b.batch_size
           && a.learning_rate == b.learning_rate && a.eval_cap == b.eval_cap;
}

bool operator==(const TimingSpec& a, const TimingSpec& b) {
    return a.enabled == b.enabled && a.model_bytes == b.model_bytes
           && a.seconds_per_sample_core == b.seconds_per_sample_core
           && a.round_overhead_s == b.round_overhead_s
           && a.round_mode == b.round_mode && a.min_updates == b.min_updates
           && a.round_deadline_s == b.round_deadline_s
           && a.staleness_alpha == b.staleness_alpha
           && a.max_staleness == b.max_staleness
           && a.latency_spread == b.latency_spread
           && a.dropout_prob == b.dropout_prob && a.streaming == b.streaming
           && a.arrival_process == b.arrival_process
           && a.arrival_rate_hz == b.arrival_rate_hz
           && a.adaptive_quorum == b.adaptive_quorum
           && a.checkpoint_every == b.checkpoint_every
           && a.checkpoint_dir == b.checkpoint_dir
           && a.checkpoint_keep == b.checkpoint_keep;
}

bool operator==(const ExperimentSpec& a, const ExperimentSpec& b) {
    return a.kind == b.kind && a.seed == b.seed && a.population == b.population
           && a.auction == b.auction && a.training == b.training && a.timing == b.timing;
}

// ---------------------------------------------------------------------------
// Defaults
// ---------------------------------------------------------------------------

std::string to_string(ExperimentKind kind) {
    switch (kind) {
        case ExperimentKind::simulation: return "simulation";
        case ExperimentKind::testbed: return "testbed";
    }
    return "?";
}

// Both default factories lift the legacy defaults through the shims so the
// numbers live in exactly one place (config.hpp / default_simulation).

ExperimentSpec default_experiment(DatasetKind dataset) {
    return from_simulation_config(default_simulation(dataset));
}

ExperimentSpec default_testbed_experiment() {
    return from_realworld_config(RealWorldConfig{});
}

// ---------------------------------------------------------------------------
// Compatibility shims
// ---------------------------------------------------------------------------

SimulationConfig to_simulation_config(const ExperimentSpec& spec) {
    if (spec.kind != ExperimentKind::simulation)
        throw std::invalid_argument(
            "to_simulation_config: spec.kind is 'testbed'; use to_realworld_config "
            "(or run through ExperimentTrial, which dispatches on kind)");
    SimulationConfig config;
    config.dataset = spec.training.dataset;
    config.train_samples = spec.training.train_samples;
    config.test_samples = spec.training.test_samples;
    config.num_nodes = spec.population.num_nodes;
    config.winners = spec.auction.winners;
    config.rounds = spec.training.rounds;
    config.shards_lo = spec.population.shards_lo;
    config.shards_hi = spec.population.shards_hi;
    config.data_lo = spec.population.data_lo;
    config.data_hi = spec.population.data_hi;
    config.alpha = spec.auction.alpha;
    config.theta_lo = spec.population.theta_lo;
    config.theta_hi = spec.population.theta_hi;
    config.beta_data = spec.auction.beta_data;
    config.beta_category = spec.auction.beta_category;
    config.psi = spec.auction.psi;
    config.psi_per_node = spec.auction.psi_per_node;
    config.budget = spec.auction.budget;
    config.mechanism = spec.auction.mechanism;
    config.payment_rule = spec.auction.payment_rule;
    config.win_model = spec.auction.win_model;
    config.full_scoreboard = spec.auction.full_scoreboard;
    config.market_shards = spec.auction.shards;
    config.shard_timeout_s = spec.auction.shard_timeout_s;
    config.latency_discount = spec.auction.latency_discount;
    config.fault_plan = spec.auction.fault_plan;
    config.shard_respawn_backoff_s = spec.auction.shard_respawn_backoff_s;
    config.shard_max_respawns = spec.auction.shard_max_respawns;
    config.shard_quorum = spec.auction.shard_quorum;
    config.resource_jitter = spec.population.resource_jitter;
    config.theta_jitter = spec.population.theta_jitter;
    config.local_epochs = spec.training.local_epochs;
    config.batch_size = spec.training.batch_size;
    config.learning_rate = spec.training.learning_rate;
    config.eval_cap = spec.training.eval_cap;
    config.checkpoint_every = spec.timing.checkpoint_every;
    config.checkpoint_dir = spec.timing.checkpoint_dir;
    config.checkpoint_keep = spec.timing.checkpoint_keep;
    config.seed = spec.seed;
    return config;
}

RealWorldConfig to_realworld_config(const ExperimentSpec& spec) {
    if (spec.kind != ExperimentKind::testbed)
        throw std::invalid_argument(
            "to_realworld_config: spec.kind is 'simulation'; use to_simulation_config "
            "(or run through ExperimentTrial, which dispatches on kind)");
    RealWorldConfig config;
    config.dataset = spec.training.dataset;
    config.train_samples = spec.training.train_samples;
    config.test_samples = spec.training.test_samples;
    config.num_nodes = spec.population.num_nodes;
    config.winners = spec.auction.winners;
    config.rounds = spec.training.rounds;
    config.data_lo = spec.population.data_lo;
    config.data_hi = spec.population.data_hi;
    config.cpu_lo = spec.population.cpu_lo;
    config.cpu_hi = spec.population.cpu_hi;
    config.bandwidth_lo = spec.population.bandwidth_lo;
    config.bandwidth_hi = spec.population.bandwidth_hi;
    config.alpha_cpu = spec.auction.alpha_cpu;
    config.alpha_bandwidth = spec.auction.alpha_bandwidth;
    config.alpha_data = spec.auction.alpha_data;
    config.theta_lo = spec.population.theta_lo;
    config.theta_hi = spec.population.theta_hi;
    config.psi = spec.auction.psi;
    config.psi_per_node = spec.auction.psi_per_node;
    config.budget = spec.auction.budget;
    config.mechanism = spec.auction.mechanism;
    config.payment_rule = spec.auction.payment_rule;
    config.win_model = spec.auction.win_model;
    config.full_scoreboard = spec.auction.full_scoreboard;
    config.market_shards = spec.auction.shards;
    config.shard_timeout_s = spec.auction.shard_timeout_s;
    config.latency_discount = spec.auction.latency_discount;
    config.fault_plan = spec.auction.fault_plan;
    config.shard_respawn_backoff_s = spec.auction.shard_respawn_backoff_s;
    config.shard_max_respawns = spec.auction.shard_max_respawns;
    config.shard_quorum = spec.auction.shard_quorum;
    config.resource_jitter = spec.population.resource_jitter;
    config.theta_jitter = spec.population.theta_jitter;
    config.local_epochs = spec.training.local_epochs;
    config.batch_size = spec.training.batch_size;
    config.learning_rate = spec.training.learning_rate;
    config.eval_cap = spec.training.eval_cap;
    config.model_bytes = spec.timing.model_bytes;
    config.seconds_per_sample_core = spec.timing.seconds_per_sample_core;
    config.round_overhead_s = spec.timing.round_overhead_s;
    config.round_mode = spec.timing.round_mode;
    config.min_updates = spec.timing.min_updates;
    config.round_deadline_s = spec.timing.round_deadline_s;
    config.staleness_alpha = spec.timing.staleness_alpha;
    config.max_staleness = spec.timing.max_staleness;
    config.latency_spread = spec.timing.latency_spread;
    config.dropout_prob = spec.timing.dropout_prob;
    config.streaming = spec.timing.streaming;
    config.arrival_process = spec.timing.arrival_process;
    config.arrival_rate_hz = spec.timing.arrival_rate_hz;
    config.adaptive_quorum = spec.timing.adaptive_quorum;
    config.latency_discount = spec.auction.latency_discount;
    config.checkpoint_every = spec.timing.checkpoint_every;
    config.checkpoint_dir = spec.timing.checkpoint_dir;
    config.checkpoint_keep = spec.timing.checkpoint_keep;
    config.seed = spec.seed;
    return config;
}

ExperimentSpec from_simulation_config(const SimulationConfig& config) {
    ExperimentSpec spec;
    spec.kind = ExperimentKind::simulation;
    spec.seed = config.seed;
    spec.population.num_nodes = config.num_nodes;
    spec.population.shards_lo = config.shards_lo;
    spec.population.shards_hi = config.shards_hi;
    spec.population.data_lo = config.data_lo;
    spec.population.data_hi = config.data_hi;
    spec.population.theta_lo = config.theta_lo;
    spec.population.theta_hi = config.theta_hi;
    spec.population.resource_jitter = config.resource_jitter;
    spec.population.theta_jitter = config.theta_jitter;
    spec.auction.mechanism = config.mechanism;
    spec.auction.winners = config.winners;
    spec.auction.alpha = config.alpha;
    spec.auction.beta_data = config.beta_data;
    spec.auction.beta_category = config.beta_category;
    spec.auction.psi = config.psi;
    spec.auction.psi_per_node = config.psi_per_node;
    spec.auction.budget = config.budget;
    spec.auction.payment_rule = config.payment_rule;
    spec.auction.win_model = config.win_model;
    spec.auction.full_scoreboard = config.full_scoreboard;
    spec.auction.shards = config.market_shards;
    spec.auction.shard_timeout_s = config.shard_timeout_s;
    spec.auction.latency_discount = config.latency_discount;
    spec.auction.fault_plan = config.fault_plan;
    spec.auction.shard_respawn_backoff_s = config.shard_respawn_backoff_s;
    spec.auction.shard_max_respawns = config.shard_max_respawns;
    spec.auction.shard_quorum = config.shard_quorum;
    spec.training.dataset = config.dataset;
    spec.training.train_samples = config.train_samples;
    spec.training.test_samples = config.test_samples;
    spec.training.rounds = config.rounds;
    spec.training.local_epochs = config.local_epochs;
    spec.training.batch_size = config.batch_size;
    spec.training.learning_rate = config.learning_rate;
    spec.training.eval_cap = config.eval_cap;
    spec.timing.enabled = false;
    spec.timing.checkpoint_every = config.checkpoint_every;
    spec.timing.checkpoint_dir = config.checkpoint_dir;
    spec.timing.checkpoint_keep = config.checkpoint_keep;
    return spec;
}

ExperimentSpec from_realworld_config(const RealWorldConfig& config) {
    ExperimentSpec spec;
    spec.kind = ExperimentKind::testbed;
    spec.seed = config.seed;
    spec.population.num_nodes = config.num_nodes;
    spec.population.data_lo = config.data_lo;
    spec.population.data_hi = config.data_hi;
    spec.population.cpu_lo = config.cpu_lo;
    spec.population.cpu_hi = config.cpu_hi;
    spec.population.bandwidth_lo = config.bandwidth_lo;
    spec.population.bandwidth_hi = config.bandwidth_hi;
    spec.population.theta_lo = config.theta_lo;
    spec.population.theta_hi = config.theta_hi;
    spec.population.resource_jitter = config.resource_jitter;
    spec.population.theta_jitter = config.theta_jitter;
    spec.auction.mechanism = config.mechanism;
    spec.auction.winners = config.winners;
    spec.auction.alpha_cpu = config.alpha_cpu;
    spec.auction.alpha_bandwidth = config.alpha_bandwidth;
    spec.auction.alpha_data = config.alpha_data;
    spec.auction.psi = config.psi;
    spec.auction.psi_per_node = config.psi_per_node;
    spec.auction.budget = config.budget;
    spec.auction.payment_rule = config.payment_rule;
    spec.auction.win_model = config.win_model;
    spec.auction.full_scoreboard = config.full_scoreboard;
    spec.auction.shards = config.market_shards;
    spec.auction.shard_timeout_s = config.shard_timeout_s;
    spec.auction.latency_discount = config.latency_discount;
    spec.auction.fault_plan = config.fault_plan;
    spec.auction.shard_respawn_backoff_s = config.shard_respawn_backoff_s;
    spec.auction.shard_max_respawns = config.shard_max_respawns;
    spec.auction.shard_quorum = config.shard_quorum;
    spec.training.dataset = config.dataset;
    spec.training.train_samples = config.train_samples;
    spec.training.test_samples = config.test_samples;
    spec.training.rounds = config.rounds;
    spec.training.local_epochs = config.local_epochs;
    spec.training.batch_size = config.batch_size;
    spec.training.learning_rate = config.learning_rate;
    spec.training.eval_cap = config.eval_cap;
    spec.timing.enabled = true;
    spec.timing.model_bytes = config.model_bytes;
    spec.timing.seconds_per_sample_core = config.seconds_per_sample_core;
    spec.timing.round_overhead_s = config.round_overhead_s;
    spec.timing.round_mode = config.round_mode;
    spec.timing.min_updates = config.min_updates;
    spec.timing.round_deadline_s = config.round_deadline_s;
    spec.timing.staleness_alpha = config.staleness_alpha;
    spec.timing.max_staleness = config.max_staleness;
    spec.timing.latency_spread = config.latency_spread;
    spec.timing.dropout_prob = config.dropout_prob;
    spec.timing.streaming = config.streaming;
    spec.timing.arrival_process = config.arrival_process;
    spec.timing.arrival_rate_hz = config.arrival_rate_hz;
    spec.timing.adaptive_quorum = config.adaptive_quorum;
    spec.timing.checkpoint_every = config.checkpoint_every;
    spec.timing.checkpoint_dir = config.checkpoint_dir;
    spec.timing.checkpoint_keep = config.checkpoint_keep;
    return spec;
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

namespace {

bool bad(double value) { return std::isnan(value) || std::isinf(value); }

std::string num(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%g", value);
    return buffer;
}

} // namespace

std::vector<std::string> validate(const ExperimentSpec& spec) {
    std::vector<std::string> errors;
    auto fail = [&errors](const std::string& message) { errors.push_back(message); };

    const PopulationSpec& pop = spec.population;
    if (pop.num_nodes == 0) fail("population.num_nodes = 0: need at least one edge node");
    if (pop.shards_lo == 0 || pop.shards_lo > pop.shards_hi)
        fail("population.shards_lo.." + std::to_string(pop.shards_lo) + ".."
             + std::to_string(pop.shards_hi)
             + ": need 1 <= shards_lo <= shards_hi (per-node label-shard range)");
    if (pop.data_lo == 0 || pop.data_lo > pop.data_hi)
        fail("population.data_lo = " + std::to_string(pop.data_lo) + ", data_hi = "
             + std::to_string(pop.data_hi) + ": need 1 <= data_lo <= data_hi");
    if (bad(pop.theta_lo) || bad(pop.theta_hi) || !(pop.theta_lo > 0.0)
        || !(pop.theta_hi > pop.theta_lo))
        fail("population.theta = [" + num(pop.theta_lo) + ", " + num(pop.theta_hi)
             + "]: need 0 < theta_lo < theta_hi (private cost-type support)");
    if (bad(pop.resource_jitter) || pop.resource_jitter < 0.0)
        fail("population.resource_jitter = " + num(pop.resource_jitter)
             + ": must be finite and >= 0");
    if (bad(pop.theta_jitter) || pop.theta_jitter < 0.0)
        fail("population.theta_jitter = " + num(pop.theta_jitter)
             + ": must be finite and >= 0");
    if (spec.kind == ExperimentKind::testbed) {
        if (!(pop.cpu_lo > 0.0) || !(pop.cpu_hi >= pop.cpu_lo))
            fail("population.cpu = [" + num(pop.cpu_lo) + ", " + num(pop.cpu_hi)
                 + "]: need 0 < cpu_lo <= cpu_hi");
        if (!(pop.bandwidth_lo > 0.0) || !(pop.bandwidth_hi >= pop.bandwidth_lo))
            fail("population.bandwidth = [" + num(pop.bandwidth_lo) + ", "
                 + num(pop.bandwidth_hi) + "]: need 0 < bandwidth_lo <= bandwidth_hi");
    }

    const AuctionSpec& auc = spec.auction;
    if (auc.winners == 0) fail("auction.winners = 0: K must be >= 1");
    if (pop.num_nodes > 0 && auc.winners >= pop.num_nodes)
        fail("auction.winners = " + std::to_string(auc.winners)
             + " but population.num_nodes = " + std::to_string(pop.num_nodes)
             + ": the equilibrium needs K < N (losing must be possible)");
    if (bad(auc.psi) || !(auc.psi > 0.0 && auc.psi <= 1.0))
        fail("auction.psi = " + num(auc.psi)
             + ": must be a finite probability in (0, 1] (1.0 disables "
               "probabilistic acceptance)");
    for (std::size_t i = 0; i < auc.psi_per_node.size(); ++i) {
        const double p = auc.psi_per_node[i];
        if (bad(p) || !(p > 0.0 && p <= 1.0)) {
            fail("auction.psi_per_node[" + std::to_string(i) + "] = " + num(p)
                 + ": must be a finite probability in (0, 1]");
            break; // one message per problem class keeps the list readable
        }
    }
    if (!auc.psi_per_node.empty() && auc.psi_per_node.size() < pop.num_nodes)
        fail("auction.psi_per_node has " + std::to_string(auc.psi_per_node.size())
             + " entries but population.num_nodes = " + std::to_string(pop.num_nodes)
             + ": per-node psi is indexed by NodeId and must cover every node");
    if (bad(auc.budget) || auc.budget < 0.0)
        fail("auction.budget = " + num(auc.budget)
             + ": must be finite and >= 0 (0 = unconstrained)");
    if (auc.shards == 0)
        fail("auction.shards = 0: the market needs at least one shard "
             "(1 = the monolithic selector)");
    if (pop.num_nodes > 0 && auc.shards > pop.num_nodes)
        fail("auction.shards = " + std::to_string(auc.shards)
             + " but population.num_nodes = " + std::to_string(pop.num_nodes)
             + ": every shard needs at least one node");
    if (bad(auc.shard_timeout_s) || auc.shard_timeout_s < 0.0)
        fail("auction.shard_timeout_s = " + num(auc.shard_timeout_s)
             + ": must be finite and >= 0 (0 disables the deadline)");
    if (auc.shard_timeout_s > 0.0 && auc.shards <= 1)
        fail("auction.shard_timeout_s = " + num(auc.shard_timeout_s)
             + " with auction.shards = " + std::to_string(auc.shards)
             + ": a bid deadline only applies to a sharded market (shards > 1)");
    if (bad(auc.latency_discount) || auc.latency_discount < 0.0)
        fail("auction.latency_discount = " + num(auc.latency_discount)
             + ": must be finite and >= 0 (0 disables latency-discounted "
               "pricing)");
    bool plan_has_shard_faults = false;
    if (!auc.fault_plan.empty()) {
        try {
            plan_has_shard_faults =
                util::FaultInjector::from_spec(auc.fault_plan).has_shard_faults();
        } catch (const std::invalid_argument& error) {
            fail("auction.fault_plan = '" + auc.fault_plan + "': " + error.what());
        }
        // Coordinator-kill faults (ckill/ckill_mid) target the run itself, not
        // the shard workers, so they are legal on a monolithic market too.
        if (plan_has_shard_faults && auc.shards <= 1)
            fail("auction.fault_plan = '" + auc.fault_plan + "' with auction.shards = "
                 + std::to_string(auc.shards)
                 + ": shard-fault injection targets shard workers, so it needs a "
                   "sharded market (shards > 1); coordinator-only plans "
                   "(ckill/ckill_mid) are exempt");
    }
    if (bad(auc.shard_respawn_backoff_s) || auc.shard_respawn_backoff_s < 0.0)
        fail("auction.shard_respawn_backoff_s = " + num(auc.shard_respawn_backoff_s)
             + ": must be finite and >= 0 (0 respawns at the next round boundary)");
    if ((auc.shard_max_respawns > 0 || auc.shard_quorum > 0) && auc.shards <= 1)
        fail("auction.shard_max_respawns/shard_quorum set with auction.shards = "
             + std::to_string(auc.shards)
             + ": shard supervision needs a sharded market (shards > 1)");
    if (auc.shard_quorum > auc.shards)
        fail("auction.shard_quorum = " + std::to_string(auc.shard_quorum)
             + " exceeds auction.shards = " + std::to_string(auc.shards)
             + ": a quorum above the shard count can never be met");
    if (auc.mechanism == "first_score"
        && auc.payment_rule == auction::PaymentRule::second_price)
        fail("auction.mechanism = 'first_score' but auction.payment_rule = "
             "'second_price': the first_score mechanism pins first-score payments, "
             "so the rule would be silently ignored — set mechanism = second_score "
             "(or drop the payment_rule override)");
    if (!auc.mechanism.empty()
        && !auction::MechanismRegistry::instance().contains(auc.mechanism)) {
        std::string known;
        for (const std::string& name : auction::MechanismRegistry::instance().names()) {
            if (!known.empty()) known += ", ";
            known += name;
        }
        fail("auction.mechanism = '" + auc.mechanism
             + "': not in the MechanismRegistry (registered: " + known + ")");
    }
    if (spec.kind == ExperimentKind::simulation) {
        if (bad(auc.alpha) || !(auc.alpha > 0.0))
            fail("auction.alpha = " + num(auc.alpha)
                 + ": the scaled-product scoring coefficient must be > 0");
        if (bad(auc.beta_data) || auc.beta_data <= 0.0 || bad(auc.beta_category)
            || auc.beta_category <= 0.0)
            fail("auction.beta_data/beta_category = " + num(auc.beta_data) + "/"
                 + num(auc.beta_category) + ": cost weights must be > 0");
    } else {
        if (bad(auc.alpha_cpu) || auc.alpha_cpu < 0.0 || bad(auc.alpha_bandwidth)
            || auc.alpha_bandwidth < 0.0 || bad(auc.alpha_data) || auc.alpha_data < 0.0)
            fail("auction.alpha_cpu/alpha_bandwidth/alpha_data = " + num(auc.alpha_cpu)
                 + "/" + num(auc.alpha_bandwidth) + "/" + num(auc.alpha_data)
                 + ": additive scoring weights must be finite and >= 0");
    }

    const TrainingSpec& train = spec.training;
    if (train.train_samples == 0 || train.test_samples == 0)
        fail("training.train_samples/test_samples = "
             + std::to_string(train.train_samples) + "/"
             + std::to_string(train.test_samples) + ": both must be >= 1");
    if (train.rounds == 0) fail("training.rounds = 0: need at least one round");
    if (train.local_epochs == 0) fail("training.local_epochs = 0: need at least one");
    if (train.batch_size == 0) fail("training.batch_size = 0: need at least one");
    if (bad(train.learning_rate) || !(train.learning_rate > 0.0))
        fail("training.learning_rate = " + num(train.learning_rate) + ": must be > 0");

    const TimingSpec& timing = spec.timing;
    if (spec.kind == ExperimentKind::testbed && !timing.enabled)
        fail("timing.enabled = false on a testbed spec: the testbed engine always "
             "models wall-clock time (it cannot be switched off); leave it true");
    if (spec.kind == ExperimentKind::simulation && timing.enabled)
        fail("timing.enabled = true on a simulation spec: the simulator has no "
             "wall-clock model; use kind = testbed for timed experiments");
    if (timing.enabled) {
        if (bad(timing.model_bytes) || !(timing.model_bytes > 0.0))
            fail("timing.model_bytes = " + num(timing.model_bytes) + ": must be > 0");
        if (bad(timing.seconds_per_sample_core)
            || !(timing.seconds_per_sample_core > 0.0))
            fail("timing.seconds_per_sample_core = " + num(timing.seconds_per_sample_core)
                 + ": must be > 0");
        if (bad(timing.round_overhead_s) || timing.round_overhead_s < 0.0)
            fail("timing.round_overhead_s = " + num(timing.round_overhead_s)
                 + ": must be finite and >= 0");
    }
    if (timing.round_mode != fl::RoundMode::sync
        && spec.kind != ExperimentKind::testbed)
        fail("timing.round_mode = " + fl::to_string(timing.round_mode)
             + " on a simulation spec: async/semi-sync rounds need the wall-clock "
               "model; use kind = testbed");
    if (!timing.streaming && timing.min_updates > auc.winners)
        fail("timing.min_updates = " + std::to_string(timing.min_updates)
             + " but auction.winners = " + std::to_string(auc.winners)
             + ": a round cannot wait for more updates than it dispatches");
    if (timing.streaming && timing.min_updates > pop.num_nodes)
        fail("timing.min_updates = " + std::to_string(timing.min_updates)
             + " but population.num_nodes = " + std::to_string(pop.num_nodes)
             + ": the streaming bid quorum counts arrivals and can never "
               "exceed the population");
    if (bad(timing.round_deadline_s) || timing.round_deadline_s < 0.0)
        fail("timing.round_deadline_s = " + num(timing.round_deadline_s)
             + ": must be finite and >= 0");
    if (!timing.streaming && timing.round_mode == fl::RoundMode::sync
        && timing.round_deadline_s > 0.0 && timing.min_updates > 0)
        fail("timing.round_deadline_s = " + num(timing.round_deadline_s)
             + " with timing.min_updates = " + std::to_string(timing.min_updates)
             + " under timing.round_mode = 'sync': neither knob can ever fire — "
               "the synchronous barrier waits for every winner; set round_mode = "
               "semi_sync (deadline + quorum) or async (quorum), or set "
               "timing.streaming = true to close the AUCTION on deadline/quorum "
               "instead");
    if (timing.streaming && spec.kind != ExperimentKind::testbed)
        fail("timing.streaming = true on a simulation spec: the streaming market "
             "runs on the testbed's virtual clock; use kind = testbed");
    // timing.streaming with auction.shards > 1 is a supported composition:
    // the trial engine closes each streaming round through the sharded
    // head merge (StreamingMarket::close_round_sharded), bit-identical to
    // the monolithic close — and the cross-process aggregator streams the
    // same composition over its pipes. The shard-SUPERVISION knobs stay
    // batch-only, though: the in-process streaming close has no shard-drop
    // machinery (late bids are the deadline's job, not a shard timeout's).
    if (timing.streaming && auc.shards > 1) {
        if (auc.shard_timeout_s > 0.0)
            fail("auction.shard_timeout_s = " + num(auc.shard_timeout_s)
                 + " with timing.streaming = true: a streaming round closes on "
                   "timing.round_deadline_s / timing.min_updates, not on a "
                   "per-shard timeout; drop shard_timeout_s (the cross-process "
                   "aggregator's real-time read deadline is separate)");
        if (plan_has_shard_faults)
            fail("auction.fault_plan = '" + auc.fault_plan
                 + "' with timing.streaming = true: shard-fault injection drives "
                   "the batch shard supervisor; streaming trials have no "
                   "in-process shard-drop path — unset timing.streaming or the "
                   "fault plan (coordinator-only ckill/ckill_mid plans are fine)");
        if (auc.shard_quorum > 0)
            fail("auction.shard_quorum = " + std::to_string(auc.shard_quorum)
                 + " with timing.streaming = true: the SHARD quorum guards the "
                   "batch supervisor; a streaming round's quorum is the BID "
                   "quorum timing.min_updates");
    }
    if (timing.adaptive_quorum) {
        if (!timing.streaming)
            fail("timing.adaptive_quorum = true without timing.streaming: the "
                 "controller tunes the streaming bid quorum; set "
                 "timing.streaming = true (and kind = testbed)");
        if (timing.min_updates == 0)
            fail("timing.adaptive_quorum = true with timing.min_updates = 0: "
                 "the controller needs a starting quorum to tune; set "
                 "timing.min_updates >= 1");
        if (!(timing.round_deadline_s > 0.0))
            fail("timing.adaptive_quorum = true with timing.round_deadline_s = "
                 + num(timing.round_deadline_s)
                 + ": the control law measures close times against the bid "
                   "deadline; set timing.round_deadline_s > 0");
    }
    if (bad(timing.arrival_rate_hz) || timing.arrival_rate_hz < 0.0)
        fail("timing.arrival_rate_hz = " + num(timing.arrival_rate_hz)
             + ": must be finite and >= 0");
    if (timing.streaming && timing.arrival_process == mec::ArrivalProcess::poisson
        && !(timing.arrival_rate_hz > 0.0))
        fail("timing.arrival_process = 'poisson' needs timing.arrival_rate_hz > 0 "
             "(bids per second of virtual time)");
    if (bad(timing.staleness_alpha) || timing.staleness_alpha < 0.0)
        fail("timing.staleness_alpha = " + num(timing.staleness_alpha)
             + ": the polynomial decay exponent must be finite and >= 0");
    if (bad(timing.latency_spread) || timing.latency_spread < 0.0)
        fail("timing.latency_spread = " + num(timing.latency_spread)
             + ": the lognormal straggler sigma must be finite and >= 0");
    if (bad(timing.dropout_prob) || timing.dropout_prob < 0.0
        || timing.dropout_prob >= 1.0)
        fail("timing.dropout_prob = " + num(timing.dropout_prob)
             + ": must be a probability in [0, 1) (1 would drop every client "
               "forever)");
    if (timing.checkpoint_every > 0 && timing.checkpoint_dir.empty())
        fail("timing.checkpoint_every = " + std::to_string(timing.checkpoint_every)
             + " with an empty timing.checkpoint_dir: checkpoints need a "
               "directory to land in");
    if (timing.checkpoint_every > 0 && timing.checkpoint_keep == 0)
        fail("timing.checkpoint_keep = 0 with timing.checkpoint_every = "
             + std::to_string(timing.checkpoint_every)
             + ": retention must keep at least the newest checkpoint");
    if (timing.checkpoint_every == 0 && !timing.checkpoint_dir.empty())
        fail("timing.checkpoint_dir = '" + timing.checkpoint_dir
             + "' with timing.checkpoint_every = 0: set a cadence (rounds per "
               "checkpoint) or drop the directory");
    return errors;
}

void validate_or_throw(const ExperimentSpec& spec) {
    const std::vector<std::string> errors = validate(spec);
    if (errors.empty()) return;
    std::ostringstream message;
    message << "ExperimentSpec: " << errors.size() << " problem(s):";
    for (const std::string& error : errors) message << "\n  - " << error;
    throw std::invalid_argument(message.str());
}

// ---------------------------------------------------------------------------
// key=value (de)serialization
// ---------------------------------------------------------------------------

namespace {

std::string format_double(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

double parse_double(const std::string& key, const std::string& value) {
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        throw std::invalid_argument("ExperimentSpec: " + key + " = '" + value
                                    + "': not a number");
    return parsed;
}

std::size_t parse_size(const std::string& key, const std::string& value) {
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || value.find('-') != std::string::npos
        || errno == ERANGE)
        throw std::invalid_argument("ExperimentSpec: " + key + " = '" + value
                                    + "': not a non-negative integer (or out of range)");
    return static_cast<std::size_t>(parsed);
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
    return static_cast<std::uint64_t>(parse_size(key, value));
}

bool parse_bool(const std::string& key, const std::string& value) {
    if (value == "true" || value == "1") return true;
    if (value == "false" || value == "0") return false;
    throw std::invalid_argument("ExperimentSpec: " + key + " = '" + value
                                + "': expected true/false");
}

std::string format_list(const std::vector<double>& values) {
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i != 0) out += ',';
        out += format_double(values[i]);
    }
    return out;
}

std::vector<double> parse_list(const std::string& key, const std::string& value) {
    std::vector<double> out;
    if (value.empty()) return out;
    std::size_t start = 0;
    while (start <= value.size()) {
        const std::size_t comma = value.find(',', start);
        const std::string token = value.substr(
            start, comma == std::string::npos ? std::string::npos : comma - start);
        out.push_back(parse_double(key, token));
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return out;
}

std::string format_dataset(DatasetKind kind) {
    switch (kind) {
        case DatasetKind::mnist_o: return "mnist_o";
        case DatasetKind::mnist_f: return "mnist_f";
        case DatasetKind::cifar10: return "cifar10";
        case DatasetKind::hpnews: return "hpnews";
    }
    return "?";
}

DatasetKind parse_dataset(const std::string& key, const std::string& value) {
    if (value == "mnist_o") return DatasetKind::mnist_o;
    if (value == "mnist_f") return DatasetKind::mnist_f;
    if (value == "cifar10") return DatasetKind::cifar10;
    if (value == "hpnews") return DatasetKind::hpnews;
    throw std::invalid_argument("ExperimentSpec: " + key + " = '" + value
                                + "': expected mnist_o, mnist_f, cifar10 or hpnews");
}

/// One serializable spec field; getter renders, setter parses.
struct Field {
    const char* key;
    std::string (*get)(const ExperimentSpec&);
    void (*set)(ExperimentSpec&, const std::string&);
};

#define FMORE_FIELD_DOUBLE(key, expr)                                                    \
    Field{key, [](const ExperimentSpec& s) { return format_double(s.expr); },            \
          [](ExperimentSpec& s, const std::string& v) { s.expr = parse_double(key, v); }}
#define FMORE_FIELD_SIZE(key, expr)                                                      \
    Field{key, [](const ExperimentSpec& s) { return std::to_string(s.expr); },           \
          [](ExperimentSpec& s, const std::string& v) { s.expr = parse_size(key, v); }}

const std::vector<Field>& fields() {
    static const std::vector<Field> all = {
        Field{"kind",
              [](const ExperimentSpec& s) { return to_string(s.kind); },
              [](ExperimentSpec& s, const std::string& v) {
                  if (v == "simulation") s.kind = ExperimentKind::simulation;
                  else if (v == "testbed") s.kind = ExperimentKind::testbed;
                  else
                      throw std::invalid_argument("ExperimentSpec: kind = '" + v
                                                  + "': expected simulation or testbed");
              }},
        Field{"seed", [](const ExperimentSpec& s) { return std::to_string(s.seed); },
              [](ExperimentSpec& s, const std::string& v) {
                  s.seed = parse_u64("seed", v);
              }},
        FMORE_FIELD_SIZE("population.num_nodes", population.num_nodes),
        FMORE_FIELD_SIZE("population.shards_lo", population.shards_lo),
        FMORE_FIELD_SIZE("population.shards_hi", population.shards_hi),
        FMORE_FIELD_SIZE("population.data_lo", population.data_lo),
        FMORE_FIELD_SIZE("population.data_hi", population.data_hi),
        FMORE_FIELD_DOUBLE("population.cpu_lo", population.cpu_lo),
        FMORE_FIELD_DOUBLE("population.cpu_hi", population.cpu_hi),
        FMORE_FIELD_DOUBLE("population.bandwidth_lo", population.bandwidth_lo),
        FMORE_FIELD_DOUBLE("population.bandwidth_hi", population.bandwidth_hi),
        FMORE_FIELD_DOUBLE("population.theta_lo", population.theta_lo),
        FMORE_FIELD_DOUBLE("population.theta_hi", population.theta_hi),
        FMORE_FIELD_DOUBLE("population.resource_jitter", population.resource_jitter),
        FMORE_FIELD_DOUBLE("population.theta_jitter", population.theta_jitter),
        Field{"auction.mechanism",
              [](const ExperimentSpec& s) { return s.auction.mechanism; },
              [](ExperimentSpec& s, const std::string& v) { s.auction.mechanism = v; }},
        FMORE_FIELD_SIZE("auction.winners", auction.winners),
        FMORE_FIELD_DOUBLE("auction.alpha", auction.alpha),
        FMORE_FIELD_DOUBLE("auction.alpha_cpu", auction.alpha_cpu),
        FMORE_FIELD_DOUBLE("auction.alpha_bandwidth", auction.alpha_bandwidth),
        FMORE_FIELD_DOUBLE("auction.alpha_data", auction.alpha_data),
        FMORE_FIELD_DOUBLE("auction.beta_data", auction.beta_data),
        FMORE_FIELD_DOUBLE("auction.beta_category", auction.beta_category),
        FMORE_FIELD_DOUBLE("auction.psi", auction.psi),
        Field{"auction.psi_per_node",
              [](const ExperimentSpec& s) { return format_list(s.auction.psi_per_node); },
              [](ExperimentSpec& s, const std::string& v) {
                  s.auction.psi_per_node = parse_list("auction.psi_per_node", v);
              }},
        FMORE_FIELD_DOUBLE("auction.budget", auction.budget),
        FMORE_FIELD_SIZE("auction.shards", auction.shards),
        FMORE_FIELD_DOUBLE("auction.shard_timeout_s", auction.shard_timeout_s),
        FMORE_FIELD_DOUBLE("auction.latency_discount", auction.latency_discount),
        Field{"auction.fault_plan",
              [](const ExperimentSpec& s) { return s.auction.fault_plan; },
              [](ExperimentSpec& s, const std::string& v) { s.auction.fault_plan = v; }},
        FMORE_FIELD_DOUBLE("auction.shard_respawn_backoff_s",
                           auction.shard_respawn_backoff_s),
        FMORE_FIELD_SIZE("auction.shard_max_respawns", auction.shard_max_respawns),
        FMORE_FIELD_SIZE("auction.shard_quorum", auction.shard_quorum),
        Field{"auction.full_scoreboard",
              [](const ExperimentSpec& s) {
                  return std::string(s.auction.full_scoreboard ? "true" : "false");
              },
              [](ExperimentSpec& s, const std::string& v) {
                  s.auction.full_scoreboard = parse_bool("auction.full_scoreboard", v);
              }},
        Field{"auction.payment_rule",
              [](const ExperimentSpec& s) {
                  return std::string(s.auction.payment_rule
                                             == auction::PaymentRule::first_price
                                         ? "first_price"
                                         : "second_price");
              },
              [](ExperimentSpec& s, const std::string& v) {
                  if (v == "first_price")
                      s.auction.payment_rule = auction::PaymentRule::first_price;
                  else if (v == "second_price")
                      s.auction.payment_rule = auction::PaymentRule::second_price;
                  else
                      throw std::invalid_argument(
                          "ExperimentSpec: auction.payment_rule = '" + v
                          + "': expected first_price or second_price");
              }},
        Field{"auction.win_model",
              [](const ExperimentSpec& s) {
                  return std::string(s.auction.win_model == auction::WinModel::paper
                                         ? "paper"
                                         : "exact");
              },
              [](ExperimentSpec& s, const std::string& v) {
                  if (v == "paper") s.auction.win_model = auction::WinModel::paper;
                  else if (v == "exact") s.auction.win_model = auction::WinModel::exact;
                  else
                      throw std::invalid_argument("ExperimentSpec: auction.win_model = '"
                                                  + v + "': expected paper or exact");
              }},
        Field{"training.dataset",
              [](const ExperimentSpec& s) { return format_dataset(s.training.dataset); },
              [](ExperimentSpec& s, const std::string& v) {
                  s.training.dataset = parse_dataset("training.dataset", v);
              }},
        FMORE_FIELD_SIZE("training.train_samples", training.train_samples),
        FMORE_FIELD_SIZE("training.test_samples", training.test_samples),
        FMORE_FIELD_SIZE("training.rounds", training.rounds),
        FMORE_FIELD_SIZE("training.local_epochs", training.local_epochs),
        FMORE_FIELD_SIZE("training.batch_size", training.batch_size),
        FMORE_FIELD_DOUBLE("training.learning_rate", training.learning_rate),
        FMORE_FIELD_SIZE("training.eval_cap", training.eval_cap),
        Field{"timing.enabled",
              [](const ExperimentSpec& s) {
                  return std::string(s.timing.enabled ? "true" : "false");
              },
              [](ExperimentSpec& s, const std::string& v) {
                  s.timing.enabled = parse_bool("timing.enabled", v);
              }},
        FMORE_FIELD_DOUBLE("timing.model_bytes", timing.model_bytes),
        FMORE_FIELD_DOUBLE("timing.seconds_per_sample_core",
                           timing.seconds_per_sample_core),
        FMORE_FIELD_DOUBLE("timing.round_overhead_s", timing.round_overhead_s),
        Field{"timing.round_mode",
              [](const ExperimentSpec& s) {
                  return fl::to_string(s.timing.round_mode);
              },
              [](ExperimentSpec& s, const std::string& v) {
                  try {
                      s.timing.round_mode = fl::parse_round_mode(v);
                  } catch (const std::invalid_argument&) {
                      throw std::invalid_argument(
                          "ExperimentSpec: timing.round_mode = '" + v
                          + "': expected sync, semi_sync or async");
                  }
              }},
        FMORE_FIELD_SIZE("timing.min_updates", timing.min_updates),
        FMORE_FIELD_DOUBLE("timing.round_deadline_s", timing.round_deadline_s),
        FMORE_FIELD_DOUBLE("timing.staleness_alpha", timing.staleness_alpha),
        FMORE_FIELD_SIZE("timing.max_staleness", timing.max_staleness),
        FMORE_FIELD_DOUBLE("timing.latency_spread", timing.latency_spread),
        FMORE_FIELD_DOUBLE("timing.dropout_prob", timing.dropout_prob),
        Field{"timing.streaming",
              [](const ExperimentSpec& s) {
                  return std::string(s.timing.streaming ? "true" : "false");
              },
              [](ExperimentSpec& s, const std::string& v) {
                  s.timing.streaming = parse_bool("timing.streaming", v);
              }},
        Field{"timing.arrival_process",
              [](const ExperimentSpec& s) {
                  return mec::to_string(s.timing.arrival_process);
              },
              [](ExperimentSpec& s, const std::string& v) {
                  try {
                      s.timing.arrival_process = mec::parse_arrival_process(v);
                  } catch (const std::invalid_argument&) {
                      throw std::invalid_argument(
                          "ExperimentSpec: timing.arrival_process = '" + v
                          + "': expected latency or poisson");
                  }
              }},
        FMORE_FIELD_DOUBLE("timing.arrival_rate_hz", timing.arrival_rate_hz),
        Field{"timing.adaptive_quorum",
              [](const ExperimentSpec& s) {
                  return std::string(s.timing.adaptive_quorum ? "true" : "false");
              },
              [](ExperimentSpec& s, const std::string& v) {
                  s.timing.adaptive_quorum =
                      parse_bool("timing.adaptive_quorum", v);
              }},
        FMORE_FIELD_SIZE("timing.checkpoint_every", timing.checkpoint_every),
        Field{"timing.checkpoint_dir",
              [](const ExperimentSpec& s) { return s.timing.checkpoint_dir; },
              [](ExperimentSpec& s, const std::string& v) {
                  s.timing.checkpoint_dir = v;
              }},
        FMORE_FIELD_SIZE("timing.checkpoint_keep", timing.checkpoint_keep),
    };
    return all;
}

#undef FMORE_FIELD_DOUBLE
#undef FMORE_FIELD_SIZE

std::string trim(const std::string& text) {
    std::size_t first = text.find_first_not_of(" \t\r");
    if (first == std::string::npos) return {};
    std::size_t last = text.find_last_not_of(" \t\r");
    return text.substr(first, last - first + 1);
}

} // namespace

std::string to_text(const ExperimentSpec& spec) {
    std::string out;
    for (const Field& field : fields()) {
        out += field.key;
        out += " = ";
        out += field.get(spec);
        out += '\n';
    }
    return out;
}

void apply_key_value(ExperimentSpec& spec, const std::string& key,
                     const std::string& value) {
    for (const Field& field : fields()) {
        if (key == field.key) {
            field.set(spec, value);
            return;
        }
    }
    std::ostringstream message;
    message << "ExperimentSpec: unknown key '" << key << "'; known keys: ";
    for (std::size_t i = 0; i < fields().size(); ++i) {
        if (i != 0) message << ", ";
        message << fields()[i].key;
    }
    throw std::invalid_argument(message.str());
}

ExperimentSpec parse_experiment_spec(const std::string& text) {
    ExperimentSpec spec;
    std::istringstream stream(text);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(stream, line)) {
        ++line_no;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        const std::string stripped = trim(line);
        if (stripped.empty()) continue;
        const std::size_t eq = stripped.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument("ExperimentSpec: line " + std::to_string(line_no)
                                        + " ('" + stripped
                                        + "') is not a 'key = value' assignment");
        const std::string key = trim(stripped.substr(0, eq));
        const std::string value = trim(stripped.substr(eq + 1));
        try {
            apply_key_value(spec, key, value);
        } catch (const std::invalid_argument& error) {
            throw std::invalid_argument("line " + std::to_string(line_no) + ": "
                                        + error.what());
        }
    }
    return spec;
}

// ---------------------------------------------------------------------------
// ExperimentTrial
// ---------------------------------------------------------------------------

ExperimentTrial::ExperimentTrial(const ExperimentSpec& spec, std::size_t trial_index)
    : spec_(spec) {
    validate_or_throw(spec_);
    if (spec_.kind == ExperimentKind::simulation) {
        simulation_ = std::make_unique<SimulationTrial>(to_simulation_config(spec_),
                                                        trial_index);
    } else {
        testbed_ = std::make_unique<RealWorldTrial>(to_realworld_config(spec_),
                                                    trial_index);
    }
}

fl::RunResult ExperimentTrial::run(const std::string& policy) {
    return simulation_ ? simulation_->run(policy) : testbed_->run(policy);
}

fl::RunResult ExperimentTrial::run_resumable(const std::string& policy,
                                             const RunCheckpoint* resume_from) {
    if (resume_from) {
        if (resume_from->policy != policy)
            throw std::invalid_argument(
                "ExperimentTrial::run_resumable: checkpoint belongs to policy '"
                + resume_from->policy + "', not '" + policy + "'");
        if (!resume_from->spec_text.empty()
            && !(parse_experiment_spec(resume_from->spec_text) == spec_))
            throw std::invalid_argument(
                "ExperimentTrial::run_resumable: checkpoint spec does not match "
                "this experiment (refusing to resume a different run)");
    }
    return simulation_ ? simulation_->run_resumable(policy, resume_from)
                       : testbed_->run_resumable(policy, resume_from);
}

fl::RunResult ExperimentTrial::run(Strategy strategy) {
    return run(to_policy_name(strategy));
}

const std::vector<double>& ExperimentTrial::last_all_scores() const {
    return simulation_ ? simulation_->last_all_scores() : testbed_->last_all_scores();
}

const std::vector<ml::ClientShard>& ExperimentTrial::shards() const {
    return simulation_ ? simulation_->shards() : testbed_->shards();
}

std::string to_policy_name(Strategy strategy) {
    switch (strategy) {
        case Strategy::fmore: return "fmore";
        case Strategy::psi_fmore: return "psi_fmore";
        case Strategy::randfl: return "randfl";
        case Strategy::fixfl: return "fixfl";
    }
    throw std::logic_error("to_policy_name: unknown strategy");
}

} // namespace fmore::core
