#include "fmore/core/trials.hpp"

#include <stdexcept>

namespace fmore::core {

AveragedSeries average_runs(const std::vector<fl::RunResult>& runs) {
    if (runs.empty()) throw std::invalid_argument("average_runs: no runs");
    const std::size_t rounds = runs.front().rounds.size();
    for (const fl::RunResult& run : runs) {
        if (run.rounds.size() != rounds)
            throw std::invalid_argument("average_runs: round count mismatch");
    }
    AveragedSeries out;
    out.accuracy.assign(rounds, 0.0);
    out.loss.assign(rounds, 0.0);
    out.payment.assign(rounds, 0.0);
    out.score.assign(rounds, 0.0);
    out.seconds.assign(rounds, 0.0);
    const double inv = 1.0 / static_cast<double>(runs.size());
    for (const fl::RunResult& run : runs) {
        for (std::size_t r = 0; r < rounds; ++r) {
            out.accuracy[r] += inv * run.rounds[r].test_accuracy;
            out.loss[r] += inv * run.rounds[r].test_loss;
            out.payment[r] += inv * run.rounds[r].mean_winner_payment;
            out.score[r] += inv * run.rounds[r].mean_winner_score;
            out.seconds[r] += inv * run.rounds[r].round_seconds;
        }
    }
    out.cumulative_seconds.assign(rounds, 0.0);
    double acc = 0.0;
    for (std::size_t r = 0; r < rounds; ++r) {
        acc += out.seconds[r];
        out.cumulative_seconds[r] = acc;
    }
    return out;
}

double mean_rounds_to_accuracy(const std::vector<fl::RunResult>& runs, double target,
                               std::size_t penalty_rounds) {
    if (runs.empty()) throw std::invalid_argument("mean_rounds_to_accuracy: no runs");
    double total = 0.0;
    for (const fl::RunResult& run : runs) {
        const std::size_t penalty =
            penalty_rounds > 0 ? penalty_rounds : run.rounds.size();
        const auto reached = run.rounds_to_accuracy(target);
        total += static_cast<double>(reached.value_or(penalty));
    }
    return total / static_cast<double>(runs.size());
}

double mean_seconds_to_accuracy(const std::vector<fl::RunResult>& runs, double target) {
    if (runs.empty()) throw std::invalid_argument("mean_seconds_to_accuracy: no runs");
    double total = 0.0;
    for (const fl::RunResult& run : runs) {
        total += run.seconds_to_accuracy(target).value_or(run.total_seconds());
    }
    return total / static_cast<double>(runs.size());
}

} // namespace fmore::core
