#include "fmore/core/trials.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "fmore/core/realworld.hpp"
#include "fmore/core/report.hpp"
#include "fmore/core/simulation.hpp"
#include "fmore/util/thread_pool.hpp"

namespace fmore::core {

AveragedSeries average_runs(const std::vector<fl::RunResult>& runs) {
    if (runs.empty()) throw std::invalid_argument("average_runs: no runs");
    const std::size_t rounds = runs.front().rounds.size();
    for (const fl::RunResult& run : runs) {
        if (run.rounds.size() != rounds)
            throw std::invalid_argument("average_runs: round count mismatch");
    }
    AveragedSeries out;
    out.accuracy.assign(rounds, 0.0);
    out.loss.assign(rounds, 0.0);
    out.payment.assign(rounds, 0.0);
    out.score.assign(rounds, 0.0);
    out.seconds.assign(rounds, 0.0);
    const double inv = 1.0 / static_cast<double>(runs.size());
    for (const fl::RunResult& run : runs) {
        for (std::size_t r = 0; r < rounds; ++r) {
            out.accuracy[r] += inv * run.rounds[r].test_accuracy;
            out.loss[r] += inv * run.rounds[r].test_loss;
            out.payment[r] += inv * run.rounds[r].mean_winner_payment;
            out.score[r] += inv * run.rounds[r].mean_winner_score;
            out.seconds[r] += inv * run.rounds[r].round_seconds;
        }
    }
    out.cumulative_seconds.assign(rounds, 0.0);
    double acc = 0.0;
    for (std::size_t r = 0; r < rounds; ++r) {
        acc += out.seconds[r];
        out.cumulative_seconds[r] = acc;
    }
    return out;
}

double mean_rounds_to_accuracy(const std::vector<fl::RunResult>& runs, double target,
                               std::size_t penalty_rounds) {
    if (runs.empty()) throw std::invalid_argument("mean_rounds_to_accuracy: no runs");
    double total = 0.0;
    for (const fl::RunResult& run : runs) {
        const std::size_t penalty =
            penalty_rounds > 0 ? penalty_rounds : run.rounds.size();
        const auto reached = run.rounds_to_accuracy(target);
        total += static_cast<double>(reached.value_or(penalty));
    }
    return total / static_cast<double>(runs.size());
}

double mean_seconds_to_accuracy(const std::vector<fl::RunResult>& runs, double target) {
    if (runs.empty()) throw std::invalid_argument("mean_seconds_to_accuracy: no runs");
    double total = 0.0;
    for (const fl::RunResult& run : runs) {
        total += run.seconds_to_accuracy(target).value_or(run.total_seconds());
    }
    return total / static_cast<double>(runs.size());
}

void print_accuracy_loss(std::ostream& out, const std::vector<NamedSeries>& all) {
    if (all.empty()) throw std::invalid_argument("print_accuracy_loss: no series");
    std::vector<std::string> headers{"round"};
    for (const NamedSeries& s : all) headers.push_back(s.name + "_acc");
    for (const NamedSeries& s : all) headers.push_back(s.name + "_loss");
    TablePrinter table(out, headers);
    const std::size_t rounds = all.front().series.rounds();
    for (std::size_t r = 0; r < rounds; ++r) {
        std::vector<double> row{static_cast<double>(r + 1)};
        for (const NamedSeries& s : all) row.push_back(s.series.accuracy[r]);
        for (const NamedSeries& s : all) row.push_back(s.series.loss[r]);
        table.row(row);
    }
}

std::size_t bench_trial_count(std::size_t fallback) {
    if (const char* env = std::getenv("FMORE_BENCH_TRIALS")) {
        const long v = std::atol(env);
        if (v > 0) return static_cast<std::size_t>(v);
    }
    return fallback;
}

std::size_t resolve_trial_threads(std::size_t requested, std::size_t trials) {
    if (trials <= 1) return trials;
    std::size_t threads = requested;
    if (threads == 0) {
        if (const char* env = std::getenv("FMORE_TRIAL_THREADS")) {
            const long v = std::atol(env);
            if (v > 0) threads = static_cast<std::size_t>(v);
        }
    }
    if (threads == 0) {
        // The process-wide budget (FMORE_THREADS, else the hardware
        // concurrency) — so the documented cap actually binds the default
        // sizing; only an explicit request can overdraw it.
        threads = util::thread_budget();
    }
    return std::min(threads, trials);
}

std::vector<fl::RunResult> run_trials(std::size_t trials, const TrialFn& fn,
                                      const TrialRunnerOptions& options) {
    if (!fn) throw std::invalid_argument("run_trials: null trial function");
    std::vector<fl::RunResult> results(trials);
    if (trials == 0) return results;

    const std::size_t threads = resolve_trial_threads(options.threads, trials);
    if (threads <= 1) {
        for (std::size_t t = 0; t < trials; ++t) results[t] = fn(t);
        return results;
    }

    // Register the workers with the process-wide thread budget for the
    // sweep's duration: round-level parallelism inside each trial
    // auto-sizes from what is left, so trials x clients never
    // oversubscribes the machine.
    const util::ThreadLease lease(threads, /*exact=*/true);

    const std::size_t batch = options.batch > 0 ? options.batch : 1;
    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto worker = [&] {
        // This thread is one of the lease's counted workers; nested
        // round-level auto-sizing must not bill it a second slot.
        const util::CountedThreadScope counted;
        for (;;) {
            const std::size_t begin = next.fetch_add(batch, std::memory_order_relaxed);
            if (begin >= trials) return;
            const std::size_t end = std::min(trials, begin + batch);
            for (std::size_t t = begin; t < end; ++t) {
                try {
                    results[t] = fn(t);
                } catch (...) {
                    const std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error) first_error = std::current_exception();
                    // Fail fast: exhaust the counter so other workers stop
                    // claiming instead of finishing the whole sweep.
                    next.store(trials, std::memory_order_relaxed);
                    return;
                }
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    try {
        for (std::size_t i = 0; i < threads; ++i) pool.emplace_back(worker);
    } catch (...) {
        // Thread creation failed (resource limits); drain the workers that
        // did start, then propagate — never destroy a joinable thread.
        next.store(trials, std::memory_order_relaxed);
        for (std::thread& th : pool) th.join();
        throw;
    }
    for (std::thread& th : pool) th.join();
    if (first_error) std::rethrow_exception(first_error);
    return results;
}

std::vector<fl::RunResult> run_simulation_trials(const SimulationConfig& config,
                                                 Strategy strategy, std::size_t trials,
                                                 const TrialRunnerOptions& options) {
    return run_trials(
        trials,
        [&config, strategy](std::size_t t) {
            SimulationTrial trial(config, t);
            return trial.run(strategy);
        },
        options);
}

std::vector<fl::RunResult> run_realworld_trials(const RealWorldConfig& config,
                                                Strategy strategy, std::size_t trials,
                                                const TrialRunnerOptions& options) {
    return run_trials(
        trials,
        [&config, strategy](std::size_t t) {
            RealWorldTrial trial(config, t);
            return trial.run(strategy);
        },
        options);
}

std::vector<fl::RunResult> run_experiment_trials(const ExperimentSpec& spec,
                                                 const std::string& policy,
                                                 std::size_t trials,
                                                 const TrialRunnerOptions& options) {
    // Validate once up front so a bad spec fails with the full message list
    // instead of one exception per worker thread.
    validate_or_throw(spec);
    return run_trials(
        trials,
        [&spec, &policy](std::size_t t) {
            ExperimentTrial trial(spec, t);
            return trial.run(policy);
        },
        options);
}

AveragedSeries averaged_experiment(const ExperimentSpec& spec, const std::string& policy,
                                   std::size_t trials, const TrialRunnerOptions& options) {
    return average_runs(run_experiment_trials(spec, policy, trials, options));
}

AveragedSeries averaged_simulation(const SimulationConfig& config, Strategy strategy,
                                   std::size_t trials, const TrialRunnerOptions& options) {
    return average_runs(run_simulation_trials(config, strategy, trials, options));
}

AveragedSeries averaged_realworld(const RealWorldConfig& config, Strategy strategy,
                                  std::size_t trials, const TrialRunnerOptions& options) {
    return average_runs(run_realworld_trials(config, strategy, trials, options));
}

} // namespace fmore::core
