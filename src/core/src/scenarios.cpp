#include "fmore/core/scenarios.hpp"

#include <stdexcept>
#include <utility>

#include "fmore/util/registry.hpp"

namespace fmore::core {

namespace {

/// Figs. 9/10 sweep N/K from a longer-horizon MNIST-F base.
ExperimentSpec impact_base() {
    ExperimentSpec spec = default_experiment(DatasetKind::mnist_f);
    spec.training.rounds = 24;
    return spec;
}

/// Fig. 11's small-data regime: shards are thin so repeated top-score
/// selection overfits to few nodes and psi-diversity has real value.
ExperimentSpec small_data_psi() {
    ExperimentSpec spec = default_experiment(DatasetKind::mnist_f);
    spec.population.data_lo = 10;
    spec.population.data_hi = 45;
    spec.training.rounds = 30;
    return spec;
}

} // namespace

namespace {

struct Registration {
    std::string description;
    ScenarioRegistry::ScenarioFactory factory;
};

} // namespace

struct ScenarioRegistry::Impl {
    util::NamedRegistry<Registration> registry{"ScenarioRegistry", "scenario"};
};

ScenarioRegistry::ScenarioRegistry() : impl_(std::make_shared<Impl>()) {
    auto add_builtin = [this](const char* name, const char* description,
                              ScenarioFactory factory) {
        impl_->registry.replace(name, Registration{description, std::move(factory)});
    };
    add_builtin("sim/default",
        "The paper's simulator defaults (N=100, K=20, MNIST-O)",
        [] { return default_experiment(DatasetKind::mnist_o); });
    add_builtin("testbed/default",
        "The paper's 31-node testbed defaults (CIFAR-10, wall-clock model)",
        [] { return default_testbed_experiment(); });
    add_builtin("paper/fig04",
        "Fig. 4: accuracy/loss, CNN on MNIST-O, FMore vs RandFL vs FixFL",
        [] { return default_experiment(DatasetKind::mnist_o); });
    add_builtin("paper/fig05",
        "Fig. 5: accuracy/loss, CNN on MNIST-F",
        [] { return default_experiment(DatasetKind::mnist_f); });
    add_builtin("paper/fig06",
        "Fig. 6: accuracy/loss, deeper CNN on CIFAR-10",
        [] { return default_experiment(DatasetKind::cifar10); });
    add_builtin("paper/fig07",
        "Fig. 7: accuracy/loss, LSTM on HPNews",
        [] { return default_experiment(DatasetKind::hpnews); });
    add_builtin("paper/fig08",
        "Fig. 8 base: winner-score distribution board (CIFAR-10; the bench "
        "also overrides training.dataset = hpnews for panel b)",
        [] {
            ExperimentSpec spec = default_experiment(DatasetKind::cifar10);
            spec.training.rounds = 10; // selection statistics stabilize quickly
            return spec;
        });
    add_builtin("paper/fig09",
        "Fig. 9 base: impact of N (the bench sweeps population.num_nodes and "
        "grows training.train_samples with the market)",
        [] { return impact_base(); });
    add_builtin("paper/fig10",
        "Fig. 10 base: impact of K (the bench sweeps auction.winners)",
        [] { return impact_base(); });
    add_builtin("paper/fig11",
        "Fig. 11 base: impact of psi in the small-data regime (run with the "
        "psi_fmore policy; the bench sweeps auction.psi)",
        [] { return small_data_psi(); });
    add_builtin("paper/fig12",
        "Fig. 12: testbed accuracy/loss, FMore vs RandFL",
        [] { return default_testbed_experiment(); });
    add_builtin("paper/fig13",
        "Fig. 13: testbed wall-clock time per round and time-to-accuracy",
        [] { return default_testbed_experiment(); });
    add_builtin("ablation/budget",
        "Budget-constrained FMore: the prefix rule under a shrinking per-round "
        "payment budget (the bench sweeps auction.budget)",
        [] {
            ExperimentSpec spec = default_experiment(DatasetKind::mnist_f);
            spec.training.rounds = 14;
            return spec;
        });
    add_builtin("straggler/mild",
        "Testbed with mildly heterogeneous client latency (lognormal sigma "
        "0.4): semi-sync rounds aggregate at 6 of K=8 updates, late updates "
        "merge with staleness weight 1/(1+s)^0.5",
        [] {
            ExperimentSpec spec = default_testbed_experiment();
            spec.timing.round_mode = fl::RoundMode::semi_sync;
            spec.timing.min_updates = 6;
            spec.timing.latency_spread = 0.4;
            return spec;
        });
    add_builtin("straggler/heavy",
        "Testbed with heavy stragglers (lognormal sigma 1.2, 5% dropouts): "
        "async rounds aggregate at 4 of K=8 updates — the regime where the "
        "synchronous barrier pays the full straggler tail every round",
        [] {
            ExperimentSpec spec = default_testbed_experiment();
            spec.timing.round_mode = fl::RoundMode::async;
            spec.timing.min_updates = 4;
            spec.timing.latency_spread = 1.2;
            spec.timing.dropout_prob = 0.05;
            return spec;
        });
    add_builtin("straggler/async_vs_sync",
        "The bench/fig_straggler comparison base: the heavy-straggler world "
        "with round_mode left sync — sweep timing.round_mode=sync,semi_sync,"
        "async (min_updates=4 applies to the non-sync modes)",
        [] {
            ExperimentSpec spec = default_testbed_experiment();
            spec.timing.min_updates = 4;
            spec.timing.latency_spread = 1.2;
            return spec;
        });
    add_builtin("ablation/second_score",
        "Second-score payments on the simulator defaults (mechanism = "
        "second_score; winners are paid the best losing score)",
        [] {
            ExperimentSpec spec = default_experiment(DatasetKind::mnist_f);
            spec.auction.mechanism = "second_score";
            spec.auction.payment_rule = auction::PaymentRule::second_price;
            return spec;
        });
    // Market-scale presets: auction-heavy, training-light. The selection
    // layer is what grows with N (the SoA store + fused BidFrame path keep
    // it O(N) with zero steady-state allocations); training stays a token
    // 2-sample-per-node workload so the preset exercises scale, not SGD.
    // full_scoreboard=false wires in the fused O(N log K) top-K ranking —
    // at these N a full Fig. 8 board would dominate the round.
    auto scale_preset = [](std::size_t nodes) {
        ExperimentSpec spec = default_experiment(DatasetKind::mnist_o);
        spec.population.num_nodes = nodes;
        spec.population.shards_lo = 1;
        spec.population.shards_hi = 2;
        spec.population.data_lo = 1;
        spec.population.data_hi = 3;
        spec.auction.winners = 32;
        spec.auction.full_scoreboard = false;
        spec.training.train_samples = 2 * nodes;
        spec.training.test_samples = 200;
        spec.training.rounds = 3;
        spec.training.local_epochs = 1;
        spec.training.batch_size = 8;
        spec.training.eval_cap = 100;
        return spec;
    };
    add_builtin("scale/10k",
        "10,000-node market, K=32, fused O(N log K) selection, token training",
        [scale_preset] { return scale_preset(10'000); });
    add_builtin("scale/100k",
        "100,000-node market, K=32, fused O(N log K) selection, token training",
        [scale_preset] { return scale_preset(100'000); });
    add_builtin("scale/1m",
        "1,000,000-node market, K=32: the north-star population. Dataset "
        "synthesis at this N is heavy — bench/scale_round runs the same "
        "market shard-free on the synthetic PopulationStore instead",
        [scale_preset] { return scale_preset(1'000'000); });
    add_builtin("scale/10m",
        "10,000,000-node market, K=32, partitioned over 8 shards: the sharded "
        "marketplace at full stretch. Per-shard fused collect+score+top-K "
        "with bounded-head merge — winners bit-identical to the monolithic "
        "market (shard_equivalence_test). Dataset synthesis at this N is "
        "heavy — bench/scale_round runs the same market shard-free on the "
        "synthetic PopulationStore instead",
        [scale_preset] {
            ExperimentSpec spec = scale_preset(10'000'000);
            spec.auction.shards = 8;
            return spec;
        });
    // Fault-injection presets: the sharded market under a deterministic
    // fault plan (auction.fault_plan, util::FaultInjector grammar). The
    // plan drives the in-process virtual-latency clock here and the forked
    // workers in bench/fault_matrix — the same seed replays the same
    // failure schedule in both. Winners stay bit-identical to the
    // no-fault run on every round where no shard is dropped.
    auto faults_preset = [scale_preset] {
        ExperimentSpec spec = scale_preset(10'000);
        spec.auction.shards = 4;
        spec.auction.shard_timeout_s = 0.5;
        return spec;
    };
    add_builtin("faults/churn",
        "Sharded market under worker churn: 8% crash rate per shard-round "
        "(seeded, replayable), respawn budget 4 per shard at the next round "
        "boundary, quorum 2 — rounds degrade to the live shards and "
        "recover; below quorum the round fails fast",
        [faults_preset] {
            ExperimentSpec spec = faults_preset();
            spec.auction.fault_plan = "seed=11,crash=0.08";
            spec.auction.shard_max_respawns = 4;
            spec.auction.shard_respawn_backoff_s = 0.0;
            spec.auction.shard_quorum = 2;
            return spec;
        });
    add_builtin("faults/corrupt",
        "Sharded market under wire corruption: 10% bit-flipped and 5% "
        "self-described-short head frames. Checksums catch every one; the "
        "aggregator re-requests once and the clean resend is consumed — "
        "corrupt bytes never reach the merge (see ShardHealth counters)",
        [faults_preset] {
            ExperimentSpec spec = faults_preset();
            spec.auction.fault_plan = "seed=13,corrupt=0.1,truncate=0.05";
            spec.auction.shard_max_respawns = 2;
            return spec;
        });
    add_builtin("faults/flaky",
        "Sharded market under flaky latency: 10% stalls (2 s, past the "
        "0.5 s deadline — evicted then respawned with 0.1 s backoff) and "
        "20% delays (0.1 s, within it — absorbed without degradation)",
        [faults_preset] {
            ExperimentSpec spec = faults_preset();
            spec.auction.fault_plan =
                "seed=12,stall=0.1,stall_s=2,delay=0.2,delay_s=0.1";
            spec.auction.shard_max_respawns = 8;
            spec.auction.shard_respawn_backoff_s = 0.1;
            return spec;
        });
    // Streaming-market presets: the testbed auction as a long-lived
    // ingestion service. Bids arrive one at a time on the virtual clock and
    // the round closes on deadline or quorum — whichever fires first — with
    // the closed set ranked exactly as the batch market would rank it
    // (streaming_equivalence_test). Sweep-friendly: e.g.
    // --sweep timing.arrival_rate_hz=100,500,2000.
    auto stream_preset = [] {
        ExperimentSpec spec = default_testbed_experiment();
        spec.population.num_nodes = 96;
        spec.population.data_lo = 30;
        spec.population.data_hi = 80;
        spec.auction.winners = 16;
        spec.training.train_samples = 4000;
        spec.training.test_samples = 400;
        spec.training.rounds = 3;
        spec.training.eval_cap = 200;
        spec.timing.streaming = true;
        return spec;
    };
    add_builtin("stream/light",
        "Streaming market under light traffic: Poisson arrivals at 200 "
        "bids/s, 1 s bid deadline, no quorum — most rounds collect every bid "
        "and close exhausted; the occasional tail bid is cut off",
        [stream_preset] {
            ExperimentSpec spec = stream_preset();
            spec.timing.arrival_process = mec::ArrivalProcess::poisson;
            spec.timing.arrival_rate_hz = 200.0;
            spec.timing.round_deadline_s = 1.0;
            return spec;
        });
    add_builtin("stream/heavy",
        "Streaming market under heavy traffic: Poisson arrivals at 2000 "
        "bids/s racing a 30 ms deadline against a 64-bid quorum (quorum may "
        "exceed K=16 — it counts arrivals, not winners)",
        [stream_preset] {
            ExperimentSpec spec = stream_preset();
            spec.timing.arrival_process = mec::ArrivalProcess::poisson;
            spec.timing.arrival_rate_hz = 2000.0;
            spec.timing.round_deadline_s = 0.03;
            spec.timing.min_updates = 64;
            return spec;
        });
    add_builtin("stream/sharded",
        "Sharded streaming market with the adaptive quorum controller: "
        "4 market shards close each round through the virtual carve + head "
        "merge (bit-identical to the monolithic close), while "
        "timing.adaptive_quorum walks the 72-bid quorum down from deadline "
        "telemetry under a bounded step",
        [stream_preset] {
            ExperimentSpec spec = stream_preset();
            spec.timing.arrival_process = mec::ArrivalProcess::poisson;
            spec.timing.arrival_rate_hz = 400.0;
            spec.timing.round_deadline_s = 0.12;
            spec.timing.min_updates = 72;
            spec.timing.adaptive_quorum = true;
            spec.auction.shards = 4;
            return spec;
        });
    add_builtin("stream/quorum",
        "Streaming market closing on quorum: closed-loop arrivals on each "
        "node's straggler latency, round closes at the 48th bid — the "
        "deadline (30 s) is a safety net that never fires",
        [stream_preset] {
            ExperimentSpec spec = stream_preset();
            spec.timing.min_updates = 48;
            spec.timing.round_deadline_s = 30.0;
            return spec;
        });
}

ScenarioRegistry& ScenarioRegistry::instance() {
    static ScenarioRegistry registry;
    return registry;
}

void ScenarioRegistry::add(const std::string& name, const std::string& description,
                           ScenarioFactory factory) {
    util::require_factory(factory, "ScenarioRegistry", "add", name);
    impl_->registry.add(name, Registration{description, std::move(factory)});
}

void ScenarioRegistry::replace(const std::string& name, const std::string& description,
                               ScenarioFactory factory) {
    util::require_factory(factory, "ScenarioRegistry", "replace", name);
    impl_->registry.replace(name, Registration{description, std::move(factory)});
}

void ScenarioRegistry::remove(const std::string& name) { impl_->registry.remove(name); }

bool ScenarioRegistry::contains(const std::string& name) const {
    return impl_->registry.contains(name);
}

std::vector<ScenarioRegistry::Entry> ScenarioRegistry::list() const {
    std::vector<Entry> out;
    for (auto& [name, registration] : impl_->registry.entries())
        out.push_back(Entry{name, registration.description});
    return out;
}

ExperimentSpec ScenarioRegistry::get(const std::string& name) const {
    return impl_->registry.get(name).factory();
}

ExperimentSpec named_scenario(const std::string& name) {
    return ScenarioRegistry::instance().get(name);
}

} // namespace fmore::core
