#pragma once

/// @file run_checkpoint.hpp
/// `core::RunCheckpoint` — the durable-run state of one (policy, trial)
/// run, saved on the `timing.checkpoint_every` cadence and restored by
/// `run_scenario --resume`. See docs/ARCHITECTURE.md, "Durability model".
///
/// A checkpoint captures everything round r+1 needs that round r produced:
/// the normalized spec text (provenance guard), the run RNG state, the
/// model's global parameters, the population columns + salt history, the
/// blacklist, the full metrics tape (which doubles as the adaptive-quorum
/// replay and the RoundHealth source), and — for async lanes — the
/// in-flight dispatch carry. Everything else a run touches (the selector,
/// the time model, the equilibrium strategy) is reconstructed from the
/// spec exactly as a fresh run builds it, BEFORE the run RNG exists, so
/// restored state plus identical construction means identical draws — the
/// resume-bit-identity argument.
///
/// On disk a checkpoint is one `util::SnapshotWriter` file
/// (`ckpt_round_NNNNNN.fmsnap`) under `<checkpoint_dir>/<policy>-t<trial>/`;
/// every byte is CRC-covered, writes are atomic, and `find_latest_valid`
/// walks newest-first past torn or corrupted files without consuming them.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fmore/fl/metrics.hpp"
#include "fmore/fl/run_state.hpp"
#include "fmore/mec/population_store.hpp"

namespace fmore::core {

/// Full resumable state of one run, after `completed_rounds` rounds.
struct RunCheckpoint {
    /// Normalized spec text of the experiment the run belongs to; a resume
    /// against a different spec is refused (wrong population, wrong rules).
    std::string spec_text;
    std::string policy;
    std::size_t trial_index = 0;
    std::size_t completed_rounds = 0;
    /// `std::mt19937_64` state of the run RNG, in its stream text form.
    std::string rng_state;
    std::vector<float> model_params;
    mec::PopulationSnapshot population;
    std::vector<std::uint64_t> banned_nodes;
    /// Metrics of every completed round — the resumed run's prior tape.
    std::vector<fl::RoundMetrics> rounds;
    /// Async lanes: dispatches still in flight, rebased to the next round.
    std::vector<fl::InFlightUpdate> flight;
    std::uint64_t next_seq = 0;
};

/// `ckpt_round_000042.fmsnap` — zero-padded so lexical order == round order.
[[nodiscard]] std::string checkpoint_filename(std::size_t round);

/// `<base>/<policy>-t<trial>` — one directory per (policy, trial) run.
[[nodiscard]] std::string checkpoint_run_dir(const std::string& base,
                                             const std::string& policy,
                                             std::size_t trial_index);

/// Serialize + atomically write `ckpt` to `path`. `mid_write` is threaded
/// to `SnapshotWriter::write_file` (the crash harness kills the process
/// there to produce a torn `.tmp`).
/// @throws util::SnapshotError on I/O failure
void save_checkpoint(const RunCheckpoint& ckpt, const std::string& path,
                     const std::function<void()>& mid_write = nullptr);

/// Parse + validate one checkpoint file.
/// @throws util::SnapshotError on any corruption, truncation or mismatch
[[nodiscard]] RunCheckpoint load_checkpoint(const std::string& path);

/// Newest checkpoint in `dir` that loads cleanly, walking round order
/// descending and skipping — never consuming — torn or corrupted files.
/// nullopt when the directory holds no valid checkpoint.
[[nodiscard]] std::optional<RunCheckpoint> find_latest_valid(const std::string& dir);

/// Keep the newest `keep` checkpoints in `dir`, delete the rest (and any
/// stale `.tmp` leftovers from interrupted writes). No-op when keep == 0.
void prune_checkpoints(const std::string& dir, std::size_t keep);

/// Create `dir` (and parents). @throws util::SnapshotError on failure
void ensure_checkpoint_dir(const std::string& dir);

} // namespace fmore::core
