#pragma once

/// @file equilibrium_cache.hpp
/// Keyed cache of solved equilibrium strategies. Tabulating Theorem 1 is
/// the dominant setup cost of a trial, yet a multi-trial sweep usually
/// solves the *same* game every time: the solver's inputs (scoring, cost,
/// theta distribution, N, K, grids) depend only on the experiment spec, not
/// on the trial index. One tabulation therefore serves every trial of a
/// sweep — the ROADMAP's "equilibrium solve caching" item, measured in
/// bench/micro_overhead.

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "fmore/auction/cost.hpp"
#include "fmore/auction/equilibrium.hpp"
#include "fmore/auction/scoring.hpp"
#include "fmore/stats/distributions.hpp"

namespace fmore::core {

/// A tabulated strategy bundled with the scoring/cost/type objects its
/// internal tables reference. The strategy holds raw pointers into
/// `scoring` and `cost`, so they must live exactly as long as it does —
/// keeping all four in one shared, immutable bundle makes the lifetime
/// trivial for every trial that shares it. All members are deeply const
/// after construction; sharing across trial-runner threads is safe.
struct SolvedEquilibrium {
    SolvedEquilibrium(std::unique_ptr<const auction::ScoringRule> scoring_in,
                      std::unique_ptr<const auction::CostModel> cost_in,
                      std::unique_ptr<const stats::Distribution> theta_in,
                      auction::EquilibriumStrategy strategy_in)
        : scoring(std::move(scoring_in)),
          cost(std::move(cost_in)),
          theta(std::move(theta_in)),
          strategy(std::move(strategy_in)) {}

    std::unique_ptr<const auction::ScoringRule> scoring;
    std::unique_ptr<const auction::CostModel> cost;
    std::unique_ptr<const stats::Distribution> theta;
    auction::EquilibriumStrategy strategy;
};

struct EquilibriumCacheStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t entries = 0;
};

/// Process-wide map from a caller-built key to a shared SolvedEquilibrium.
/// A miss publishes its slot (as a future) before solving, so concurrent
/// trials of one sweep never duplicate a tabulation — same-key callers
/// wait on the in-flight solve while different-key solves run in parallel;
/// the map's mutex is never held across a solve. Entries are never
/// evicted (`clear` aside): the population is bounded by the distinct
/// solver configurations a process runs.
class EquilibriumCache {
public:
    [[nodiscard]] static EquilibriumCache& instance();

    using Builder = std::function<std::shared_ptr<const SolvedEquilibrium>()>;

    /// Return the cached bundle for `key`, or run `build` and cache its
    /// result. The key must capture every solver input (the experiment
    /// layer builds it from the spec); the builder must be a pure function
    /// of those inputs — the solver is deterministic, so cached and fresh
    /// tables are bit-identical.
    [[nodiscard]] std::shared_ptr<const SolvedEquilibrium>
    get_or_solve(const std::string& key, const Builder& build);

    [[nodiscard]] EquilibriumCacheStats stats() const;
    /// Drop all entries and zero the counters (tests; memory pressure).
    void clear();

private:
    EquilibriumCache() = default;
    struct Impl;
    [[nodiscard]] Impl& impl() const;
};

} // namespace fmore::core
