#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fmore::core {

/// Minimal fixed-width table printer for the bench binaries: every figure
/// harness prints paper-reference rows next to measured rows so the shape
/// comparison is a side-by-side read.
class TablePrinter {
public:
    TablePrinter(std::ostream& out, std::vector<std::string> headers,
                 std::size_t column_width = 12);

    void row(const std::vector<std::string>& cells);
    /// Convenience: format doubles with `precision` decimals.
    void row(const std::vector<double>& cells, int precision = 4);

private:
    std::ostream& out_;
    std::size_t columns_;
    std::size_t width_;
};

/// Format helper: fixed-decimal string.
std::string fixed(double value, int precision = 4);
/// Format helper: percent with one decimal (0.513 -> "51.3%").
std::string percent(double fraction, int precision = 1);

/// Write aligned series as CSV (first column = round).
void write_csv(const std::string& path, const std::vector<std::string>& headers,
               const std::vector<std::vector<double>>& columns);

} // namespace fmore::core
