#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "fmore/core/config.hpp"
#include "fmore/core/experiment.hpp"
#include "fmore/fl/metrics.hpp"

namespace fmore::core {

/// Per-round series averaged over repeated trials — the paper reports "the
/// average of five experiments".
struct AveragedSeries {
    std::vector<double> accuracy;  ///< index = round-1
    std::vector<double> loss;
    std::vector<double> payment;   ///< mean winner payment
    std::vector<double> score;     ///< mean winner score
    std::vector<double> seconds;   ///< mean per-round wall clock
    std::vector<double> cumulative_seconds;

    [[nodiscard]] std::size_t rounds() const { return accuracy.size(); }
};

/// Average aligned runs (all must have the same round count).
AveragedSeries average_runs(const std::vector<fl::RunResult>& runs);

/// Mean rounds-to-accuracy across runs; runs that never reach the target
/// count as `penalty_rounds` (defaults to the run length).
double mean_rounds_to_accuracy(const std::vector<fl::RunResult>& runs, double target,
                               std::size_t penalty_rounds = 0);

/// Mean seconds-to-accuracy (testbed experiments); non-reaching runs count
/// their total duration.
double mean_seconds_to_accuracy(const std::vector<fl::RunResult>& runs, double target);

/// One labelled accuracy/loss curve (bench tables, run_scenario output).
struct NamedSeries {
    std::string name;
    AveragedSeries series;
};

/// Print round-by-round accuracy and loss for several policies — the
/// table format every figure bench and the run_scenario CLI share (which
/// is what makes their outputs diffable against each other).
void print_accuracy_loss(std::ostream& out, const std::vector<NamedSeries>& all);

// ---------------------------------------------------------------------------
// Parallel trial runner
// ---------------------------------------------------------------------------

/// Knobs of the multi-threaded trial runner. The defaults auto-size from
/// the machine.
struct TrialRunnerOptions {
    /// Worker-thread count. 0 = auto: the `FMORE_TRIAL_THREADS` environment
    /// variable when set, otherwise `std::thread::hardware_concurrency()`;
    /// always capped at the trial count. An explicit value here wins over
    /// the environment. A resolved count of 1 runs inline on the calling
    /// thread (no pool), which is exactly the old serial loop.
    std::size_t threads = 0;

    /// Trials claimed per work-steal. 0 = auto (currently 1: a single trial
    /// costs far more than one atomic fetch, so fine-grained claiming gives
    /// the best load balance). Raise only if a future workload makes trials
    /// sub-millisecond.
    std::size_t batch = 0;
};

/// One unit of work: build and run trial `trial_index`, return its history.
/// Must be safe to call concurrently from multiple threads with distinct
/// indices (the SimulationTrial / RealWorldTrial factories are: each trial
/// owns its dataset, population, model and RNG streams).
using TrialFn = std::function<fl::RunResult(std::size_t trial_index)>;

/// Resolve the effective worker count `run_trials` will use for `trials`
/// units of work (applies the env override, hardware default and cap).
[[nodiscard]] std::size_t resolve_trial_threads(std::size_t requested, std::size_t trials);

/// Trials per policy for benches and the scenario CLI: the
/// `FMORE_BENCH_TRIALS` environment override when positive, else
/// `fallback`. One definition so the fig benches and `run_scenario`
/// resolve identical trial counts from the same environment (their tables
/// are diffable only then).
[[nodiscard]] std::size_t bench_trial_count(std::size_t fallback = 3);

/// Run `trials` independent trials of `fn` across a worker pool.
///
/// Results are written into slot `trial_index` of the returned vector, so
/// the output — and anything derived from it, e.g. `average_runs` — is
/// bit-identical for a given root seed regardless of thread count or OS
/// scheduling. Determinism rests on the repo-wide seeding discipline: every
/// trial derives its own RNG streams from (config.seed, trial_index) alone,
/// never from shared or global state.
///
/// The first exception thrown by any trial is rethrown on the calling
/// thread after the pool drains.
std::vector<fl::RunResult> run_trials(std::size_t trials, const TrialFn& fn,
                                      const TrialRunnerOptions& options = {});

/// `run_trials` over `SimulationTrial` — the paper's N=100 simulator
/// (Figs. 4-11). Equivalent to the old serial loop
/// `for t: SimulationTrial(config, t).run(strategy)` but parallel.
std::vector<fl::RunResult> run_simulation_trials(const SimulationConfig& config,
                                                 Strategy strategy, std::size_t trials,
                                                 const TrialRunnerOptions& options = {});

/// `run_trials` over `RealWorldTrial` — the 31-node testbed reproduction
/// with the wall-clock model (Figs. 12-13).
std::vector<fl::RunResult> run_realworld_trials(const RealWorldConfig& config,
                                                Strategy strategy, std::size_t trials,
                                                const TrialRunnerOptions& options = {});

/// `run_trials` over `ExperimentTrial` — the unified entry point: builds
/// the spec's world (simulator or testbed) per trial index and runs the
/// named selection policy. Everything spec-driven (benches, examples,
/// run_scenario) goes through here.
std::vector<fl::RunResult> run_experiment_trials(const ExperimentSpec& spec,
                                                 const std::string& policy,
                                                 std::size_t trials,
                                                 const TrialRunnerOptions& options = {});

/// Convenience: parallel trials + `average_runs`, the "average of five
/// experiments" protocol in one call.
AveragedSeries averaged_experiment(const ExperimentSpec& spec, const std::string& policy,
                                   std::size_t trials,
                                   const TrialRunnerOptions& options = {});
AveragedSeries averaged_simulation(const SimulationConfig& config, Strategy strategy,
                                   std::size_t trials,
                                   const TrialRunnerOptions& options = {});
AveragedSeries averaged_realworld(const RealWorldConfig& config, Strategy strategy,
                                  std::size_t trials,
                                  const TrialRunnerOptions& options = {});

} // namespace fmore::core
