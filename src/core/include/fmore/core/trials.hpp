#pragma once

#include <vector>

#include "fmore/fl/metrics.hpp"

namespace fmore::core {

/// Per-round series averaged over repeated trials — the paper reports "the
/// average of five experiments".
struct AveragedSeries {
    std::vector<double> accuracy;  ///< index = round-1
    std::vector<double> loss;
    std::vector<double> payment;   ///< mean winner payment
    std::vector<double> score;     ///< mean winner score
    std::vector<double> seconds;   ///< mean per-round wall clock
    std::vector<double> cumulative_seconds;

    [[nodiscard]] std::size_t rounds() const { return accuracy.size(); }
};

/// Average aligned runs (all must have the same round count).
AveragedSeries average_runs(const std::vector<fl::RunResult>& runs);

/// Mean rounds-to-accuracy across runs; runs that never reach the target
/// count as `penalty_rounds` (defaults to the run length).
double mean_rounds_to_accuracy(const std::vector<fl::RunResult>& runs, double target,
                               std::size_t penalty_rounds = 0);

/// Mean seconds-to-accuracy (testbed experiments); non-reaching runs count
/// their total duration.
double mean_seconds_to_accuracy(const std::vector<fl::RunResult>& runs, double target);

} // namespace fmore::core
