#pragma once

/// @file config.hpp
/// Legacy flat experiment configs. These are the *compatibility* surface:
/// new code should hold a `core::ExperimentSpec` (experiment.hpp), which
/// subsumes both structs; the experiment layer materializes these
/// internally via `to_simulation_config` / `to_realworld_config`, and those
/// converters are the only sanctioned construction sites outside tests.

#include <cstdint>
#include <string>
#include <vector>

#include "fmore/auction/types.hpp"
#include "fmore/auction/win_probability.hpp"
#include "fmore/fl/round_mode.hpp"
#include "fmore/mec/arrival_model.hpp"

namespace fmore::core {

/// The paper's four workloads (Section V.A). The image datasets are the
/// synthetic stand-ins documented in DESIGN.md.
enum class DatasetKind : std::uint8_t {
    mnist_o, ///< MNIST, CNN
    mnist_f, ///< Fashion-MNIST, CNN
    cifar10, ///< CIFAR-10, deeper CNN
    hpnews,  ///< HuffPost news categories, LSTM
};

/// Client-selection strategies compared in the evaluation.
enum class Strategy : std::uint8_t {
    fmore,     ///< the paper's auction (Algorithm 1)
    psi_fmore, ///< probabilistic acceptance variant (Section III.C)
    randfl,    ///< classic FedAvg with uniform random selection
    fixfl,     ///< fixed winner set drawn once
};

[[nodiscard]] std::string to_string(DatasetKind kind);
[[nodiscard]] std::string to_string(Strategy strategy);

/// Everything needed to reproduce the paper's simulator (Section V.A):
/// N = 100 nodes, K = 20 winners, two-dimensional resources (data size q1,
/// data-category proportion q2), scoring S = alpha * q1 * q2 - p with
/// alpha = 25, first-score sealed auction, coin-flip ties, non-IID shards.
///
/// Sample counts are scaled down from the paper's datasets so a full
/// 20-round x 3-strategy x multi-trial sweep runs in seconds; the selection
/// dynamics (what FMore buys versus what random selection gets) are
/// unaffected by the global scale.
struct SimulationConfig {
    DatasetKind dataset = DatasetKind::mnist_o;
    std::size_t train_samples = 9000;
    std::size_t test_samples = 1500;
    std::size_t num_nodes = 100;   ///< N
    std::size_t winners = 20;      ///< K
    std::size_t rounds = 20;       ///< T (paper figures run 20 rounds)
    std::size_t shards_lo = 1;     ///< per-node label-shard count range; the
    std::size_t shards_hi = 5;     ///< spread drives q2 (category) diversity
    std::size_t data_lo = 20;      ///< per-node sample range after resizing
    std::size_t data_hi = 150;

    double alpha = 25.0;           ///< scoring coefficient of Section V.A
    double theta_lo = 0.5;
    double theta_hi = 1.5;
    double beta_data = 6.0;        ///< cost weight of the (normalized) data dim
    double beta_category = 2.0;    ///< cost weight of the category dim
    double psi = 1.0;              ///< used by the psi_fmore policy
    /// Optional per-node acceptance probabilities (distinct-psi variant),
    /// indexed by NodeId; empty = identical psi for everyone.
    std::vector<double> psi_per_node;
    /// Aggregator budget per round (extension; the paper's future work).
    /// 0 disables the constraint; otherwise winners are admitted in score
    /// order while total payment fits the budget.
    double budget = 0.0;
    /// MechanismRegistry key; "" derives the mechanism from the knobs above
    /// (see auction::resolve_mechanism_name).
    std::string mechanism;
    auction::PaymentRule payment_rule = auction::PaymentRule::first_price;
    auction::WinModel win_model = auction::WinModel::paper;
    /// Record the full Fig. 8 score board each round (O(N log N) sort);
    /// false keeps only what winner selection needs (O(N log K)).
    bool full_scoreboard = true;
    /// Market shards (1 = monolithic selector; see AuctionSpec::shards).
    std::size_t market_shards = 1;
    /// Per-shard bid deadline in seconds (0 = none; see AuctionSpec).
    double shard_timeout_s = 0.0;
    /// Latency-discounted pricing coefficient (see AuctionSpec). The
    /// simulator has no wall clock, so its latency table stays empty and
    /// the discount is inert; the knob mirrors for spec round-trips.
    double latency_discount = 0.0;
    /// Fault/supervision knobs (see AuctionSpec::fault_plan and friends).
    std::string fault_plan;
    double shard_respawn_backoff_s = 0.0;
    std::size_t shard_max_respawns = 0;
    std::size_t shard_quorum = 0;
    double resource_jitter = 0.08; ///< MEC dynamics
    double theta_jitter = 0.02;

    std::size_t local_epochs = 1;
    std::size_t batch_size = 16;
    double learning_rate = 0.08;
    std::size_t eval_cap = 1000;

    /// Durable-run knobs (see core::TimingSpec, which these mirror).
    std::size_t checkpoint_every = 0;
    std::string checkpoint_dir;
    std::size_t checkpoint_keep = 3;

    std::uint64_t seed = 7;
};

/// SimulationConfig with per-dataset hyperparameters applied (the LSTM
/// needs a larger SGD step than the CNNs under plain SGD).
[[nodiscard]] SimulationConfig default_simulation(DatasetKind dataset);

/// The paper's 32-machine testbed (Section V.A/V.C): 31 edge nodes + one
/// aggregator, three-dimensional resources (computing power, bandwidth,
/// data size), scoring S = 0.4 q1 + 0.3 q2 + 0.3 q3 - p, wall-clock model
/// of a switched 1 Gbps LAN. The paper does not state the testbed's K; we
/// use K = 8 (~25% of nodes, close to the simulator's 20%).
struct RealWorldConfig {
    DatasetKind dataset = DatasetKind::cifar10;
    std::size_t train_samples = 7000;
    std::size_t test_samples = 1200;
    std::size_t num_nodes = 31;
    std::size_t winners = 8;
    std::size_t rounds = 20;
    /// Scaled stand-in for the paper's data-size range [2000, 10000]
    /// (same 1:5 ratio). The testbed split is IID with heterogeneous sizes;
    /// see RealWorldTrial for why (Section V.A describes label sharding
    /// only for the simulator).
    std::size_t data_lo = 30;
    std::size_t data_hi = 240;

    /// Node resource envelopes. The testbed machines are homogeneous i7s
    /// behind one switch (Section V.A); computing power is "tuned by the
    /// number of CPU cores" (1-8), while effective bandwidth on the shared
    /// 1 Gbps LAN varies much less. Slow-core stragglers are what makes
    /// RandFL's synchronous rounds long (Fig. 13).
    double cpu_lo = 1.0;
    double cpu_hi = 8.0;
    double bandwidth_lo = 200.0;
    double bandwidth_hi = 1000.0;

    double alpha_cpu = 0.4;
    double alpha_bandwidth = 0.3;
    double alpha_data = 0.3;
    /// Tighter than the simulator's [0.5, 1.5]: on the testbed the
    /// machines' resource spread (1-8 cores, 10-1000 Mbps) is what the
    /// auction should price; a wide private-cost spread would drown it.
    double theta_lo = 0.8;
    double theta_hi = 1.2;
    double psi = 1.0;
    /// Optional per-node acceptance probabilities, indexed by NodeId.
    std::vector<double> psi_per_node;
    /// Per-round payment budget (0 = unconstrained).
    double budget = 0.0;
    /// MechanismRegistry key; "" derives the mechanism from the knobs.
    std::string mechanism;
    auction::PaymentRule payment_rule = auction::PaymentRule::first_price;
    auction::WinModel win_model = auction::WinModel::paper;
    /// Record the full Fig. 8 score board each round (see SimulationConfig).
    bool full_scoreboard = true;
    /// Market shards (1 = monolithic selector; see AuctionSpec::shards).
    std::size_t market_shards = 1;
    /// Per-shard bid deadline in seconds (0 = none; see AuctionSpec).
    double shard_timeout_s = 0.0;
    /// Fault/supervision knobs (see AuctionSpec::fault_plan and friends).
    std::string fault_plan;
    double shard_respawn_backoff_s = 0.0;
    std::size_t shard_max_respawns = 0;
    std::size_t shard_quorum = 0;
    double resource_jitter = 0.10;
    double theta_jitter = 0.02;

    std::size_t local_epochs = 1;
    std::size_t batch_size = 16;
    double learning_rate = 0.08;
    std::size_t eval_cap = 1000;

    /// Wall-clock model knobs (see mec::ClusterTimeConfig).
    double model_bytes = 1.7e7;
    double seconds_per_sample_core = 0.05;
    double round_overhead_s = 1.0;

    /// Round-coordination discipline and straggler model — the spec-level
    /// documentation lives on core::TimingSpec, which these mirror.
    fl::RoundMode round_mode = fl::RoundMode::sync;
    std::size_t min_updates = 0;
    double round_deadline_s = 0.0;
    double staleness_alpha = 0.5;
    std::size_t max_staleness = 4;
    double latency_spread = 0.0;
    double dropout_prob = 0.0;

    /// Streaming-market knobs (see core::TimingSpec/AuctionSpec, which
    /// these mirror).
    bool streaming = false;
    mec::ArrivalProcess arrival_process = mec::ArrivalProcess::latency;
    double arrival_rate_hz = 0.0;
    double latency_discount = 0.0;
    bool adaptive_quorum = false;

    /// Durable-run knobs (see core::TimingSpec, which these mirror).
    std::size_t checkpoint_every = 0;
    std::string checkpoint_dir;
    std::size_t checkpoint_keep = 3;

    std::uint64_t seed = 11;
};

} // namespace fmore::core
