#pragma once

/// @file sweep.hpp
/// Grid sweeps over ExperimentSpec overrides — the machinery behind
/// `run_scenario --sweep key=a,b,c` and the parameter-impact benches
/// (fig09/fig10/fig11 style "same world, one knob varied" studies).
/// An axis is one spec key with several candidate values; a sweep is the
/// cross product of its axes, each point a fully-overridden spec labelled
/// by the assignments that produced it.

#include <string>
#include <vector>

#include "fmore/core/experiment.hpp"
#include "fmore/core/trials.hpp"

namespace fmore::core {

/// One sweep dimension: a spec key (any `apply_key_value` key) and the
/// values to try, in order.
struct SweepAxis {
    std::string key;
    std::vector<std::string> values;
};

/// One grid point: the overridden spec plus a human-readable label like
/// "auction.winners=5, auction.psi=0.3".
struct SweepPoint {
    std::string label;
    ExperimentSpec spec;
};

/// Parse "key=a,b,c" into an axis.
/// @throws std::invalid_argument on a missing '=', empty key or empty
///         value list
[[nodiscard]] SweepAxis parse_sweep_axis(const std::string& text);

/// Cross product of `axes` over `base`, first axis outermost (its value
/// changes slowest). Values are applied through `apply_key_value`, so any
/// serializable spec field can be swept; the specs are NOT validated here
/// (the runner validates per point, like any other spec source).
/// @throws std::invalid_argument for unknown keys or unparseable values,
///         and for an axis with no values
[[nodiscard]] std::vector<SweepPoint> expand_sweep(const ExperimentSpec& base,
                                                   const std::vector<SweepAxis>& axes);

/// Zipped (co-varying) sweep: all axes must have the same length; point i
/// applies value i of *every* axis. This is the shape of studies whose
/// knobs move together — Fig. 9 grows `training.train_samples` with
/// `population.num_nodes` so a bigger market is not a fixed pie cut finer,
/// which a cross product cannot express.
/// @throws std::invalid_argument on mismatched axis lengths, no axes, or
///         anything expand_sweep would reject
[[nodiscard]] std::vector<SweepPoint> zip_sweep(const ExperimentSpec& base,
                                                const std::vector<SweepAxis>& axes);

/// One sweep point's results under several selection policies — the
/// "per-point multi-policy summary" the parameter-impact benches interleave
/// into their tables (fig09/fig11 compare policies *per grid point*).
struct SweepSummary {
    std::string label;                   ///< the point's "key=value" label
    ExperimentSpec spec;                 ///< fully-overridden spec
    std::vector<NamedSeries> series;     ///< one averaged series per policy
    std::vector<std::vector<fl::RunResult>> runs; ///< raw runs, per policy
};

/// Run every point under every policy on the parallel trial runner and
/// average — `averaged_experiment` over the grid, with the raw runs kept
/// for rounds-/seconds-to-accuracy statistics. Policy names label the
/// series via the same display names run_scenario prints.
/// @throws whatever spec validation / the trial runner throws
[[nodiscard]] std::vector<SweepSummary>
summarize_points(const std::vector<SweepPoint>& points,
                 const std::vector<std::string>& policies, std::size_t trials,
                 const TrialRunnerOptions& options = {});

/// Display name of a selection policy ("fmore" -> "FMore", ...); unknown
/// registry names pass through unchanged.
[[nodiscard]] std::string policy_display_name(const std::string& policy);

} // namespace fmore::core
