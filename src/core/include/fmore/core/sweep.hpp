#pragma once

/// @file sweep.hpp
/// Grid sweeps over ExperimentSpec overrides — the machinery behind
/// `run_scenario --sweep key=a,b,c` and the parameter-impact benches
/// (fig09/fig10/fig11 style "same world, one knob varied" studies).
/// An axis is one spec key with several candidate values; a sweep is the
/// cross product of its axes, each point a fully-overridden spec labelled
/// by the assignments that produced it.

#include <string>
#include <vector>

#include "fmore/core/experiment.hpp"

namespace fmore::core {

/// One sweep dimension: a spec key (any `apply_key_value` key) and the
/// values to try, in order.
struct SweepAxis {
    std::string key;
    std::vector<std::string> values;
};

/// One grid point: the overridden spec plus a human-readable label like
/// "auction.winners=5, auction.psi=0.3".
struct SweepPoint {
    std::string label;
    ExperimentSpec spec;
};

/// Parse "key=a,b,c" into an axis.
/// @throws std::invalid_argument on a missing '=', empty key or empty
///         value list
[[nodiscard]] SweepAxis parse_sweep_axis(const std::string& text);

/// Cross product of `axes` over `base`, first axis outermost (its value
/// changes slowest). Values are applied through `apply_key_value`, so any
/// serializable spec field can be swept; the specs are NOT validated here
/// (the runner validates per point, like any other spec source).
/// @throws std::invalid_argument for unknown keys or unparseable values,
///         and for an axis with no values
[[nodiscard]] std::vector<SweepPoint> expand_sweep(const ExperimentSpec& base,
                                                   const std::vector<SweepAxis>& axes);

} // namespace fmore::core
