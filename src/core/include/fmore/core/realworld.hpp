#pragma once

#include <memory>

#include "fmore/auction/cost.hpp"
#include "fmore/auction/equilibrium.hpp"
#include "fmore/auction/scoring.hpp"
#include "fmore/core/config.hpp"
#include "fmore/fl/coordinator.hpp"
#include "fmore/mec/cluster.hpp"
#include "fmore/mec/population.hpp"
#include "fmore/ml/model.hpp"

namespace fmore::core {

/// The testbed reproduction (Figs. 12-13): 31 heterogeneous nodes behind a
/// switch, three-dimensional resource auction, and a wall-clock model so
/// runs report seconds as well as rounds.
class RealWorldTrial {
public:
    RealWorldTrial(const RealWorldConfig& config, std::size_t trial_index);

    /// Supported strategies: fmore, psi_fmore, randfl, fixfl (the paper's
    /// testbed section compares FMore and RandFL).
    [[nodiscard]] fl::RunResult run(Strategy strategy);

    [[nodiscard]] const RealWorldConfig& config() const { return config_; }
    [[nodiscard]] const auction::EquilibriumStrategy& equilibrium() const {
        return *equilibrium_;
    }

private:
    [[nodiscard]] ml::Model make_model(std::uint64_t seed) const;
    void rebuild_population();

    RealWorldConfig config_;
    std::uint64_t trial_seed_;
    double data_cap_ = 1.0; ///< largest shard size (scoring/cost scale)
    ml::Dataset train_;
    ml::Dataset test_;
    std::vector<ml::ClientShard> shards_;
    std::unique_ptr<stats::UniformDistribution> theta_dist_;
    std::unique_ptr<auction::AdditiveScoring> scoring_;
    std::unique_ptr<auction::AdditiveCost> cost_;
    std::unique_ptr<auction::EquilibriumStrategy> equilibrium_;
    std::unique_ptr<mec::MecPopulation> population_;
};

} // namespace fmore::core
