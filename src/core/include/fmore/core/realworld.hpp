#pragma once

#include <memory>
#include <string>

#include "fmore/core/config.hpp"
#include "fmore/core/equilibrium_cache.hpp"
#include "fmore/fl/coordinator.hpp"
#include "fmore/fl/metrics.hpp"
#include "fmore/mec/cluster.hpp"
#include "fmore/mec/population.hpp"
#include "fmore/ml/model.hpp"

namespace fmore::core {

struct ExperimentSpec;
struct RunCheckpoint;

/// The testbed reproduction (Figs. 12-13): 31 heterogeneous nodes behind a
/// switch, three-dimensional resource auction, and a wall-clock model so
/// runs report seconds as well as rounds.
class RealWorldTrial {
public:
    RealWorldTrial(const RealWorldConfig& config, std::size_t trial_index);
    /// Spec-first construction (validates, then converts through the
    /// compat shim).
    RealWorldTrial(const ExperimentSpec& spec, std::size_t trial_index);

    /// Run under a named selection policy (fl::PolicyRegistry); the paper's
    /// testbed section compares FMore and RandFL.
    [[nodiscard]] fl::RunResult run(const std::string& policy);
    /// Legacy-enum overload.
    [[nodiscard]] fl::RunResult run(Strategy strategy);

    /// `run`, optionally resuming from a loaded checkpoint and writing new
    /// checkpoints on the config's `checkpoint_every` cadence — across the
    /// sync, semi-sync/async, sharded and streaming lanes alike. A resumed
    /// run's tape is bit-identical to a never-interrupted one (see
    /// docs/ARCHITECTURE.md, "Durability model"). `run(policy)` is exactly
    /// `run_resumable(policy, nullptr)`.
    [[nodiscard]] fl::RunResult run_resumable(const std::string& policy,
                                              const RunCheckpoint* resume_from);

    /// Sealed-bid score board of the last auction-backed round.
    [[nodiscard]] const std::vector<double>& last_all_scores() const {
        return last_all_scores_;
    }

    [[nodiscard]] const std::vector<ml::ClientShard>& shards() const { return shards_; }
    [[nodiscard]] const RealWorldConfig& config() const { return config_; }
    [[nodiscard]] const auction::EquilibriumStrategy& equilibrium() const {
        return solved_->strategy;
    }

private:
    [[nodiscard]] ml::Model make_model(std::uint64_t seed) const;
    /// Per-node expected bid latency in seconds: the trial's straggler
    /// factor (fixed stream, so every policy sees the same slow nodes)
    /// times the auction overhead. Feeds both latency-discounted pricing
    /// and the streaming market's closed-loop arrival schedule.
    [[nodiscard]] std::vector<double> bid_latency_table() const;
    void rebuild_population();

    RealWorldConfig config_;
    std::size_t trial_index_;
    std::uint64_t trial_seed_;
    double data_cap_ = 1.0; ///< largest shard size (scoring/cost scale)
    ml::Dataset train_;
    ml::Dataset test_;
    std::vector<ml::ClientShard> shards_;
    std::unique_ptr<stats::UniformDistribution> theta_dist_;
    std::shared_ptr<const SolvedEquilibrium> solved_;
    std::unique_ptr<mec::MecPopulation> population_;
    std::vector<double> last_all_scores_;
};

} // namespace fmore::core
