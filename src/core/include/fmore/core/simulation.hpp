#pragma once

#include <memory>
#include <string>

#include "fmore/core/config.hpp"
#include "fmore/core/equilibrium_cache.hpp"
#include "fmore/fl/coordinator.hpp"
#include "fmore/fl/metrics.hpp"
#include "fmore/mec/population.hpp"
#include "fmore/ml/model.hpp"
#include "fmore/ml/synthetic.hpp"
#include "fmore/stats/distributions.hpp"

namespace fmore::core {

struct ExperimentSpec;
struct RunCheckpoint;

/// One fully-assembled trial of the paper's simulator: dataset, non-IID
/// shards, MEC population, solved equilibrium strategy, model and
/// coordinator. Owns (or shares, for the cached equilibrium) everything so
/// lifetimes are trivial; build one per (config, trial) pair —
/// construction costs well under a second, and the equilibrium tabulation
/// is reused across trials via core::EquilibriumCache.
class SimulationTrial {
public:
    SimulationTrial(const SimulationConfig& config, std::size_t trial_index);
    /// Spec-first construction (validates, then converts through the
    /// compat shim).
    SimulationTrial(const ExperimentSpec& spec, std::size_t trial_index);

    /// Run the federated experiment under one selection policy resolved
    /// from fl::PolicyRegistry ("fmore", "psi_fmore", "randfl", "fixfl", or
    /// any custom registration). Each call re-initializes the global model
    /// from the trial seed, so policies compared within a trial start from
    /// identical weights, data and population state.
    [[nodiscard]] fl::RunResult run(const std::string& policy);
    /// Legacy-enum overload.
    [[nodiscard]] fl::RunResult run(Strategy strategy);

    /// `run`, optionally resuming from a loaded checkpoint and writing new
    /// checkpoints on the config's `checkpoint_every` cadence. A resumed
    /// run's tape is bit-identical to a never-interrupted one (see
    /// docs/ARCHITECTURE.md, "Durability model"). `run(policy)` is exactly
    /// `run_resumable(policy, nullptr)`.
    [[nodiscard]] fl::RunResult run_resumable(const std::string& policy,
                                              const RunCheckpoint* resume_from);

    /// Sealed-bid score board of the last FMore round (Fig. 8 inputs).
    [[nodiscard]] const std::vector<double>& last_all_scores() const {
        return last_all_scores_;
    }

    [[nodiscard]] const auction::EquilibriumStrategy& equilibrium() const {
        return solved_->strategy;
    }
    [[nodiscard]] const ml::Dataset& train_set() const { return train_; }
    [[nodiscard]] const ml::Dataset& test_set() const { return test_; }
    [[nodiscard]] const std::vector<ml::ClientShard>& shards() const { return shards_; }
    [[nodiscard]] const SimulationConfig& config() const { return config_; }

private:
    [[nodiscard]] ml::Model make_model(std::uint64_t seed) const;
    void rebuild_population();

    SimulationConfig config_;
    std::size_t trial_index_;
    std::uint64_t trial_seed_;
    ml::Dataset train_;
    ml::Dataset test_;
    std::vector<ml::ClientShard> shards_;
    std::unique_ptr<stats::UniformDistribution> theta_dist_;
    std::shared_ptr<const SolvedEquilibrium> solved_;
    std::unique_ptr<mec::MecPopulation> population_;
    std::vector<double> last_all_scores_;
};

} // namespace fmore::core
