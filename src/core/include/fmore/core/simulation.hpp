#pragma once

#include <memory>

#include "fmore/auction/cost.hpp"
#include "fmore/auction/equilibrium.hpp"
#include "fmore/auction/scoring.hpp"
#include "fmore/core/config.hpp"
#include "fmore/fl/coordinator.hpp"
#include "fmore/fl/metrics.hpp"
#include "fmore/mec/auction_selector.hpp"
#include "fmore/mec/population.hpp"
#include "fmore/ml/model.hpp"
#include "fmore/ml/synthetic.hpp"
#include "fmore/stats/distributions.hpp"

namespace fmore::core {

/// One fully-assembled trial of the paper's simulator: dataset, non-IID
/// shards, MEC population, solved equilibrium strategy, model and
/// coordinator. Owns everything so lifetimes are trivial; build one per
/// (config, trial) pair — construction costs well under a second.
class SimulationTrial {
public:
    SimulationTrial(const SimulationConfig& config, std::size_t trial_index);

    /// Run the federated experiment under one selection strategy. Each call
    /// re-initializes the global model from the trial seed, so strategies
    /// compared within a trial start from identical weights, data and
    /// population state.
    [[nodiscard]] fl::RunResult run(Strategy strategy);

    /// Sealed-bid score board of the last FMore round (Fig. 8 inputs).
    [[nodiscard]] const std::vector<double>& last_all_scores() const {
        return last_all_scores_;
    }

    [[nodiscard]] const auction::EquilibriumStrategy& equilibrium() const {
        return *equilibrium_;
    }
    [[nodiscard]] const ml::Dataset& train_set() const { return train_; }
    [[nodiscard]] const ml::Dataset& test_set() const { return test_; }
    [[nodiscard]] const std::vector<ml::ClientShard>& shards() const { return shards_; }
    [[nodiscard]] const SimulationConfig& config() const { return config_; }

private:
    [[nodiscard]] ml::Model make_model(std::uint64_t seed) const;
    void rebuild_population();

    SimulationConfig config_;
    std::uint64_t trial_seed_;
    ml::Dataset train_;
    ml::Dataset test_;
    std::vector<ml::ClientShard> shards_;
    std::unique_ptr<stats::UniformDistribution> theta_dist_;
    std::unique_ptr<auction::ScoringRule> scoring_;
    std::unique_ptr<auction::AdditiveCost> cost_;
    std::unique_ptr<auction::EquilibriumStrategy> equilibrium_;
    std::unique_ptr<mec::MecPopulation> population_;
    std::vector<double> last_all_scores_;
};

} // namespace fmore::core
