#pragma once

/// @file scenarios.hpp
/// Named experiment presets. Every paper figure (and each extension study)
/// is a registered `ExperimentSpec` factory, so benches, examples, tests
/// and the `run_scenario` CLI all start from the same definitions —
/// "paper/fig04" means the same world everywhere. Downstream code registers
/// its own scenarios; nothing here is closed.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fmore/core/experiment.hpp"

namespace fmore::core {

/// Process-wide string-keyed registry of experiment presets. The paper
/// scenarios are registered on first use. All methods are thread-safe.
class ScenarioRegistry {
public:
    [[nodiscard]] static ScenarioRegistry& instance();

    using ScenarioFactory = std::function<ExperimentSpec()>;

    struct Entry {
        std::string name;
        std::string description;
    };

    /// @throws std::invalid_argument on an empty/duplicate name or null
    ///         factory (use `replace` to overwrite deliberately)
    void add(const std::string& name, const std::string& description,
             ScenarioFactory factory);
    void replace(const std::string& name, const std::string& description,
                 ScenarioFactory factory);
    void remove(const std::string& name);

    [[nodiscard]] bool contains(const std::string& name) const;
    /// All registered scenarios with their descriptions, sorted by name.
    [[nodiscard]] std::vector<Entry> list() const;

    /// Materialize the preset registered under `name`.
    /// @throws std::invalid_argument for unknown names, listing what is
    ///         registered so the typo is obvious
    [[nodiscard]] ExperimentSpec get(const std::string& name) const;

private:
    ScenarioRegistry();
    struct Impl;
    std::shared_ptr<Impl> impl_;
};

/// Shorthand for `ScenarioRegistry::instance().get(name)`.
[[nodiscard]] ExperimentSpec named_scenario(const std::string& name);

} // namespace fmore::core
