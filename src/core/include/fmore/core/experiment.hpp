#pragma once

/// @file experiment.hpp
/// The unified experiment surface: one `ExperimentSpec` composed of
/// sub-specs (population, auction, training, timing) subsumes the legacy
/// `SimulationConfig` / `RealWorldConfig` pair. Specs serialize to and
/// parse from key=value text, validate with actionable messages, and drive
/// trials through `ExperimentTrial` — the facade benches, examples and the
/// `run_scenario` CLI all share. Named presets live in scenarios.hpp.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fmore/auction/win_probability.hpp"
#include "fmore/core/config.hpp"
#include "fmore/core/realworld.hpp"
#include "fmore/core/simulation.hpp"
#include "fmore/fl/metrics.hpp"
#include "fmore/fl/round_mode.hpp"

namespace fmore::core {

struct RunCheckpoint;  // run_checkpoint.hpp

/// Which of the paper's two worlds the spec assembles. The kind picks the
/// scoring family and data split the paper ties to each setup: `simulation`
/// is the N=100 simulator (two-dimensional scaled-product scoring
/// alpha*q1*q2, non-IID label shards, Section V.A), `testbed` the 31-node
/// deployment (three-dimensional additive scoring over cpu/bandwidth/data,
/// IID shards of heterogeneous size, wall-clock model, Sections V.A/V.C).
enum class ExperimentKind : std::uint8_t {
    simulation,
    testbed,
};

/// The edge-node population: how many nodes, what data/resources they hold
/// and how both drift between rounds (MEC dynamics).
struct PopulationSpec {
    std::size_t num_nodes = 100;  ///< N
    std::size_t shards_lo = 1;    ///< per-node label-shard count range; the
    std::size_t shards_hi = 5;    ///< spread drives category diversity (simulation)
    std::size_t data_lo = 20;     ///< per-node sample range after resizing
    std::size_t data_hi = 150;
    double cpu_lo = 1.0;          ///< cores usable for training (testbed)
    double cpu_hi = 8.0;
    double bandwidth_lo = 200.0;  ///< Mbps (testbed)
    double bandwidth_hi = 1000.0;
    double theta_lo = 0.5;        ///< private cost-type support
    double theta_hi = 1.5;
    double resource_jitter = 0.08;
    double theta_jitter = 0.02;
};

/// The incentive layer: mechanism name, winner-set size, scoring and cost
/// coefficients, and the extension knobs (psi, budget).
struct AuctionSpec {
    /// MechanismRegistry key; "" lets the legacy knobs decide (psi < 1 ->
    /// psi_fmore, budget > 0 -> budget_feasible, ...). Anything registered
    /// — including mechanisms registered outside this repo — is valid.
    std::string mechanism;
    std::size_t winners = 20;       ///< K
    double alpha = 25.0;            ///< scaled-product coefficient (simulation)
    double alpha_cpu = 0.4;         ///< additive weights (testbed scoring)
    double alpha_bandwidth = 0.3;
    double alpha_data = 0.3;
    double beta_data = 6.0;         ///< cost weight of the (normalized) data dim
    double beta_category = 2.0;     ///< cost weight of the category dim
    double psi = 1.0;               ///< psi-FMore acceptance probability
    std::vector<double> psi_per_node;  ///< distinct-psi variant, indexed by NodeId
    double budget = 0.0;            ///< per-round payment budget; 0 = off
    auction::PaymentRule payment_rule = auction::PaymentRule::first_price;
    auction::WinModel win_model = auction::WinModel::paper;
    /// When true every round records the complete descending score board
    /// (`SelectionRecord::all_scores` — the Fig. 8 input). When false the
    /// mechanism only orders what winner selection needs (top K, plus the
    /// best loser under second-score payments): an O(N log K) partial sort
    /// instead of O(N log N), worthwhile at large N. Winners, payments and
    /// every round metric are bit-identical either way; only the recorded
    /// score board is truncated.
    bool full_scoreboard = true;
    /// Market shards: 1 (default) runs the monolithic AuctionSelector;
    /// S > 1 partitions the population into S contiguous node ranges, runs
    /// the fused collect+score+top-K pass per shard, and merges the S
    /// bounded heads under the market's strict total order. Winners,
    /// payments and every metric are bit-identical to S = 1 by
    /// construction (asserted by tests/auction/shard_equivalence_test);
    /// sharding is an execution strategy, not a different mechanism.
    std::size_t shards = 1;
    /// Bid deadline per shard, in seconds; shards that miss it contribute
    /// no bids that round (the round degrades to the responsive shards and
    /// the drop is surfaced in RoundMetrics::dropped_shards). 0 disables
    /// the deadline. In-process engines drive this off a deterministic
    /// virtual clock; the multi-process aggregator off real time.
    double shard_timeout_s = 0.0;
    /// Async-aware pricing: rank bids by S(q, p) minus this coefficient
    /// times the node's expected bid latency (the "latency_discounted"
    /// mechanism; > 0 auto-selects it). The testbed engine feeds the
    /// per-node latencies from its wall-clock model; elsewhere the latency
    /// table is empty and the discount is a no-op.
    double latency_discount = 0.0;
    /// Deterministic fault plan for the sharded market
    /// (`util::FaultInjector::from_spec` grammar, e.g.
    /// "seed=7,crash=0.02,stall=0.01,stall_s=2"). The in-process engines
    /// install it as the virtual-latency clock (crashes and long stalls
    /// drop the shard for the round); the cross-process aggregator bakes
    /// the same plan into its workers, so a scenario replays bit-exactly
    /// in either world. Empty disables. Requires shards > 1.
    std::string fault_plan;
    /// Supervisor: base delay before an evicted shard worker is re-forked;
    /// doubles per consecutive respawn (capped). 0 respawns at the next
    /// round boundary. Cross-process aggregator only.
    double shard_respawn_backoff_s = 0.0;
    /// Supervisor: respawn budget per shard worker; 0 keeps eviction
    /// permanent. Cross-process aggregator only.
    std::size_t shard_max_respawns = 0;
    /// Fail-fast quorum: a round that ends with fewer live shards throws
    /// instead of silently shrinking the market; 0 disables.
    std::size_t shard_quorum = 0;
};

/// The learning workload: dataset, split sizes and SGD hyperparameters.
struct TrainingSpec {
    DatasetKind dataset = DatasetKind::mnist_o;
    std::size_t train_samples = 9000;
    std::size_t test_samples = 1500;
    std::size_t rounds = 20;        ///< T
    std::size_t local_epochs = 1;
    std::size_t batch_size = 16;
    double learning_rate = 0.08;
    std::size_t eval_cap = 1000;
};

/// The wall-clock model (testbed experiments; see mec::ClusterTimeConfig)
/// plus the round-coordination discipline built on it.
/// `enabled` is kind-implied — the testbed always models wall-clock time
/// and the simulator never does — and validation rejects a mismatch so the
/// knob cannot silently disagree with what the engine actually runs.
/// Likewise `round_mode != sync` needs the clock, so async/semi-sync specs
/// must be `kind = testbed`.
struct TimingSpec {
    bool enabled = false;
    double model_bytes = 1.7e7;
    double seconds_per_sample_core = 0.05;
    double round_overhead_s = 1.0;
    /// How rounds close: the paper's synchronous barrier, or the
    /// semi_sync/async early-aggregation modes (fl::AsyncCoordinator).
    fl::RoundMode round_mode = fl::RoundMode::sync;
    /// semi_sync/async: aggregate once this many of the round's dispatches
    /// arrived (carried late updates merge at the trigger but do not count
    /// toward it); 0 = every dispatched winner. With `streaming` it doubles
    /// as the BID quorum: the auction closes after this many arrivals (and
    /// may therefore exceed K). Sync non-streaming rounds wait for everyone
    /// and ignore this knob ALONE — kept sweepable so
    /// `--sweep timing.round_mode=sync,semi_sync,async` works unchanged —
    /// but combining it with a deadline under sync is rejected (neither
    /// knob could ever fire; validate() names the fix).
    std::size_t min_updates = 0;
    /// semi_sync: aggregate at this offset from round start even when short
    /// of min_updates; 0 = no deadline. With `streaming` it doubles as the
    /// auction's bid deadline on the virtual clock. The other non-streaming
    /// modes ignore it (sync closes on its slowest winner, async purely on
    /// update count) so round_mode stays sweepable with a deadline set —
    /// except the sync + deadline + min_updates combination (see above).
    double round_deadline_s = 0.0;
    /// Staleness decay exponent: a late update merges with FedAvg weight
    /// D_i / (1+s)^alpha, s = global versions since its dispatch.
    double staleness_alpha = 0.5;
    /// Discard updates staler than this many versions; 0 = never.
    std::size_t max_staleness = 4;
    /// Straggler model: sigma of each node's lognormal latency factor
    /// (drawn once per trial); 0 = homogeneous latency. Applies to sync
    /// rounds too — stragglers are what make the barrier expensive.
    double latency_spread = 0.0;
    /// Probability a semi_sync/async dispatch never reports; sync rounds
    /// have no failure handling and ignore it (see ClusterTimeConfig).
    double dropout_prob = 0.0;
    /// Run each auction round as a STREAMING market (testbed only): bids
    /// arrive one at a time on the virtual clock per `arrival_process`, the
    /// top-K folds incrementally, and the round closes on
    /// `round_deadline_s` expiry or `min_updates` arrivals — whichever
    /// fires first (both 0 = wait for every bid). Winners over the arrived
    /// set are bit-identical to the batch selector over that set.
    bool streaming = false;
    /// Virtual-clock arrival process of the streaming market: "latency"
    /// replays each node's expected bid latency (straggler factor x
    /// auction overhead), "poisson" is an open-loop stream at
    /// `arrival_rate_hz`.
    mec::ArrivalProcess arrival_process = mec::ArrivalProcess::latency;
    /// Poisson bid arrival rate (bids per second of virtual time); required
    /// > 0 when `arrival_process` is "poisson".
    double arrival_rate_hz = 0.0;
    /// Tune the streaming bid quorum per round from the run's own close
    /// telemetry (`fl::AdaptiveQuorumController`): deadline-dominated
    /// windows step `min_updates` down (the quorum was stalling), quorum-
    /// dominated windows with p99 close-time slack step it up, under a
    /// bounded step. Requires `streaming`, a starting `min_updates` > 0
    /// and a `round_deadline_s` > 0. The schedule is a pure function of
    /// the telemetry history, so replays are byte-identical.
    bool adaptive_quorum = false;
    /// Durable runs: write a `core::RunCheckpoint` every this many
    /// completed rounds (0 = checkpointing off). A checkpointed run
    /// SIGKILLed at any point resumes — via `run_scenario --resume` —
    /// bit-identical to a never-interrupted twin (see docs/ARCHITECTURE.md,
    /// "Durability model"). Requires `checkpoint_dir`.
    std::size_t checkpoint_every = 0;
    /// Where checkpoint files land: one `<policy>-t<trial>/` subdirectory
    /// per run, created on demand.
    std::string checkpoint_dir;
    /// Keep-last-K retention per run directory (old checkpoints and stale
    /// `.tmp` files are deleted after each successful write). Must be >= 1
    /// when checkpointing is on.
    std::size_t checkpoint_keep = 3;
};

/// Everything needed to reproduce one experiment, simulator or testbed.
struct ExperimentSpec {
    ExperimentKind kind = ExperimentKind::simulation;
    std::uint64_t seed = 7;
    PopulationSpec population;
    AuctionSpec auction;
    TrainingSpec training;
    TimingSpec timing;
};

[[nodiscard]] bool operator==(const PopulationSpec&, const PopulationSpec&);
[[nodiscard]] bool operator==(const AuctionSpec&, const AuctionSpec&);
[[nodiscard]] bool operator==(const TrainingSpec&, const TrainingSpec&);
[[nodiscard]] bool operator==(const TimingSpec&, const TimingSpec&);
[[nodiscard]] bool operator==(const ExperimentSpec&, const ExperimentSpec&);

[[nodiscard]] std::string to_string(ExperimentKind kind);

/// Simulator defaults for `dataset` with the per-dataset hyperparameters
/// applied — spec-level twin of `default_simulation`.
[[nodiscard]] ExperimentSpec default_experiment(DatasetKind dataset);
/// Testbed defaults — spec-level twin of `RealWorldConfig{}`.
[[nodiscard]] ExperimentSpec default_testbed_experiment();

// ---------------------------------------------------------------------------
// Compatibility shims — the only sanctioned way to build the legacy config
// structs. Everything outside src/core should hold an ExperimentSpec.
// ---------------------------------------------------------------------------

/// @throws std::invalid_argument when `spec.kind` is not `simulation`
[[nodiscard]] SimulationConfig to_simulation_config(const ExperimentSpec& spec);
/// @throws std::invalid_argument when `spec.kind` is not `testbed`
[[nodiscard]] RealWorldConfig to_realworld_config(const ExperimentSpec& spec);
[[nodiscard]] ExperimentSpec from_simulation_config(const SimulationConfig& config);
[[nodiscard]] ExperimentSpec from_realworld_config(const RealWorldConfig& config);

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

/// Every problem found, one actionable message per entry ("auction.psi =
/// -0.5: must be ..."); empty means the spec is runnable.
[[nodiscard]] std::vector<std::string> validate(const ExperimentSpec& spec);
/// @throws std::invalid_argument joining all validation messages
void validate_or_throw(const ExperimentSpec& spec);

// ---------------------------------------------------------------------------
// key=value text (de)serialization
// ---------------------------------------------------------------------------

/// Render the spec as "section.key = value" lines (doubles at full
/// round-trip precision). `parse_experiment_spec(to_text(spec)) == spec`.
[[nodiscard]] std::string to_text(const ExperimentSpec& spec);

/// Apply one "section.key" assignment to `spec` in place (the CLI's
/// `--set key=value`).
/// @throws std::invalid_argument for unknown keys (listing the section's
///         keys) or unparseable values
void apply_key_value(ExperimentSpec& spec, const std::string& key,
                     const std::string& value);

/// Parse key=value text (one assignment per line; '#' starts a comment;
/// blank lines ignored). Starts from simulation defaults — put a
/// `kind = testbed` line first (or start from a named scenario) when
/// writing testbed scenario files, since later keys override earlier ones
/// but `kind` never re-materializes defaults.
/// @throws std::invalid_argument with the offending line number and text
[[nodiscard]] ExperimentSpec parse_experiment_spec(const std::string& text);

// ---------------------------------------------------------------------------
// Running a spec
// ---------------------------------------------------------------------------

/// One fully-assembled trial of `spec` — the facade over the simulator and
/// testbed engines. Construction validates the spec (throwing with every
/// problem listed), builds the world for `trial_index` and reuses any
/// cached equilibrium tabulation (equilibrium_cache.hpp).
class ExperimentTrial {
public:
    ExperimentTrial(const ExperimentSpec& spec, std::size_t trial_index);

    /// Run the federated experiment under a named selection policy
    /// ("fmore", "psi_fmore", "randfl", "fixfl", or any PolicyRegistry
    /// registration). Each call re-initializes the model and population
    /// from the trial seed, so policies compared within a trial start from
    /// identical state.
    [[nodiscard]] fl::RunResult run(const std::string& policy);
    /// Legacy-enum overload.
    [[nodiscard]] fl::RunResult run(Strategy strategy);

    /// `run(policy)` with durable-run support: when `resume_from` is
    /// non-null the trial restores the checkpointed state and continues
    /// from the next round (bit-identical to an uninterrupted run); either
    /// way, `timing.checkpoint_every > 0` writes checkpoints as rounds
    /// complete. @throws std::invalid_argument when the checkpoint belongs
    /// to a different spec or policy.
    [[nodiscard]] fl::RunResult run_resumable(const std::string& policy,
                                              const RunCheckpoint* resume_from);

    /// Sealed-bid score board of the last auction-backed round (Fig. 8).
    [[nodiscard]] const std::vector<double>& last_all_scores() const;
    /// Per-client shards of this trial's world.
    [[nodiscard]] const std::vector<ml::ClientShard>& shards() const;

    [[nodiscard]] const ExperimentSpec& spec() const { return spec_; }

private:
    ExperimentSpec spec_;
    std::unique_ptr<SimulationTrial> simulation_;
    std::unique_ptr<RealWorldTrial> testbed_;
};

/// Registry name of the selection policy a legacy Strategy maps to.
[[nodiscard]] std::string to_policy_name(Strategy strategy);

} // namespace fmore::core
