// Parameterized sweeps over (N, K) validating the paper's comparative
// statics: Theorem 2 (profit decreasing in N), Theorem 3 (profit increasing
// in K) and Proposition 2 (identical types make psi irrelevant).

#include <gtest/gtest.h>

#include <cmath>

#include "fmore/auction/equilibrium.hpp"
#include "fmore/auction/winner_determination.hpp"

namespace fmore::auction {
namespace {

class SqrtScoring final : public ScoringRule {
public:
    [[nodiscard]] double quality_score(const QualityVector& q) const override {
        return 2.0 * std::sqrt(q[0]);
    }
    [[nodiscard]] std::size_t dimensions() const override { return 1; }
};

EquilibriumStrategy solve(std::size_t n, std::size_t k, WinModel model) {
    static const SqrtScoring scoring;
    static const AdditiveCost cost({1.0});
    static const stats::UniformDistribution theta(0.5, 1.5);
    EquilibriumConfig cfg;
    cfg.num_bidders = n;
    cfg.num_winners = k;
    cfg.win_model = model;
    return EquilibriumSolver(scoring, cost, theta, {0.01}, {4.0}, cfg).solve();
}

// ---- Theorem 2: expected profit decreases with N (K fixed) --------------

class Theorem2Sweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, WinModel, double>> {};

TEST_P(Theorem2Sweep, ProfitDecreasesInN) {
    const auto [k, model, theta] = GetParam();
    double prev = 1e300;
    for (std::size_t n : {20u, 40u, 80u, 160u}) {
        if (k >= n) continue;
        const double profit = solve(n, k, model).expected_profit(theta);
        EXPECT_LE(profit, prev + 1e-6)
            << "N=" << n << " K=" << k << " theta=" << theta;
        EXPECT_GE(profit, 0.0);
        prev = profit;
    }
}

INSTANTIATE_TEST_SUITE_P(
    NSweep, Theorem2Sweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 5, 10),
                       ::testing::Values(WinModel::paper, WinModel::exact),
                       ::testing::Values(0.7, 1.0, 1.3)));

// ---- Theorem 3: expected profit increases with K (N fixed) --------------

class Theorem3Sweep
    : public ::testing::TestWithParam<std::tuple<WinModel, double>> {};

TEST_P(Theorem3Sweep, ProfitIncreasesInK) {
    const auto [model, theta] = GetParam();
    double prev = -1.0;
    for (std::size_t k : {1u, 5u, 10u, 20u, 35u}) {
        const double profit = solve(100, k, model).expected_profit(theta);
        EXPECT_GE(profit, prev - 1e-6) << "K=" << k << " theta=" << theta;
        prev = profit;
    }
}

INSTANTIATE_TEST_SUITE_P(
    KSweep, Theorem3Sweep,
    ::testing::Combine(::testing::Values(WinModel::paper, WinModel::exact),
                       ::testing::Values(0.7, 1.0, 1.3)));

// ---- Win probability increases with K too -------------------------------

TEST(TheoremSweeps, WinProbabilityIncreasesInK) {
    const double theta = 1.0;
    double prev = 0.0;
    for (std::size_t k : {1u, 5u, 10u, 20u, 40u}) {
        const double g = solve(100, k, WinModel::exact).win_probability_at(theta);
        EXPECT_GE(g, prev - 1e-9);
        prev = g;
    }
}

// ---- Proposition 2: identical theta => psi does not change win rates ----

TEST(Proposition2, EqualTypesWinWithRateKOverN) {
    // All nodes share theta so all bids tie; selection reduces to the coin
    // flips and each node must be selected with probability K/N, psi or not.
    const AdditiveScoring scoring({1.0});
    const std::size_t n = 12;
    const std::size_t k = 3;
    std::vector<Bid> bids;
    for (std::size_t i = 0; i < n; ++i) bids.push_back({i, {0.7}, 0.2});

    for (const double psi : {1.0, 0.5, 0.2}) {
        WinnerDeterminationConfig cfg;
        cfg.num_winners = k;
        cfg.psi = psi;
        const WinnerDetermination wd(scoring, cfg);
        stats::Rng rng(42);
        std::vector<int> wins(n, 0);
        constexpr int trials = 6000;
        for (int t = 0; t < trials; ++t) {
            for (const Winner& w : wd.run(bids, rng).winners) ++wins[w.node];
        }
        const double expected = static_cast<double>(k) / static_cast<double>(n);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(static_cast<double>(wins[i]) / trials, expected, 0.035)
                << "psi=" << psi << " node=" << i;
        }
    }
}

// ---- Paper-vs-exact win model: payments differ but stay ordered ---------

TEST(WinModelComparison, ExactModelNeverPaysMoreAtTop) {
    // The exact model's higher win probability at mid scores weakens the
    // incentive to shade; both remain IR and close at the extremes.
    const auto paper = solve(60, 12, WinModel::paper);
    const auto exact = solve(60, 12, WinModel::exact);
    for (double theta : {0.6, 0.9, 1.2, 1.45}) {
        const double pp = paper.payment(theta);
        const double pe = exact.payment(theta);
        EXPECT_GT(pp, 0.0);
        EXPECT_GT(pe, 0.0);
        // Both cover cost (IR) — the magnitude comparison is the ablation's
        // business, not a theorem.
        EXPECT_GE(pp, 0.0);
    }
}

} // namespace
} // namespace fmore::auction
