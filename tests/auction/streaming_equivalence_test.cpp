// The streaming market's acceptance contract: for EVERY registered
// Mechanism, a streaming round — bids offered one at a time in ANY arrival
// order, either tie-break mode, any thread grid on the batch side —
// closes with winners, payments, scores and ranking BIT-identical to the
// batch `Mechanism::run_frame` over the same arrived set. Streaming is an
// ingestion strategy, not a different mechanism (see ARCHITECTURE.md "The
// streaming marketplace").
//
// The comparison is EXPECT_EQ on doubles on purpose: the contract is
// bit-identity, not tolerance-equality.

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fmore/auction/cost.hpp"
#include "fmore/auction/equilibrium.hpp"
#include "fmore/auction/mechanism.hpp"
#include "fmore/auction/scoring.hpp"
#include "fmore/auction/shard_merge.hpp"
#include "fmore/auction/streaming_market.hpp"
#include "fmore/mec/auction_selector.hpp"
#include "fmore/mec/population.hpp"
#include "fmore/mec/streaming_selector.hpp"
#include "fmore/stats/normalizer.hpp"

namespace fmore::auction {
namespace {

class ScopedEnv {
public:
    ScopedEnv(const char* name, const std::string& value) : name_(name) {
        const char* previous = std::getenv(name);
        had_previous_ = previous != nullptr;
        if (had_previous_) previous_ = previous;
        ::setenv(name, value.c_str(), 1);
    }
    ~ScopedEnv() {
        if (had_previous_) ::setenv(name_, previous_.c_str(), 1);
        else ::unsetenv(name_);
    }

private:
    const char* name_;
    bool had_previous_ = false;
    std::string previous_;
};

constexpr double kDataHi = 150.0;

/// The simulator's scoring (Section V.A), enough for frame-level rounds.
const ScaledProductScoring& scoring() {
    static const std::vector<stats::MinMaxNormalizer> norms = [] {
        std::vector<stats::MinMaxNormalizer> n;
        n.emplace_back(0.0, kDataHi);
        n.emplace_back(0.0, 1.0);
        return n;
    }();
    static const ScaledProductScoring rule(25.0, 2, norms);
    return rule;
}

/// A fully scored random frame: every row active, quality/payment drawn
/// from the simulator's ranges, score column = score_span (the fused
/// collector's contract).
BidFrame random_frame(std::size_t n, stats::Rng& rng) {
    BidFrame frame(n, 2);
    for (NodeId node = 0; node < n; ++node) {
        double* q = frame.quality_row(node);
        q[0] = rng.uniform(5.0, kDataHi);
        q[1] = rng.uniform(0.1, 1.0);
        frame.payment(node) = rng.uniform(0.0, 3.0);
        frame.score(node) = scoring().score_span(q, 2, frame.payment(node));
    }
    frame.set_scored(true);
    return frame;
}

void expect_outcomes_equal(const AuctionOutcome& batch, const AuctionOutcome& stream) {
    ASSERT_EQ(batch.winners.size(), stream.winners.size());
    for (std::size_t w = 0; w < batch.winners.size(); ++w) {
        EXPECT_EQ(batch.winners[w].node, stream.winners[w].node);
        EXPECT_EQ(batch.winners[w].score, stream.winners[w].score);
        EXPECT_EQ(batch.winners[w].payment, stream.winners[w].payment);
    }
    ASSERT_EQ(batch.ranking.size(), stream.ranking.size());
    for (std::size_t r = 0; r < batch.ranking.size(); ++r) {
        EXPECT_EQ(batch.ranking[r].bid.node, stream.ranking[r].bid.node);
        EXPECT_EQ(batch.ranking[r].score, stream.ranking[r].score);
        EXPECT_EQ(batch.ranking[r].bid.payment, stream.ranking[r].bid.payment);
        EXPECT_EQ(batch.ranking[r].bid.quality, stream.ranking[r].bid.quality);
    }
}

/// Offer every row of `frame` to a fresh streaming round in `order`, close,
/// and compare against batch run_frame over the same frame — SAME seed on
/// both generators.
void check_frame_equivalence(const MechanismSpec& spec, const BidFrame& frame,
                             const std::vector<NodeId>& order, std::uint64_t seed) {
    const std::shared_ptr<const Mechanism> mech(make_mechanism(spec));

    stats::Rng batch_rng(seed);
    RankScratch scratch;
    AuctionOutcome batch;
    mech->run_frame(scoring(), frame, batch_rng, scratch, batch);

    StreamingMarket market(mech, scoring());
    stats::Rng stream_rng(seed);
    market.open_round(frame.rows(), frame.dims(), {}, stream_rng);
    double clock = 0.0;
    for (const NodeId node : order) {
        ASSERT_TRUE(market.offer(node, frame.quality_row(node), frame.payment(node),
                                 frame.score(node), clock));
        clock += 0.001;
    }
    EXPECT_TRUE(market.closed());
    EXPECT_EQ(market.close_reason(), CloseReason::exhausted);
    expect_outcomes_equal(batch, market.close_round(stream_rng));
}

TEST(StreamingEquivalence, RandomizedFramesAnyArrivalOrderMatchRunFrame) {
    // Randomized N/K, shuffled arrival orders, both tie-break modes, both
    // ranking depths, second-price cutoffs — under every batch thread grid
    // (the batch side parallelizes; the streaming side is one arrival at a
    // time by construction).
    for (const char* threads : {"1", "4"}) {
        const ScopedEnv env("FMORE_ROUND_THREADS", threads);
        stats::Rng meta(0x57ea3ULL);
        for (int trial = 0; trial < 12; ++trial) {
            const std::size_t n = static_cast<std::size_t>(meta.uniform_int(2, 160));
            const std::size_t k = static_cast<std::size_t>(meta.uniform_int(1, 40));
            MechanismSpec spec;
            spec.num_winners = k;
            spec.full_ranking = trial % 2 == 0;
            if (trial % 3 == 0) {
                spec.payment_rule = PaymentRule::second_price;
                spec.mechanism = "second_score";
            }
            if (trial % 4 == 1) spec.tie_break = TieBreak::salted;
            SCOPED_TRACE("threads=" + std::string(threads) + " trial "
                         + std::to_string(trial) + ": n=" + std::to_string(n)
                         + " k=" + std::to_string(k)
                         + (spec.tie_break == TieBreak::salted ? " salted" : " shuffle"));

            stats::Rng data_rng(0xabcULL + static_cast<std::uint64_t>(trial));
            const BidFrame frame = random_frame(n, data_rng);
            std::vector<NodeId> order(n);
            for (NodeId i = 0; i < n; ++i) order[i] = i;
            meta.shuffle(order);
            check_frame_equivalence(spec, frame, order,
                                    0x5eedULL + static_cast<std::uint64_t>(trial));
        }
    }
}

TEST(StreamingEquivalence, EveryRegisteredMechanismMatchesRunFrame) {
    // Whatever is registered right now — the streaming close must not care
    // which mechanism it is running: the built-in engine streams the salted
    // lane incrementally, everything else replays the batch pass over the
    // arrived frame.
    for (const std::string& name : MechanismRegistry::instance().names()) {
        for (const std::uint64_t seed : {13ULL, 59ULL}) {
            SCOPED_TRACE("mechanism " + name + ", seed " + std::to_string(seed));
            MechanismSpec spec;
            spec.mechanism = name;
            spec.num_winners = 9;
            spec.tie_break = seed == 13ULL ? TieBreak::salted : TieBreak::shuffle;
            if (name.find("psi") != std::string::npos) spec.psi = 0.6;
            if (name.find("budget") != std::string::npos) spec.budget = 40.0;
            if (name.find("second") != std::string::npos)
                spec.payment_rule = PaymentRule::second_price;
            if (name == "latency_discounted") {
                spec.latency_discount = 0.8;
                for (std::size_t i = 0; i < 72; ++i)
                    spec.expected_latency_s.push_back(0.01 * static_cast<double>(i % 9));
            }
            stats::Rng data_rng(seed * 1000003ULL);
            const BidFrame frame = random_frame(72, data_rng);
            std::vector<NodeId> order(72);
            for (NodeId i = 0; i < 72; ++i) order[i] = i;
            data_rng.shuffle(order);
            check_frame_equivalence(spec, frame, order, seed);
        }
    }
}

TEST(StreamingEquivalence, DeadlineCloseMatchesBatchOverArrivedSet) {
    // A deadline round is the exact batch market over whoever made the cut:
    // rebuild a frame with only the arrived rows active and compare.
    for (const TieBreak tie : {TieBreak::shuffle, TieBreak::salted}) {
        SCOPED_TRACE(tie == TieBreak::salted ? "salted" : "shuffle");
        MechanismSpec spec;
        spec.num_winners = 6;
        spec.tie_break = tie;
        const std::shared_ptr<const Mechanism> mech(make_mechanism(spec));

        const std::size_t n = 50;
        stats::Rng data_rng(0xdeadULL);
        const BidFrame frame = random_frame(n, data_rng);

        StreamingMarket market(mech, scoring());
        stats::Rng stream_rng(0x11ULL);
        StreamingRoundSpec round;
        round.deadline_s = 0.5;
        market.open_round(n, 2, round, stream_rng);
        std::size_t arrived = 0;
        for (NodeId node = 0; node < n; ++node) {
            // Node i arrives at 0.02 * i: nodes 0..25 make the 0.5 s cut,
            // node 26 misses it and closes the round.
            if (!market.offer(node, frame.quality_row(node), frame.payment(node),
                              frame.score(node), 0.02 * static_cast<double>(node)))
                break;
            ++arrived;
        }
        ASSERT_EQ(arrived, 26u);
        EXPECT_EQ(market.close_reason(), CloseReason::deadline);
        EXPECT_EQ(market.close_time_s(), 0.5);
        EXPECT_EQ(market.arrived(), arrived);

        BidFrame truncated = frame;
        for (NodeId node = arrived; node < n; ++node) truncated.set_active(node, false);
        // Same seed on both sides: the streaming round drew its tie salt
        // when it OPENED (before any bid), exactly where batch run_frame
        // draws it, so the generator streams align.
        RankScratch scratch;
        AuctionOutcome batch;
        stats::Rng replay_rng(0x11ULL);
        mech->run_frame(scoring(), truncated, replay_rng, scratch, batch);
        expect_outcomes_equal(batch, market.close_round(stream_rng));
    }
}

TEST(StreamingEquivalence, QuorumCloseMatchesBatchOverArrivedSet) {
    MechanismSpec spec;
    spec.num_winners = 5;
    const std::shared_ptr<const Mechanism> mech(make_mechanism(spec));

    const std::size_t n = 40;
    const std::size_t quorum = 17;
    stats::Rng data_rng(0x40ULL);
    const BidFrame frame = random_frame(n, data_rng);

    StreamingMarket market(mech, scoring());
    stats::Rng stream_rng(0x21ULL);
    StreamingRoundSpec round;
    round.quorum = quorum;
    round.deadline_s = 100.0; // never fires: the quorum races it and wins
    market.open_round(n, 2, round, stream_rng);
    for (NodeId node = 0; node < n; ++node) {
        const bool accepted =
            market.offer(node, frame.quality_row(node), frame.payment(node),
                         frame.score(node), 0.01 * static_cast<double>(node));
        if (node < quorum) EXPECT_TRUE(accepted);
        else EXPECT_FALSE(accepted) << "bid accepted after the quorum close";
        if (market.closed() && node >= quorum) break;
    }
    EXPECT_EQ(market.close_reason(), CloseReason::quorum);
    EXPECT_EQ(market.arrived(), quorum);
    EXPECT_EQ(market.close_time_s(), 0.01 * static_cast<double>(quorum - 1));

    BidFrame truncated = frame;
    for (NodeId node = quorum; node < n; ++node) truncated.set_active(node, false);
    RankScratch scratch;
    AuctionOutcome batch;
    stats::Rng batch_rng(0x21ULL);
    mech->run_frame(scoring(), truncated, batch_rng, scratch, batch);
    expect_outcomes_equal(batch, market.close_round(stream_rng));
}

TEST(StreamingEquivalence, IngestionGuardsAndIdempotentClose) {
    MechanismSpec spec;
    spec.num_winners = 3;
    StreamingMarket market(std::shared_ptr<const Mechanism>(make_mechanism(spec)),
                           scoring());
    stats::Rng rng(7);
    stats::Rng data_rng(8);
    const BidFrame frame = random_frame(6, data_rng);
    market.open_round(6, 2, {}, rng);
    EXPECT_FALSE(market.closed());
    ASSERT_TRUE(market.offer(2, frame.quality_row(2), frame.payment(2), frame.score(2),
                             1.0));
    // Duplicate bid, unknown node, and a clock running backwards are caller
    // bugs, not close conditions.
    EXPECT_THROW(market.offer(2, frame.quality_row(2), frame.payment(2),
                              frame.score(2), 2.0),
                 std::invalid_argument);
    EXPECT_THROW(market.offer(6, frame.quality_row(0), frame.payment(0),
                              frame.score(0), 2.0),
                 std::invalid_argument);
    EXPECT_THROW(market.offer(3, frame.quality_row(3), frame.payment(3),
                              frame.score(3), 0.5),
                 std::invalid_argument);

    // Closing an open round finalizes it as exhausted; closing again is a
    // no-op that must not consume the generator.
    const AuctionOutcome& first = market.close_round(rng);
    EXPECT_EQ(market.close_reason(), CloseReason::exhausted);
    const AuctionOutcome& again = market.close_round(rng);
    EXPECT_EQ(&first, &again);
    // A closed round refuses further bids without throwing.
    EXPECT_FALSE(market.offer(4, frame.quality_row(4), frame.payment(4),
                              frame.score(4), 9.0));
}

TEST(StreamingEquivalence, HeadChurnCountsProvisionalEvictions) {
    // Scores rise with the node id, so after the head first fills every
    // later arrival evicts a resident: churn = n - k exactly.
    MechanismSpec spec;
    spec.num_winners = 4;
    spec.tie_break = TieBreak::salted;
    spec.full_ranking = false;
    StreamingMarket market(std::shared_ptr<const Mechanism>(make_mechanism(spec)),
                           scoring());
    stats::Rng rng(3);
    const std::size_t n = 20;
    BidFrame frame(n, 2);
    for (NodeId node = 0; node < n; ++node) {
        double* q = frame.quality_row(node);
        q[0] = 10.0 + static_cast<double>(node) * 5.0;
        q[1] = 0.5;
        frame.payment(node) = 0.25;
        frame.score(node) = scoring().score_span(q, 2, 0.25);
    }
    frame.set_scored(true);
    market.open_round(n, 2, {}, rng);
    for (NodeId node = 0; node < n; ++node)
        (void)market.offer(node, frame.quality_row(node), frame.payment(node),
                           frame.score(node), 0.0);
    EXPECT_EQ(market.head_churn(), n - spec.num_winners);
}

TEST(StreamingEquivalence, QuorumOnTheFinalExpectedBidOutranksExhaustion) {
    // When the quorum fills on the very last expected bid, the round closes
    // as `quorum` (at that bid's arrival), not `exhausted` — the rule the
    // cross-process coordinator replicates in resolve_stream_close.
    MechanismSpec spec;
    spec.num_winners = 3;
    StreamingMarket market(std::shared_ptr<const Mechanism>(make_mechanism(spec)),
                           scoring());
    stats::Rng rng(5);
    stats::Rng data_rng(6);
    const std::size_t n = 12;
    const BidFrame frame = random_frame(n, data_rng);
    StreamingRoundSpec round;
    round.quorum = n;
    market.open_round(n, 2, round, rng);
    for (NodeId node = 0; node < n; ++node)
        ASSERT_TRUE(market.offer(node, frame.quality_row(node),
                                 frame.payment(node), frame.score(node),
                                 0.05 * static_cast<double>(node)));
    EXPECT_EQ(market.close_reason(), CloseReason::quorum);
    EXPECT_EQ(market.arrived(), n);
    EXPECT_EQ(market.close_time_s(), 0.05 * static_cast<double>(n - 1));
}

TEST(StreamingEquivalence, ShardedCloseMatchesMonolithicBothTieModes) {
    // close_round_sharded carves the arrived frame into virtual shards,
    // collects each shard's bounded head and folds them through a
    // StreamingHeadMerge — the composition the cross-process aggregator
    // runs over its pipes. Whatever the carve, the outcome must be
    // bit-identical to close_round over the same arrived set, in both tie
    // modes (shuffle takes the batch-replay fallback).
    const std::size_t n = 60;
    for (const TieBreak tie : {TieBreak::shuffle, TieBreak::salted}) {
        for (const bool full_ranking : {false, true}) {
            SCOPED_TRACE(std::string(tie == TieBreak::salted ? "salted" : "shuffle")
                         + (full_ranking ? " full" : " truncated"));
            MechanismSpec spec;
            spec.num_winners = 7;
            spec.tie_break = tie;
            spec.full_ranking = full_ranking;
            const std::shared_ptr<const Mechanism> mech(make_mechanism(spec));
            stats::Rng data_rng(0x5aadULL);
            const BidFrame frame = random_frame(n, data_rng);
            for (const std::vector<std::size_t>& starts :
                 {std::vector<std::size_t>{0}, {0, 20, 40}, {0, 1, 59},
                  {0, 15, 30, 45}}) {
                StreamingMarket mono(mech, scoring());
                StreamingMarket sharded(mech, scoring());
                stats::Rng mono_rng(0x31ULL);
                stats::Rng shard_rng(0x31ULL);
                StreamingRoundSpec round;
                round.quorum = 41;  // close mid-stream: a partial frame
                mono.open_round(n, 2, round, mono_rng);
                sharded.open_round(n, 2, round, shard_rng);
                for (NodeId node = 0; node < n; ++node) {
                    const double at = 0.01 * static_cast<double>(node);
                    if (!mono.offer(node, frame.quality_row(node),
                                    frame.payment(node), frame.score(node), at))
                        break;
                    (void)sharded.offer(node, frame.quality_row(node),
                                        frame.payment(node), frame.score(node), at);
                }
                expect_outcomes_equal(mono.close_round(mono_rng),
                                      sharded.close_round_sharded(shard_rng, starts));
                EXPECT_EQ(mono.close_reason(), sharded.close_reason());
            }
        }
    }
}

TEST(StreamingEquivalence, ShardedCloseValidatesShardStarts) {
    MechanismSpec spec;
    spec.num_winners = 3;
    spec.tie_break = TieBreak::salted;
    spec.full_ranking = false;
    StreamingMarket market(std::shared_ptr<const Mechanism>(make_mechanism(spec)),
                           scoring());
    stats::Rng rng(9);
    stats::Rng data_rng(10);
    const BidFrame frame = random_frame(8, data_rng);
    market.open_round(8, 2, {}, rng);
    for (NodeId node = 0; node < 8; ++node)
        (void)market.offer(node, frame.quality_row(node), frame.payment(node),
                           frame.score(node), 0.0);
    EXPECT_THROW((void)market.close_round_sharded(rng, {}), std::invalid_argument);
    EXPECT_THROW((void)market.close_round_sharded(rng, {0, 5, 3}),
                 std::invalid_argument);
    EXPECT_THROW((void)market.close_round_sharded(rng, {2, 5}),
                 std::invalid_argument);
    // A valid carve still closes the round after the rejected attempts.
    const AuctionOutcome& out = market.close_round_sharded(rng, {0, 4});
    EXPECT_EQ(out.winners.size(), 3u);
}

// ---------------------------------------------------------------------------
// Shard streams: StreamingHeadMerge must reproduce merge_heads — and through
// it the monolithic head — for any shard count, heads arriving one at a time.

TEST(StreamingEquivalence, ShardStreamsMergeIdenticallyAcrossShardCounts) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
        for (const bool salted : {false, true}) {
            SCOPED_TRACE("S=" + std::to_string(shards)
                         + (salted ? " salted" : " shuffle"));
            MechanismSpec spec;
            spec.num_winners = 12;
            spec.full_ranking = false;
            spec.tie_break = salted ? TieBreak::salted : TieBreak::shuffle;
            const std::shared_ptr<const Mechanism> mech(make_mechanism(spec));
            const auto* engine = dynamic_cast<const ScoreAuctionMechanism*>(mech.get());
            ASSERT_NE(engine, nullptr);

            const std::size_t n = 97; // deliberately not divisible by S
            stats::Rng data_rng(0x9ULL + shards);
            const BidFrame frame = random_frame(n, data_rng);
            const std::size_t cutoff = engine->ranking_cutoff(n);

            // The same tie keys the monolithic salted pass would derive —
            // drawn exactly like rank_frame draws them (first draw).
            stats::Rng key_rng(0x77ULL);
            TieKeys keys;
            keys.salted = salted;
            keys.salt = key_rng.engine()();
            std::vector<std::uint32_t> pos;
            if (!salted) {
                // Shuffle mode's inverse permutation over all active rows,
                // derived with the batch pass's draw order.
                std::vector<std::size_t> order(n);
                for (std::size_t i = 0; i < n; ++i) order[i] = i;
                stats::Rng shuffle_rng(0x77ULL);
                shuffle_rng.shuffle(order);
                pos.resize(n);
                for (std::uint32_t j = 0; j < n; ++j)
                    pos[order[j]] = j;
                keys.pos = pos.data();
                keys.salted = false;
            }

            // Per-shard frames over contiguous row ranges (local row ids),
            // heads collected in market coordinates via node_offset.
            std::vector<ShardHead> heads(shards);
            StreamingHeadMerge streaming;
            streaming.open(2, cutoff);
            const std::size_t base = n / shards;
            std::size_t lo = 0;
            for (std::size_t s = 0; s < shards; ++s) {
                const std::size_t hi = s + 1 == shards ? n : lo + base;
                BidFrame local(hi - lo, 2);
                for (std::size_t row = 0; row < hi - lo; ++row) {
                    const NodeId node = static_cast<NodeId>(lo + row);
                    double* q = local.quality_row(row);
                    q[0] = frame.quality_row(node)[0];
                    q[1] = frame.quality_row(node)[1];
                    local.payment(row) = frame.payment(node);
                    local.score(row) = frame.score(node);
                }
                local.set_scored(true);
                collect_shard_head(local, lo, keys, cutoff, heads[s]);
                streaming.ingest(heads[s]);
                lo = hi;
            }
            EXPECT_EQ(streaming.ingested(), shards);

            std::vector<ScoredBid> batch_ranking;
            merge_heads(heads, cutoff, batch_ranking);
            std::vector<ScoredBid> stream_ranking;
            streaming.finish(stream_ranking);

            ASSERT_EQ(batch_ranking.size(), stream_ranking.size());
            for (std::size_t r = 0; r < batch_ranking.size(); ++r) {
                EXPECT_EQ(batch_ranking[r].bid.node, stream_ranking[r].bid.node);
                EXPECT_EQ(batch_ranking[r].score, stream_ranking[r].score);
                EXPECT_EQ(batch_ranking[r].bid.payment, stream_ranking[r].bid.payment);
                EXPECT_EQ(batch_ranking[r].bid.quality, stream_ranking[r].bid.quality);
            }
        }
    }
}

TEST(StreamingEquivalence, HeadMergeRejectsMismatchedDimensions) {
    StreamingHeadMerge merge;
    merge.open(2, 4);
    ShardHead head;
    head.dims = 3;
    head.rows.push_back({0, 1.0, 0, 0.5});
    head.quality = {1.0, 2.0, 3.0};
    EXPECT_THROW(merge.ingest(head), std::invalid_argument);
}

} // namespace
} // namespace fmore::auction

// ---------------------------------------------------------------------------
// Selector-level equivalence: the StreamingAuctionSelector over a live
// population — straggler-ordered closed-loop arrivals, no deadline, no
// quorum — must reproduce the batch AuctionSelector's rounds bit for bit,
// records, compliance rolls and blacklist bans included.

namespace fmore::mec {
namespace {

constexpr double kDataHi = 150.0;

struct Market {
    std::vector<stats::MinMaxNormalizer> norms;
    std::unique_ptr<auction::ScaledProductScoring> scoring;
    std::unique_ptr<auction::AdditiveCost> cost;
    std::unique_ptr<stats::UniformDistribution> theta;
    std::unique_ptr<auction::EquilibriumStrategy> strategy;

    Market() {
        norms.emplace_back(0.0, kDataHi);
        norms.emplace_back(0.0, 1.0);
        scoring = std::make_unique<auction::ScaledProductScoring>(25.0, 2, norms);
        cost = std::make_unique<auction::AdditiveCost>(
            std::vector<double>{6.0 / kDataHi, 2.0});
        theta = std::make_unique<stats::UniformDistribution>(0.5, 1.5);
        auction::EquilibriumConfig eq;
        eq.num_bidders = 100;
        eq.num_winners = 8;
        strategy = std::make_unique<auction::EquilibriumStrategy>(
            auction::EquilibriumSolver(*scoring, *cost, *theta, {1.0, 0.05},
                                       {kDataHi, 1.0}, eq)
                .solve());
    }
};

const Market& market() {
    static const Market m;
    return m;
}

PopulationStore make_store(std::size_t n, std::uint64_t seed) {
    PopulationSpec spec;
    spec.dynamics.resource_jitter = 0.08;
    spec.dynamics.theta_jitter = 0.02;
    SyntheticDataSpec data;
    data.data_lo = 20.0;
    data.data_hi = kDataHi;
    stats::Rng rng(seed);
    return PopulationStore(n, data, *market().theta, spec, rng);
}

StreamingRoundConfig staggered_arrivals(std::size_t n) {
    // Non-uniform closed-loop latencies: arrival order is NOT node order,
    // which is the point — the close must not care.
    StreamingRoundConfig sc;
    sc.bid_latencies_s.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        sc.bid_latencies_s[i] = 0.005 * static_cast<double>((i * 7 + 3) % 23);
    return sc;
}

TEST(StreamingSelectorEquivalence, EveryRegisteredMechanismMatchesBatchSelector) {
    const Market& m = market();
    for (const std::string& name : auction::MechanismRegistry::instance().names()) {
        const std::uint64_t seed = 0x5ca1eULL ^ std::hash<std::string>{}(name);
        SCOPED_TRACE("mechanism " + name);
        auction::WinnerDeterminationConfig wd;
        wd.mechanism = name;
        wd.num_winners = 7;
        if (name.find("psi") != std::string::npos) wd.psi = 0.6;
        if (name.find("budget") != std::string::npos) wd.budget = 40.0;
        if (name.find("second") != std::string::npos)
            wd.payment_rule = auction::PaymentRule::second_price;
        if (name == "latency_discounted") {
            wd.latency_discount = 0.5;
            for (std::size_t i = 0; i < 60; ++i)
                wd.expected_latency_s.push_back(0.02 * static_cast<double>(i % 5));
        }

        const std::size_t n = 60;
        MecPopulation batch_pop(make_store(n, seed));
        MecPopulation stream_pop(make_store(n, seed));
        AuctionSelector batch(batch_pop, *m.scoring, *m.strategy, wd,
                              data_category_extractor(), /*data_dimension=*/0);
        StreamingAuctionSelector streaming(
            stream_pop, *m.scoring, *m.strategy, wd,
            {ResourceDim::data_size, ResourceDim::category_proportion},
            /*data_dimension=*/0, staggered_arrivals(n));

        stats::Rng batch_rng(seed ^ 0xf00dULL);
        stats::Rng stream_rng(seed ^ 0xf00dULL);
        for (std::size_t round = 1; round <= 4; ++round) {
            SCOPED_TRACE("round " + std::to_string(round));
            const auction::AuctionOutcome& a =
                batch.run_auction_round(round, 7, batch_rng);
            const auction::AuctionOutcome& b =
                streaming.run_auction_round(round, 7, stream_rng);
            auction::expect_outcomes_equal(a, b);
            EXPECT_EQ(streaming.last_close_reason(), auction::CloseReason::exhausted);
            EXPECT_EQ(streaming.last_arrived(), n);
        }
    }
}

TEST(StreamingSelectorEquivalence, SaltedTieBreakMatchesBatchSelector) {
    const Market& m = market();
    for (const std::uint64_t seed : {5ULL, 23ULL}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        auction::WinnerDeterminationConfig wd;
        wd.num_winners = 9;
        wd.tie_break = auction::TieBreak::salted;
        wd.full_ranking = false;

        const std::size_t n = 110;
        MecPopulation batch_pop(make_store(n, seed));
        MecPopulation stream_pop(make_store(n, seed));
        AuctionSelector batch(batch_pop, *m.scoring, *m.strategy, wd,
                              data_category_extractor(), /*data_dimension=*/0);
        StreamingAuctionSelector streaming(
            stream_pop, *m.scoring, *m.strategy, wd,
            {ResourceDim::data_size, ResourceDim::category_proportion},
            /*data_dimension=*/0, staggered_arrivals(n));

        stats::Rng batch_rng(seed);
        stats::Rng stream_rng(seed);
        for (std::size_t round = 1; round <= 4; ++round) {
            SCOPED_TRACE("round " + std::to_string(round));
            auction::expect_outcomes_equal(
                batch.run_auction_round(round, 9, batch_rng),
                streaming.run_auction_round(round, 9, stream_rng));
        }
    }
}

TEST(StreamingSelectorEquivalence, SelectionRecordsAndBlacklistStayIdentical) {
    const Market& m = market();
    const std::uint64_t seed = 0x7e58ULL;
    const std::size_t n = 80;
    const std::size_t k = 10;
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = k;

    MecPopulation batch_pop(make_store(n, seed));
    MecPopulation stream_pop(make_store(n, seed));
    AuctionSelector batch(batch_pop, *m.scoring, *m.strategy, wd,
                          data_category_extractor(), /*data_dimension=*/0);
    StreamingAuctionSelector streaming(
        stream_pop, *m.scoring, *m.strategy, wd,
        {ResourceDim::data_size, ResourceDim::category_proportion},
        /*data_dimension=*/0, staggered_arrivals(n));
    ComplianceSpec compliance;
    compliance.defect_probability = 0.35;
    batch.set_compliance(compliance);
    streaming.set_compliance(compliance);

    stats::Rng batch_rng(seed);
    stats::Rng stream_rng(seed);
    for (std::size_t round = 1; round <= 6; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        const fl::SelectionRecord a = batch.select(round, k, batch_rng);
        const fl::SelectionRecord b = streaming.select(round, k, stream_rng);
        ASSERT_EQ(a.selected.size(), b.selected.size());
        for (std::size_t w = 0; w < a.selected.size(); ++w) {
            EXPECT_EQ(a.selected[w].client, b.selected[w].client);
            EXPECT_EQ(a.selected[w].payment, b.selected[w].payment);
            EXPECT_EQ(a.selected[w].score, b.selected[w].score);
            EXPECT_EQ(a.selected[w].train_samples, b.selected[w].train_samples);
        }
        EXPECT_EQ(a.all_scores, b.all_scores);
        EXPECT_EQ(a.scores_by_node, b.scores_by_node);
        EXPECT_EQ(batch.blacklist().size(), streaming.blacklist().size());
    }
    EXPECT_GT(batch.blacklist().size(), 0u)
        << "compliance model never banned anyone — blacklist propagation untested";
}

TEST(StreamingSelectorEquivalence, QuorumAndDeadlineTruncateTheRound) {
    const Market& m = market();
    const std::size_t n = 64;
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = 6;

    // Quorum: the round closes at the 20th arrival even though all 64 bid.
    {
        MecPopulation pop(make_store(n, 0x9aULL));
        StreamingRoundConfig sc = staggered_arrivals(n);
        sc.quorum = 20;
        StreamingAuctionSelector streaming(
            pop, *m.scoring, *m.strategy, wd,
            {ResourceDim::data_size, ResourceDim::category_proportion},
            /*data_dimension=*/0, sc);
        stats::Rng rng(1);
        const auction::AuctionOutcome& outcome = streaming.run_auction_round(1, 6, rng);
        EXPECT_EQ(streaming.last_close_reason(), auction::CloseReason::quorum);
        EXPECT_EQ(streaming.last_arrived(), 20u);
        EXPECT_EQ(outcome.winners.size(), 6u);
    }
    // Deadline: only nodes whose latency beats the cut arrive.
    {
        MecPopulation pop(make_store(n, 0x9aULL));
        StreamingRoundConfig sc = staggered_arrivals(n);
        sc.deadline_s = 0.05;
        StreamingAuctionSelector streaming(
            pop, *m.scoring, *m.strategy, wd,
            {ResourceDim::data_size, ResourceDim::category_proportion},
            /*data_dimension=*/0, sc);
        stats::Rng rng(1);
        (void)streaming.run_auction_round(1, 6, rng);
        EXPECT_EQ(streaming.last_close_reason(), auction::CloseReason::deadline);
        EXPECT_EQ(streaming.last_close_time_s(), 0.05);
        std::size_t within = 0;
        for (const double latency : sc.bid_latencies_s)
            within += latency <= 0.05 ? 1 : 0;
        EXPECT_EQ(streaming.last_arrived(), within);
    }
    // Poisson arrivals: every active node still bids exactly once when no
    // trigger fires, and the process is deterministic under the seed.
    {
        MecPopulation pop(make_store(n, 0x9aULL));
        StreamingRoundConfig sc;
        sc.process = ArrivalProcess::poisson;
        sc.arrival_rate_hz = 500.0;
        StreamingAuctionSelector streaming(
            pop, *m.scoring, *m.strategy, wd,
            {ResourceDim::data_size, ResourceDim::category_proportion},
            /*data_dimension=*/0, sc);
        stats::Rng rng(1);
        const auction::AuctionOutcome& outcome = streaming.run_auction_round(1, 6, rng);
        EXPECT_EQ(streaming.last_close_reason(), auction::CloseReason::exhausted);
        EXPECT_EQ(streaming.last_arrived(), n);
        EXPECT_EQ(outcome.winners.size(), 6u);
    }
}

TEST(StreamingSelectorEquivalence, ShardedRoundsMatchMonolithicRounds) {
    // `auction.shards > 1` only changes HOW the round closes (the virtual
    // carve + head merge), never what it selects: a sharded selector and a
    // monolithic one over the same population and seed stay bit-identical,
    // with quorum/deadline truncation in play.
    const Market& m = market();
    const std::size_t n = 72;
    const std::size_t k = 6;
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = k;
    wd.tie_break = auction::TieBreak::salted;
    wd.full_ranking = false;
    for (const std::size_t shards : {2u, 5u}) {
        SCOPED_TRACE("shards " + std::to_string(shards));
        MecPopulation mono_pop(make_store(n, 0xabcULL));
        MecPopulation shard_pop(make_store(n, 0xabcULL));
        StreamingRoundConfig mono_sc = staggered_arrivals(n);
        mono_sc.quorum = 30;
        StreamingRoundConfig shard_sc = mono_sc;
        shard_sc.shards = shards;
        StreamingAuctionSelector mono(
            mono_pop, *m.scoring, *m.strategy, wd,
            {ResourceDim::data_size, ResourceDim::category_proportion},
            /*data_dimension=*/0, mono_sc);
        StreamingAuctionSelector sharded(
            shard_pop, *m.scoring, *m.strategy, wd,
            {ResourceDim::data_size, ResourceDim::category_proportion},
            /*data_dimension=*/0, shard_sc);
        stats::Rng mono_rng(3);
        stats::Rng shard_rng(3);
        for (std::size_t round = 1; round <= 4; ++round) {
            SCOPED_TRACE("round " + std::to_string(round));
            auction::expect_outcomes_equal(
                mono.run_auction_round(round, k, mono_rng),
                sharded.run_auction_round(round, k, shard_rng));
            EXPECT_EQ(sharded.last_close_reason(), mono.last_close_reason());
            EXPECT_EQ(sharded.last_close_time_s(), mono.last_close_time_s());
        }
    }
}

TEST(StreamingSelectorEquivalence, AdaptiveQuorumRetunesAndReplaysByteIdentical) {
    // `timing.adaptive_quorum`: a deadline tight enough that rounds keep
    // deadline-closing walks the quorum DOWN window by window; the
    // schedule lands in the records (`bid_quorum`) and replays
    // byte-identically under the same seed.
    const Market& m = market();
    const std::size_t n = 64;
    const std::size_t k = 6;
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = k;
    StreamingRoundConfig sc = staggered_arrivals(n);
    sc.deadline_s = 0.05;   // ~1/3 of the latency tape beats this cut
    sc.quorum = 60;         // unreachable before the deadline: stalls
    sc.adaptive_quorum = true;
    const std::size_t rounds = 12;

    auto run = [&](std::vector<std::size_t>& schedule,
                   std::vector<std::size_t>& opened_with) {
        MecPopulation pop(make_store(n, 0xadadULL));
        StreamingAuctionSelector selector(
            pop, *m.scoring, *m.strategy, wd,
            {ResourceDim::data_size, ResourceDim::category_proportion},
            /*data_dimension=*/0, sc);
        stats::Rng rng(11);
        for (std::size_t round = 1; round <= rounds; ++round) {
            const fl::SelectionRecord record = selector.select(round, k, rng);
            opened_with.push_back(record.bid_quorum);
            EXPECT_EQ(record.bid_quorum, selector.last_quorum());
        }
        schedule = selector.quorum_schedule();
    };
    std::vector<std::size_t> schedule_a, schedule_b, opened_a, opened_b;
    run(schedule_a, opened_a);
    run(schedule_b, opened_b);
    ASSERT_EQ(schedule_a.size(), rounds);
    EXPECT_EQ(schedule_a, schedule_b);
    EXPECT_EQ(opened_a, opened_b);
    // The controller actually moved: deadline dominance stepped the target
    // below its seed, and every later round opened with the retuned value.
    EXPECT_EQ(opened_a.front(), sc.quorum);
    EXPECT_LT(schedule_a.back(), sc.quorum);
    EXPECT_EQ(opened_a.back(), schedule_a[rounds - 2]);
}

} // namespace
} // namespace fmore::mec
