// Property/metamorphic suite for the Mechanism seam: invariants every
// registered auction::Mechanism must satisfy on randomized bidder
// populations with fixed seeds. Unlike the example-based mechanism_test,
// nothing here knows which mechanism it is exercising — the properties are
// the contract.
//
//  - the winner set is invariant under bidder permutation;
//  - the winner set relabels along with NodeId relabeling;
//  - second_score never pays a winner less than its ask (the individual-
//    rationality floor);
//  - winning is monotone in score: improving a winner's bid keeps it
//    winning (deterministic spec: psi = 1, no budget);
//  - K = N and K = 1 edge cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "fmore/auction/mechanism.hpp"
#include "fmore/auction/scoring.hpp"

namespace fmore::auction {
namespace {

constexpr std::uint64_t kSeeds[] = {11, 29, 47, 101, 223};

/// Randomized sealed-bid population: continuous quality/payment draws, so
/// score ties (whose coin flips legitimately break permutation invariance)
/// have probability zero.
std::vector<Bid> random_bids(std::size_t n, stats::Rng& rng) {
    std::vector<Bid> bids;
    bids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Bid bid;
        bid.node = i;
        bid.quality = {rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)};
        bid.payment = rng.uniform(0.05, 0.6);
        bids.push_back(std::move(bid));
    }
    return bids;
}

std::set<NodeId> winner_set(const AuctionOutcome& outcome) {
    std::set<NodeId> ids;
    for (const Winner& w : outcome.winners) ids.insert(w.node);
    return ids;
}

/// Every name currently in the registry. Includes mechanisms other suites
/// registered before us (e.g. the reserve-price example) — the properties
/// are universal, so they must hold for those too.
std::vector<std::string> registered() {
    return MechanismRegistry::instance().names();
}

const std::vector<std::string>& builtins() {
    static const std::vector<std::string> names{"first_score", "second_score",
                                                "psi_fmore", "budget_feasible"};
    return names;
}

MechanismSpec deterministic_spec(std::size_t k) {
    MechanismSpec spec;
    spec.num_winners = k;
    spec.psi = 1.0;   // psi-FMore degenerates to plain top-K
    spec.budget = 0.0; // budget_feasible degenerates to unconstrained
    return spec;
}

class MechanismProperties : public ::testing::Test {
protected:
    MechanismProperties() : scoring_({0.7, 0.3}) {}
    AdditiveScoring scoring_;
};

// ---------------------------------------------------------------------------
// Permutation invariance
// ---------------------------------------------------------------------------

TEST_F(MechanismProperties, WinnerSetInvariantUnderBidderPermutation) {
    for (const std::string& name : registered()) {
        const auto mechanism =
            MechanismRegistry::instance().create(name, deterministic_spec(5));
        for (const std::uint64_t seed : kSeeds) {
            SCOPED_TRACE(name + ", seed " + std::to_string(seed));
            stats::Rng pop_rng(seed);
            const std::vector<Bid> bids = random_bids(24, pop_rng);

            stats::Rng run_rng(seed ^ 0xabcULL);
            const auto base = winner_set(mechanism->run(scoring_, bids, run_rng));

            std::vector<Bid> shuffled = bids;
            std::vector<std::size_t> order(bids.size());
            for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
            stats::Rng shuffle_rng(seed ^ 0x777ULL);
            shuffle_rng.shuffle(order);
            for (std::size_t i = 0; i < order.size(); ++i)
                shuffled[i] = bids[order[i]];

            stats::Rng run_rng2(seed ^ 0xabcULL);
            const auto permuted = winner_set(mechanism->run(scoring_, shuffled, run_rng2));
            EXPECT_EQ(base, permuted);
        }
    }
}

TEST_F(MechanismProperties, WinnerSetMapsUnderNodeIdRelabeling) {
    for (const std::string& name : registered()) {
        const auto mechanism =
            MechanismRegistry::instance().create(name, deterministic_spec(4));
        for (const std::uint64_t seed : kSeeds) {
            SCOPED_TRACE(name + ", seed " + std::to_string(seed));
            stats::Rng pop_rng(seed);
            const std::vector<Bid> bids = random_bids(20, pop_rng);

            // A bijective relabeling i -> 1000 - i of the same bids.
            std::vector<Bid> relabeled = bids;
            for (Bid& bid : relabeled) bid.node = 1000 - bid.node;

            stats::Rng run_a(seed ^ 0x1ULL);
            stats::Rng run_b(seed ^ 0x1ULL);
            const auto base = winner_set(mechanism->run(scoring_, bids, run_a));
            const auto mapped = winner_set(mechanism->run(scoring_, relabeled, run_b));
            std::set<NodeId> expected;
            for (const NodeId id : base) expected.insert(1000 - id);
            EXPECT_EQ(expected, mapped);
        }
    }
}

// ---------------------------------------------------------------------------
// Payments
// ---------------------------------------------------------------------------

TEST_F(MechanismProperties, SecondScoreNeverPaysBelowTheAsk) {
    MechanismSpec spec = deterministic_spec(6);
    spec.payment_rule = PaymentRule::second_price;
    const auto mechanism = MechanismRegistry::instance().create("second_score", spec);
    for (const std::uint64_t seed : kSeeds) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        stats::Rng pop_rng(seed);
        const std::vector<Bid> bids = random_bids(30, pop_rng);
        stats::Rng run_rng(seed);
        const AuctionOutcome outcome = mechanism->run(scoring_, bids, run_rng);
        ASSERT_EQ(outcome.winners.size(), 6u);
        for (const Winner& w : outcome.winners) {
            const auto bid = std::find_if(bids.begin(), bids.end(), [&](const Bid& b) {
                return b.node == w.node;
            });
            ASSERT_NE(bid, bids.end());
            EXPECT_GE(w.payment, bid->payment)
                << "individual rationality violated for node " << w.node;
        }
    }
}

TEST_F(MechanismProperties, FirstScorePaysExactlyTheAsk) {
    const auto mechanism =
        MechanismRegistry::instance().create("first_score", deterministic_spec(5));
    for (const std::uint64_t seed : kSeeds) {
        stats::Rng pop_rng(seed);
        const std::vector<Bid> bids = random_bids(25, pop_rng);
        stats::Rng run_rng(seed);
        for (const Winner& w : mechanism->run(scoring_, bids, run_rng).winners) {
            const auto bid = std::find_if(bids.begin(), bids.end(), [&](const Bid& b) {
                return b.node == w.node;
            });
            ASSERT_NE(bid, bids.end());
            EXPECT_EQ(w.payment, bid->payment);
        }
    }
}

// ---------------------------------------------------------------------------
// Monotonicity of winning in score
// ---------------------------------------------------------------------------

TEST_F(MechanismProperties, ImprovingAWinningBidKeepsItWinning) {
    // Deterministic spec (psi = 1, no budget): raising a winner's score —
    // here by asking for less — can only move it up the ranking.
    for (const std::string& name : builtins()) {
        const auto mechanism =
            MechanismRegistry::instance().create(name, deterministic_spec(5));
        for (const std::uint64_t seed : kSeeds) {
            SCOPED_TRACE(name + ", seed " + std::to_string(seed));
            stats::Rng pop_rng(seed);
            std::vector<Bid> bids = random_bids(22, pop_rng);
            stats::Rng run_rng(seed);
            const auto before = winner_set(mechanism->run(scoring_, bids, run_rng));
            ASSERT_FALSE(before.empty());
            const NodeId improved = *before.begin();
            for (Bid& bid : bids) {
                if (bid.node == improved) bid.payment *= 0.5; // strictly better score
            }
            stats::Rng run_rng2(seed);
            const auto after = winner_set(mechanism->run(scoring_, bids, run_rng2));
            EXPECT_TRUE(after.count(improved) == 1)
                << "node " << improved << " improved its bid and lost";
        }
    }
}

TEST_F(MechanismProperties, WorseningALosingBidNeverMakesItWin) {
    for (const std::string& name : builtins()) {
        const auto mechanism =
            MechanismRegistry::instance().create(name, deterministic_spec(5));
        for (const std::uint64_t seed : kSeeds) {
            SCOPED_TRACE(name + ", seed " + std::to_string(seed));
            stats::Rng pop_rng(seed);
            std::vector<Bid> bids = random_bids(22, pop_rng);
            stats::Rng run_rng(seed);
            const auto before = winner_set(mechanism->run(scoring_, bids, run_rng));
            // Find a loser and make its bid strictly worse.
            NodeId loser = 0;
            bool found = false;
            for (const Bid& bid : bids) {
                if (before.count(bid.node) == 0) {
                    loser = bid.node;
                    found = true;
                    break;
                }
            }
            ASSERT_TRUE(found);
            for (Bid& bid : bids) {
                if (bid.node == loser) bid.payment += 1.0;
            }
            stats::Rng run_rng2(seed);
            const auto after = winner_set(mechanism->run(scoring_, bids, run_rng2));
            EXPECT_EQ(after.count(loser), 0u);
        }
    }
}

// ---------------------------------------------------------------------------
// K = N and K = 1 edge cases
// ---------------------------------------------------------------------------

TEST_F(MechanismProperties, KEqualsNSelectsEveryBidderForBuiltins) {
    constexpr std::size_t n = 9;
    for (const std::string& name : builtins()) {
        const auto mechanism =
            MechanismRegistry::instance().create(name, deterministic_spec(n));
        for (const std::uint64_t seed : kSeeds) {
            SCOPED_TRACE(name + ", seed " + std::to_string(seed));
            stats::Rng pop_rng(seed);
            const std::vector<Bid> bids = random_bids(n, pop_rng);
            stats::Rng run_rng(seed);
            const AuctionOutcome outcome = mechanism->run(scoring_, bids, run_rng);
            EXPECT_EQ(outcome.winners.size(), n);
            EXPECT_EQ(winner_set(outcome).size(), n);
            // Selection order is still best-score-first.
            for (std::size_t i = 1; i < outcome.winners.size(); ++i) {
                EXPECT_GE(outcome.winners[i - 1].score, outcome.winners[i].score);
            }
        }
    }
}

TEST_F(MechanismProperties, KEqualsOnePicksTheTopScore) {
    for (const std::string& name : builtins()) {
        const auto mechanism =
            MechanismRegistry::instance().create(name, deterministic_spec(1));
        for (const std::uint64_t seed : kSeeds) {
            SCOPED_TRACE(name + ", seed " + std::to_string(seed));
            stats::Rng pop_rng(seed);
            const std::vector<Bid> bids = random_bids(15, pop_rng);
            double best = -1e300;
            NodeId best_node = 0;
            for (const Bid& bid : bids) {
                const double score = scoring_.score(bid.quality, bid.payment);
                if (score > best) {
                    best = score;
                    best_node = bid.node;
                }
            }
            stats::Rng run_rng(seed);
            const AuctionOutcome outcome = mechanism->run(scoring_, bids, run_rng);
            ASSERT_EQ(outcome.winners.size(), 1u);
            EXPECT_EQ(outcome.winners.front().node, best_node);
            EXPECT_EQ(outcome.winners.front().score, best);
        }
    }
}

// ---------------------------------------------------------------------------
// Metamorphic: psi = 1 equals first_score; partial ranking changes nothing
// ---------------------------------------------------------------------------

TEST_F(MechanismProperties, PsiOneIsPlainFirstScore) {
    const MechanismSpec spec = deterministic_spec(5);
    const auto psi = MechanismRegistry::instance().create("psi_fmore", spec);
    const auto plain = MechanismRegistry::instance().create("first_score", spec);
    for (const std::uint64_t seed : kSeeds) {
        stats::Rng pop_rng(seed);
        const std::vector<Bid> bids = random_bids(20, pop_rng);
        stats::Rng run_a(seed);
        stats::Rng run_b(seed);
        EXPECT_EQ(winner_set(psi->run(scoring_, bids, run_a)),
                  winner_set(plain->run(scoring_, bids, run_b)));
    }
}

TEST_F(MechanismProperties, PartialRankingPreservesWinnersAndPayments) {
    for (const std::string& name : builtins()) {
        MechanismSpec full_spec = deterministic_spec(5);
        if (name == "second_score")
            full_spec.payment_rule = PaymentRule::second_price;
        MechanismSpec partial_spec = full_spec;
        partial_spec.full_ranking = false;
        const auto full = MechanismRegistry::instance().create(name, full_spec);
        const auto partial = MechanismRegistry::instance().create(name, partial_spec);
        for (const std::uint64_t seed : kSeeds) {
            SCOPED_TRACE(name + ", seed " + std::to_string(seed));
            stats::Rng pop_rng(seed);
            const std::vector<Bid> bids = random_bids(40, pop_rng);
            stats::Rng run_a(seed);
            stats::Rng run_b(seed);
            const AuctionOutcome a = full->run(scoring_, bids, run_a);
            const AuctionOutcome b = partial->run(scoring_, bids, run_b);
            ASSERT_EQ(a.winners.size(), b.winners.size());
            for (std::size_t i = 0; i < a.winners.size(); ++i) {
                EXPECT_EQ(a.winners[i].node, b.winners[i].node);
                EXPECT_EQ(a.winners[i].score, b.winners[i].score);
                EXPECT_EQ(a.winners[i].payment, b.winners[i].payment);
            }
        }
    }
}

} // namespace
} // namespace fmore::auction
