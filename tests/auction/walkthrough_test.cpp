// Locks the full winner-determination pipeline to the paper's walk-through
// (Section III.B, Fig. 3): five nodes, Leontief scoring over normalized
// (data, bandwidth), K = 3, first price. Scores are asserted in
// scoring_test.cpp; here we assert the *winner sets* and ranking order.

#include <gtest/gtest.h>

#include <set>

#include "fmore/auction/winner_determination.hpp"

namespace fmore::auction {
namespace {

class WalkthroughRound : public ::testing::Test {
protected:
    WalkthroughRound() {
        std::vector<stats::MinMaxNormalizer> norms;
        norms.emplace_back(1000.0, 5000.0);
        norms.emplace_back(5.0, 100.0);
        scoring_ = std::make_unique<LeontiefScoring>(std::vector<double>{0.5, 0.5}, norms);
        WinnerDeterminationConfig cfg;
        cfg.num_winners = 3;
        cfg.payment_rule = PaymentRule::first_price;
        determination_ = std::make_unique<WinnerDetermination>(*scoring_, cfg);
    }

    static std::set<NodeId> winner_set(const AuctionOutcome& outcome) {
        std::set<NodeId> ids;
        for (const Winner& w : outcome.winners) ids.insert(w.node);
        return ids;
    }

    std::unique_ptr<LeontiefScoring> scoring_;
    std::unique_ptr<WinnerDetermination> determination_;
};

TEST_F(WalkthroughRound, RoundOneSelectsADE) {
    // A=0, B=1, C=2, D=3, E=4 with the paper's round-1 bids.
    const std::vector<Bid> bids = {
        {0, {4000.0, 85.0}, 0.20}, {1, {3000.0, 35.0}, 0.10}, {2, {3500.0, 75.0}, 0.18},
        {3, {5000.0, 85.0}, 0.20}, {4, {5000.0, 100.0}, 0.20},
    };
    stats::Rng rng(1);
    const AuctionOutcome outcome = determination_->run(bids, rng);
    EXPECT_EQ(winner_set(outcome), (std::set<NodeId>{0, 3, 4}));
    // Ranking order from the paper: E, D, A, C, B.
    ASSERT_EQ(outcome.ranking.size(), 5u);
    EXPECT_EQ(outcome.ranking[0].bid.node, 4u);
    EXPECT_EQ(outcome.ranking[1].bid.node, 3u);
    EXPECT_EQ(outcome.ranking[2].bid.node, 0u);
    EXPECT_EQ(outcome.ranking[3].bid.node, 2u);
    EXPECT_EQ(outcome.ranking[4].bid.node, 1u);
    // First price: winners pay their asks.
    for (const Winner& w : outcome.winners) {
        EXPECT_DOUBLE_EQ(w.payment, bids[w.node].payment);
    }
}

TEST_F(WalkthroughRound, RoundTwoSelectsACE) {
    const std::vector<Bid> bids = {
        {0, {4000.0, 85.0}, 0.16}, {1, {3500.0, 45.0}, 0.10}, {2, {4000.0, 80.0}, 0.15},
        {3, {4000.0, 80.0}, 0.20}, {4, {5000.0, 100.0}, 0.30},
    };
    stats::Rng rng(2);
    const AuctionOutcome outcome = determination_->run(bids, rng);
    EXPECT_EQ(winner_set(outcome), (std::set<NodeId>{0, 2, 4}));
    // Ranking order from the paper: C, A, E, D, B.
    EXPECT_EQ(outcome.ranking[0].bid.node, 2u);
    EXPECT_EQ(outcome.ranking[1].bid.node, 0u);
    EXPECT_EQ(outcome.ranking[2].bid.node, 4u);
    EXPECT_EQ(outcome.ranking[3].bid.node, 3u);
    EXPECT_EQ(outcome.ranking[4].bid.node, 1u);
}

TEST_F(WalkthroughRound, NodeCWinsByLoweringItsAsk) {
    // The paper's narrative: C moved from rank 4 to rank 1 between rounds by
    // offering more data at a lower ask. Verify the mechanism responds to
    // the ask alone, holding quality fixed.
    const std::vector<Bid> expensive = {
        {2, {4000.0, 80.0}, 0.30}, {0, {4000.0, 85.0}, 0.16}, {4, {5000.0, 100.0}, 0.30},
    };
    const std::vector<Bid> cheap = {
        {2, {4000.0, 80.0}, 0.15}, {0, {4000.0, 85.0}, 0.16}, {4, {5000.0, 100.0}, 0.30},
    };
    stats::Rng rng(3);
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 1;
    const WinnerDetermination single(*scoring_, cfg);
    EXPECT_NE(single.run(expensive, rng).winners[0].node, 2u);
    EXPECT_EQ(single.run(cheap, rng).winners[0].node, 2u);
}

} // namespace
} // namespace fmore::auction
