// Equilibrium invariants swept across the theta-distribution families the
// stats substrate supports (uniform, truncated normal, scaled beta and a
// history-learned empirical CDF): the solver must deliver a valid strategy
// for any admissible F (positive density on a bounded support).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "fmore/auction/equilibrium.hpp"
#include "fmore/stats/empirical_cdf.hpp"

namespace fmore::auction {
namespace {

class SqrtScoring final : public ScoringRule {
public:
    [[nodiscard]] double quality_score(const QualityVector& q) const override {
        return 2.0 * std::sqrt(q[0]);
    }
    [[nodiscard]] std::size_t dimensions() const override { return 1; }
};

std::unique_ptr<stats::Distribution> make_family(int which) {
    switch (which) {
        case 0: return std::make_unique<stats::UniformDistribution>(0.5, 1.5);
        case 1:
            return std::make_unique<stats::TruncatedNormalDistribution>(1.0, 0.3, 0.5, 1.5);
        case 2: return std::make_unique<stats::ScaledBetaDistribution>(2.0, 3.0, 0.5, 1.5);
        default: {
            stats::Rng rng(1234);
            const stats::UniformDistribution base(0.5, 1.5);
            std::vector<double> history(600);
            for (double& h : history) h = base.sample(rng);
            return std::make_unique<stats::EmpiricalCdf>(std::move(history));
        }
    }
}

class ThetaFamilySweep : public ::testing::TestWithParam<int> {
protected:
    ThetaFamilySweep() : scoring_(), cost_({1.0}), dist_(make_family(GetParam())) {}

    EquilibriumStrategy solve(std::size_t n, std::size_t k) const {
        EquilibriumConfig cfg;
        cfg.num_bidders = n;
        cfg.num_winners = k;
        return EquilibriumSolver(scoring_, cost_, *dist_, {0.01}, {4.0}, cfg).solve();
    }

    SqrtScoring scoring_;
    AdditiveCost cost_;
    std::unique_ptr<stats::Distribution> dist_;
};

TEST_P(ThetaFamilySweep, IndividualRationalityEverywhere) {
    const auto strategy = solve(40, 8);
    for (double theta = dist_->support_lo(); theta <= dist_->support_hi();
         theta += 0.05) {
        const double c = cost_.cost(strategy.quality(theta), theta);
        EXPECT_GE(strategy.payment(theta), c - 1e-9) << "theta=" << theta;
    }
}

TEST_P(ThetaFamilySweep, SurplusAndWinProbabilityMonotone) {
    const auto strategy = solve(40, 8);
    double prev_u = 1e300;
    double prev_g = 1.1;
    for (double theta = dist_->support_lo(); theta <= dist_->support_hi();
         theta += 0.05) {
        const double u = strategy.max_surplus(theta);
        const double g = strategy.win_probability_at(theta);
        EXPECT_LE(u, prev_u + 1e-9);
        EXPECT_LE(g, prev_g + 1e-6);
        prev_u = u;
        prev_g = g;
    }
}

TEST_P(ThetaFamilySweep, ExpectedProfitDecreasesInType) {
    const auto strategy = solve(60, 12);
    double prev = 1e300;
    for (double theta = dist_->support_lo(); theta <= dist_->support_hi();
         theta += 0.1) {
        const double profit = strategy.expected_profit(theta);
        EXPECT_LE(profit, prev + 1e-9);
        EXPECT_GE(profit, -1e-9);
        prev = profit;
    }
}

TEST_P(ThetaFamilySweep, EulerTracksIntegralPayment) {
    const auto strategy = solve(30, 6);
    const double lo = dist_->support_lo();
    const double hi = dist_->support_hi();
    for (double theta = lo + 0.05; theta <= lo + 0.8 * (hi - lo); theta += 0.1) {
        const double ref = strategy.payment(theta, PaymentMethod::integral);
        EXPECT_NEAR(strategy.payment(theta, PaymentMethod::euler_ode), ref,
                    0.05 * std::fabs(ref) + 1e-3)
            << "theta=" << theta;
    }
}

TEST_P(ThetaFamilySweep, ScoreCdfSpansZeroToOne) {
    const auto strategy = solve(30, 6);
    EXPECT_NEAR(strategy.score_cdf(strategy.score_lo()), 0.0, 1e-9);
    EXPECT_NEAR(strategy.score_cdf(strategy.score_hi()), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllThetaFamilies, ThetaFamilySweep,
                         ::testing::Values(0, 1, 2, 3),
                         [](const ::testing::TestParamInfo<int>& param) {
                             switch (param.param) {
                                 case 0: return std::string("Uniform");
                                 case 1: return std::string("TruncatedNormal");
                                 case 2: return std::string("ScaledBeta");
                                 default: return std::string("EmpiricalCdf");
                             }
                         });

} // namespace
} // namespace fmore::auction
