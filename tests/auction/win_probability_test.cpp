#include <gtest/gtest.h>

#include <cmath>

#include "fmore/auction/win_probability.hpp"
#include "fmore/stats/rng.hpp"

namespace fmore::auction {
namespace {

TEST(PaperWinProbability, MatchesCheFormAtKEqualsOne) {
    // K=1 reduces to H^{N-1} (Che Theorem 2's exponent).
    for (double h : {0.1, 0.4, 0.7, 0.95}) {
        EXPECT_NEAR(paper_win_probability(h, 10, 1), std::pow(h, 9), 1e-12);
    }
}

TEST(PaperWinProbability, CollapsesToProposition1AtKEqualsTwo) {
    // Sum_{i=1}^{2} (1-H)^{i-1} H^{N-i} = H^{N-2}, the paper's Prop. 1 form.
    for (double h : {0.2, 0.5, 0.8}) {
        EXPECT_NEAR(paper_win_probability(h, 10, 2), std::pow(h, 8), 1e-12);
    }
}

TEST(PaperWinProbability, BoundaryValues) {
    EXPECT_DOUBLE_EQ(paper_win_probability(1.0, 100, 20), 1.0);
    EXPECT_DOUBLE_EQ(paper_win_probability(0.0, 100, 20), 0.0);
}

TEST(PaperWinProbability, MonotoneInH) {
    double prev = 0.0;
    for (double h = 0.0; h <= 1.0; h += 0.01) {
        const double g = paper_win_probability(h, 100, 20);
        EXPECT_GE(g, prev - 1e-12);
        prev = g;
    }
}

TEST(ExactWinProbability, MatchesPaperAtKEqualsOne) {
    // With one winner the exact binomial tail also collapses to H^{N-1}.
    for (double h : {0.2, 0.6, 0.9}) {
        EXPECT_NEAR(exact_win_probability(h, 8, 1), std::pow(h, 7), 1e-10);
    }
}

TEST(ExactWinProbability, MonteCarloAgreement) {
    // Simulate N-1 opponents with uniform score CDF; count how often fewer
    // than K beat the bidder's quantile-h score.
    stats::Rng rng(5);
    const std::size_t n = 20;
    const std::size_t k = 5;
    const double h = 0.65;
    int wins = 0;
    constexpr int trials = 40000;
    for (int t = 0; t < trials; ++t) {
        int above = 0;
        for (std::size_t o = 0; o + 1 < n; ++o) {
            if (rng.uniform(0.0, 1.0) > h) ++above;
        }
        if (above < static_cast<int>(k)) ++wins;
    }
    EXPECT_NEAR(static_cast<double>(wins) / trials, exact_win_probability(h, n, k), 0.01);
}

TEST(ExactWinProbability, AlwaysAtLeastPaperForm) {
    // Dropping the binomial coefficients can only shrink the sum; the
    // paper's g(u) underestimates the true win probability for K >= 2
    // (relevant to the ablation bench).
    for (double h = 0.05; h < 1.0; h += 0.05) {
        EXPECT_GE(exact_win_probability(h, 50, 10) + 1e-12,
                  paper_win_probability(h, 50, 10));
    }
}

TEST(WinProbability, DispatchesOnModel) {
    const double h = 0.5;
    EXPECT_DOUBLE_EQ(win_probability(WinModel::paper, h, 30, 6),
                     paper_win_probability(h, 30, 6));
    EXPECT_DOUBLE_EQ(win_probability(WinModel::exact, h, 30, 6),
                     exact_win_probability(h, 30, 6));
}

TEST(WinProbability, RejectsDegenerateGames) {
    EXPECT_THROW(paper_win_probability(0.5, 10, 0), std::invalid_argument);
    EXPECT_THROW(paper_win_probability(0.5, 10, 10), std::invalid_argument);
    EXPECT_THROW(exact_win_probability(0.5, 5, 5), std::invalid_argument);
}

TEST(LogBinomial, SmallValuesExact) {
    EXPECT_NEAR(std::exp(log_binomial_coefficient(5, 2)), 10.0, 1e-9);
    EXPECT_NEAR(std::exp(log_binomial_coefficient(10, 0)), 1.0, 1e-9);
    EXPECT_NEAR(std::exp(log_binomial_coefficient(52, 5)), 2598960.0, 1e-3);
    EXPECT_THROW(log_binomial_coefficient(3, 4), std::invalid_argument);
}

TEST(PsiSuccess, NegBinomialMatchesMonteCarlo) {
    // Scan nodes in order, accept each with prob psi; success = K accepted
    // within N. This is the construction behind psi-FMore.
    stats::Rng rng(9);
    const std::size_t n = 30;
    const std::size_t k = 6;
    const double psi = 0.4;
    int success = 0;
    constexpr int trials = 30000;
    for (int t = 0; t < trials; ++t) {
        std::size_t accepted = 0;
        for (std::size_t i = 0; i < n && accepted < k; ++i) {
            if (rng.bernoulli(psi)) ++accepted;
        }
        if (accepted == k) ++success;
    }
    EXPECT_NEAR(static_cast<double>(success) / trials,
                psi_success_probability_negbinomial(psi, n, k), 0.01);
}

TEST(PsiSuccess, ApproachesOneForLargeN) {
    // "the probability Pr(psi) approaches to one with many appropriate
    // parameters" (Section III.C).
    EXPECT_GT(psi_success_probability_negbinomial(0.5, 200, 20), 0.999);
    EXPECT_GT(psi_success_probability_negbinomial(0.2, 400, 20), 0.999);
}

TEST(PsiSuccess, PsiOneIsCertainty) {
    EXPECT_NEAR(psi_success_probability_negbinomial(1.0, 50, 10), 1.0, 1e-12);
}

TEST(PsiSuccess, MonotoneInPsi) {
    double prev = 0.0;
    for (double psi = 0.05; psi <= 1.0; psi += 0.05) {
        const double p = psi_success_probability_negbinomial(psi, 40, 10);
        EXPECT_GE(p, prev - 1e-12);
        prev = p;
    }
}

TEST(PsiSuccess, PaperFormulaOvercounts) {
    // The paper prints C(i+K, i) instead of the negative-binomial
    // C(i+K-1, i); quantify that the printed form exceeds a probability.
    const double paper = psi_success_probability_paper(0.5, 30, 6);
    const double negbin = psi_success_probability_negbinomial(0.5, 30, 6);
    EXPECT_GT(paper, negbin);
    EXPECT_GT(paper, 1.0); // not a normalized probability
    EXPECT_LE(negbin, 1.0);
}

} // namespace
} // namespace fmore::auction
