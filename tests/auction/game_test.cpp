#include <gtest/gtest.h>

#include "fmore/auction/game.hpp"

namespace fmore::auction {
namespace {

class GameTest : public ::testing::Test {
protected:
    GameTest() : scoring_(25.0, 2), cost_({3.0, 3.0}), theta_(0.5, 1.5) {}

    AuctionGame make_game(std::size_t n, std::size_t k,
                          PaymentRule rule = PaymentRule::first_price) const {
        EquilibriumConfig eq;
        eq.num_bidders = n;
        eq.num_winners = k;
        WinnerDeterminationConfig wd;
        wd.num_winners = k;
        wd.payment_rule = rule;
        return AuctionGame(scoring_, cost_, theta_, {0.01, 0.01}, {1.0, 1.0}, eq, wd);
    }

    ScaledProductScoring scoring_;
    AdditiveCost cost_;
    stats::UniformDistribution theta_;
};

TEST_F(GameTest, ProducesExactlyKWinners) {
    const auto game = make_game(50, 10);
    stats::Rng rng(1);
    const GameResult result = game.play(rng);
    EXPECT_EQ(result.outcome.winners.size(), 10u);
    EXPECT_EQ(result.outcome.ranking.size(), 50u);
    EXPECT_EQ(result.thetas.size(), 50u);
}

TEST_F(GameTest, WinnersAreLowestThetaTypes) {
    // With i.i.d. strategies and no caps, scores decrease in theta, so the
    // winner set must be the K smallest types.
    const auto game = make_game(40, 8);
    stats::Rng rng(2);
    const GameResult result = game.play(rng);
    std::vector<double> sorted = result.thetas;
    std::sort(sorted.begin(), sorted.end());
    const double cutoff = sorted[8 - 1];
    for (const Winner& w : result.outcome.winners) {
        EXPECT_LE(result.thetas[w.node], cutoff + 1e-9);
    }
}

TEST_F(GameTest, AggregatorProfitNonNegative) {
    // V = sum (U(q) - p) with U = s; equilibrium payments shade below s(q)
    // for this configuration, so the aggregator's IR constraint holds.
    const auto game = make_game(60, 12);
    stats::Rng rng(3);
    for (int t = 0; t < 5; ++t) {
        const GameResult result = game.play(rng);
        EXPECT_GE(result.aggregator_profit, 0.0);
        EXPECT_GE(result.social_surplus, 0.0);
    }
}

TEST_F(GameTest, WinnerProfitsNonNegative) {
    const auto game = make_game(30, 6);
    stats::Rng rng(4);
    const GameResult result = game.play(rng);
    for (const Winner& w : result.outcome.winners) {
        const double theta = result.thetas[w.node];
        const QualityVector q = game.strategy().quality(theta);
        EXPECT_GE(w.payment, cost_.cost(q, theta) - 1e-9);
    }
}

TEST_F(GameTest, SecondPricePaysAtLeastFirstPriceAsk) {
    const auto game = make_game(30, 6, PaymentRule::second_price);
    stats::Rng rng(5);
    const GameResult result = game.play(rng);
    for (const Winner& w : result.outcome.winners) {
        const double theta = result.thetas[w.node];
        EXPECT_GE(w.payment, game.strategy().payment(theta) - 1e-9);
    }
}

TEST_F(GameTest, PlayWithTypesIsDeterministicGivenRng) {
    const auto game = make_game(20, 4);
    std::vector<double> types;
    stats::Rng seed_rng(6);
    for (int i = 0; i < 20; ++i) types.push_back(theta_.sample(seed_rng));
    stats::Rng r1(7);
    stats::Rng r2(7);
    const GameResult a = game.play_with_types(types, r1);
    const GameResult b = game.play_with_types(types, r2);
    ASSERT_EQ(a.outcome.winners.size(), b.outcome.winners.size());
    for (std::size_t i = 0; i < a.outcome.winners.size(); ++i) {
        EXPECT_EQ(a.outcome.winners[i].node, b.outcome.winners[i].node);
        EXPECT_DOUBLE_EQ(a.outcome.winners[i].payment, b.outcome.winners[i].payment);
    }
}

TEST_F(GameTest, MismatchedKRejected) {
    EquilibriumConfig eq;
    eq.num_bidders = 20;
    eq.num_winners = 4;
    WinnerDeterminationConfig wd;
    wd.num_winners = 5;
    EXPECT_THROW(
        AuctionGame(scoring_, cost_, theta_, {0.01, 0.01}, {1.0, 1.0}, eq, wd),
        std::invalid_argument);
}

// Fig. 9(b) direction: mean winner payment decreases as N grows.
TEST_F(GameTest, PaymentFallsWithMoreBidders) {
    stats::Rng rng(8);
    double p_small = 0.0;
    double p_large = 0.0;
    constexpr int reps = 8;
    for (int t = 0; t < reps; ++t) {
        p_small += make_game(30, 10).play(rng).mean_winner_payment;
        p_large += make_game(120, 10).play(rng).mean_winner_payment;
    }
    EXPECT_LT(p_large, p_small);
}

// Fig. 10(b) direction: mean winner payment rises with K.
TEST_F(GameTest, PaymentRisesWithMoreWinners) {
    stats::Rng rng(9);
    double p_small = 0.0;
    double p_large = 0.0;
    constexpr int reps = 8;
    for (int t = 0; t < reps; ++t) {
        p_small += make_game(100, 5).play(rng).mean_winner_payment;
        p_large += make_game(100, 30).play(rng).mean_winner_payment;
    }
    EXPECT_GT(p_large, p_small);
}

} // namespace
} // namespace fmore::auction
