// The sharded market's acceptance contract: for EVERY registered
// Mechanism, the ShardedAuctionSelector — any shard count, any (uneven)
// split, either tie-break mode — produces winners, payments, scores and
// the recorded ranking BIT-identical to the monolithic AuctionSelector
// over the same population. Sharding is an execution strategy, not a
// different mechanism; these properties are what make that claim checkable
// rather than aspirational (see ARCHITECTURE.md "Sharding the market").
//
// The comparison is EXPECT_EQ on doubles on purpose: the contract is
// bit-identity, not tolerance-equality.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fmore/auction/cost.hpp"
#include "fmore/auction/equilibrium.hpp"
#include "fmore/auction/mechanism.hpp"
#include "fmore/auction/scoring.hpp"
#include "fmore/mec/auction_selector.hpp"
#include "fmore/mec/population.hpp"
#include "fmore/mec/sharded_selector.hpp"
#include "fmore/stats/normalizer.hpp"

namespace fmore::mec {
namespace {

constexpr double kDataHi = 150.0;

/// The simulator's market (Section V.A scoring/cost), solved once for the
/// whole suite — the equilibrium tabulation is the expensive part and is
/// shared by both selectors, so it cannot influence the equivalence.
struct Market {
    std::vector<stats::MinMaxNormalizer> norms;
    std::unique_ptr<auction::ScaledProductScoring> scoring;
    std::unique_ptr<auction::AdditiveCost> cost;
    std::unique_ptr<stats::UniformDistribution> theta;
    std::unique_ptr<auction::EquilibriumStrategy> strategy;

    Market() {
        norms.emplace_back(0.0, kDataHi);
        norms.emplace_back(0.0, 1.0);
        scoring = std::make_unique<auction::ScaledProductScoring>(25.0, 2, norms);
        cost = std::make_unique<auction::AdditiveCost>(
            std::vector<double>{6.0 / kDataHi, 2.0});
        theta = std::make_unique<stats::UniformDistribution>(0.5, 1.5);
        auction::EquilibriumConfig eq;
        eq.num_bidders = 100;
        eq.num_winners = 8;
        strategy = std::make_unique<auction::EquilibriumStrategy>(
            auction::EquilibriumSolver(*scoring, *cost, *theta, {1.0, 0.05},
                                       {kDataHi, 1.0}, eq)
                .solve());
    }
};

const Market& market() {
    static const Market m;
    return m;
}

PopulationStore make_store(std::size_t n, std::uint64_t seed) {
    PopulationSpec spec;
    spec.dynamics.resource_jitter = 0.08;
    spec.dynamics.theta_jitter = 0.02;
    SyntheticDataSpec data;
    data.data_lo = 20.0;
    data.data_hi = kDataHi;
    stats::Rng rng(seed);
    return PopulationStore(n, data, *market().theta, spec, rng);
}

QualityLayout layout() {
    return {ResourceDim::data_size, ResourceDim::category_proportion};
}

/// `count - 1` strictly increasing cut points in (0, n) — an arbitrary
/// UNEVEN partition, the case even-split-only code would never exercise.
std::vector<std::size_t> random_boundaries(std::size_t n, std::size_t count,
                                           stats::Rng& rng) {
    std::vector<std::size_t> all(n - 1);
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i + 1;
    rng.shuffle(all);
    std::vector<std::size_t> cuts(all.begin(),
                                  all.begin() + static_cast<std::ptrdiff_t>(count - 1));
    std::sort(cuts.begin(), cuts.end());
    return cuts;
}

void expect_outcomes_equal(const auction::AuctionOutcome& mono,
                           const auction::AuctionOutcome& sharded) {
    ASSERT_EQ(mono.winners.size(), sharded.winners.size());
    for (std::size_t w = 0; w < mono.winners.size(); ++w) {
        EXPECT_EQ(mono.winners[w].node, sharded.winners[w].node);
        EXPECT_EQ(mono.winners[w].score, sharded.winners[w].score);
        EXPECT_EQ(mono.winners[w].payment, sharded.winners[w].payment);
    }
    ASSERT_EQ(mono.ranking.size(), sharded.ranking.size());
    for (std::size_t r = 0; r < mono.ranking.size(); ++r) {
        EXPECT_EQ(mono.ranking[r].bid.node, sharded.ranking[r].bid.node);
        EXPECT_EQ(mono.ranking[r].score, sharded.ranking[r].score);
        EXPECT_EQ(mono.ranking[r].bid.payment, sharded.ranking[r].bid.payment);
        EXPECT_EQ(mono.ranking[r].bid.quality, sharded.ranking[r].bid.quality);
    }
}

void expect_records_equal(const fl::SelectionRecord& mono,
                          const fl::SelectionRecord& sharded) {
    ASSERT_EQ(mono.selected.size(), sharded.selected.size());
    for (std::size_t w = 0; w < mono.selected.size(); ++w) {
        EXPECT_EQ(mono.selected[w].client, sharded.selected[w].client);
        EXPECT_EQ(mono.selected[w].payment, sharded.selected[w].payment);
        EXPECT_EQ(mono.selected[w].score, sharded.selected[w].score);
        EXPECT_EQ(mono.selected[w].train_samples, sharded.selected[w].train_samples);
    }
    EXPECT_EQ(mono.all_scores, sharded.all_scores);
    EXPECT_EQ(mono.scores_by_node, sharded.scores_by_node);
    EXPECT_TRUE(sharded.dropped_shards.empty());
}

/// Run `rounds` auction rounds on the monolithic selector and the sharded
/// one — SAME initial population (independently built from `seed`), SAME
/// generator seed — and compare every outcome bit-for-bit.
void check_equivalence(const auction::WinnerDeterminationConfig& wd, std::size_t n,
                       std::size_t k, const std::vector<std::size_t>& boundaries,
                       std::size_t rounds, std::uint64_t seed) {
    const Market& m = market();
    MecPopulation population(make_store(n, seed));
    AuctionSelector mono(population, *m.scoring, *m.strategy, wd,
                         data_category_extractor(), /*data_dimension=*/0);
    ShardedAuctionSelector sharded(make_store(n, seed).split(boundaries), *m.scoring,
                                   *m.strategy, wd, layout(), /*data_dimension=*/0);
    ASSERT_EQ(sharded.num_shards(), boundaries.size() + 1);
    ASSERT_EQ(sharded.population_size(), n);

    stats::Rng mono_rng(seed ^ 0xf00dULL);
    stats::Rng shard_rng(seed ^ 0xf00dULL);
    for (std::size_t round = 1; round <= rounds; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        const auction::AuctionOutcome& a = mono.run_auction_round(round, k, mono_rng);
        const auction::AuctionOutcome& b = sharded.run_auction_round(round, k, shard_rng);
        expect_outcomes_equal(a, b);
    }
}

TEST(ShardEquivalence, EveryRegisteredMechanismMatchesMonolithic) {
    // Whatever is registered right now — including mechanisms other suites
    // in this binary registered before us. The sharded market must not
    // care which mechanism it is running.
    for (const std::string& name : auction::MechanismRegistry::instance().names()) {
        for (const std::uint64_t seed : {11ULL, 47ULL}) {
            SCOPED_TRACE("mechanism " + name + ", seed " + std::to_string(seed));
            auction::WinnerDeterminationConfig wd;
            wd.mechanism = name;
            wd.num_winners = 7;
            // Give the extension knobs real work where the mechanism reads
            // them; the other built-ins ignore what they don't price.
            if (name.find("psi") != std::string::npos) wd.psi = 0.6;
            if (name.find("budget") != std::string::npos) wd.budget = 40.0;
            if (name.find("second") != std::string::npos)
                wd.payment_rule = auction::PaymentRule::second_price;
            stats::Rng cuts(seed * 1000003ULL);
            check_equivalence(wd, /*n=*/60, /*k=*/7,
                              random_boundaries(60, /*count=*/5, cuts),
                              /*rounds=*/4, seed);
        }
    }
}

TEST(ShardEquivalence, RandomizedMarketsMatchMonolithic) {
    // Randomized N/K/S with arbitrary uneven splits, K occasionally larger
    // than N. first_score exercises the fused bounded-head lane with the
    // partial O(N log K) cutoff (full_ranking = false).
    stats::Rng meta(0x5eedULL);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t n = static_cast<std::size_t>(meta.uniform_int(3, 200));
        const std::size_t k = static_cast<std::size_t>(meta.uniform_int(1, 40));
        const std::size_t s =
            static_cast<std::size_t>(meta.uniform_int(1, static_cast<std::int64_t>(
                                                             std::min<std::size_t>(n, 9))));
        SCOPED_TRACE("trial " + std::to_string(trial) + ": n=" + std::to_string(n)
                     + " k=" + std::to_string(k) + " s=" + std::to_string(s));
        auction::WinnerDeterminationConfig wd;
        wd.num_winners = k;
        wd.full_ranking = false;
        const std::vector<std::size_t> cuts =
            s == 1 ? std::vector<std::size_t>{} : random_boundaries(n, s, meta);
        check_equivalence(wd, n, k, cuts, /*rounds=*/3,
                          0xabcdULL + static_cast<std::uint64_t>(trial));
    }
}

TEST(ShardEquivalence, SecondScorePartialRankingMatchesMonolithic) {
    // The top-(K+1) cutoff: the best-loser row must survive the shard
    // merge for second-score payments to come out identical.
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = 6;
    wd.payment_rule = auction::PaymentRule::second_price;
    wd.full_ranking = false;
    stats::Rng cuts(99);
    check_equivalence(wd, /*n=*/80, /*k=*/6, random_boundaries(80, 4, cuts),
                      /*rounds=*/4, 0xbeefULL);
}

TEST(ShardEquivalence, SaltedTieBreakMatchesMonolithic) {
    // TieBreak::salted (the multi-process wire mode): one 8-byte salt
    // replaces the global permutation; the sharded market must still be
    // bit-identical to the monolithic salted market.
    for (const std::uint64_t seed : {3ULL, 17ULL, 91ULL}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        auction::WinnerDeterminationConfig wd;
        wd.num_winners = 9;
        wd.tie_break = auction::TieBreak::salted;
        wd.full_ranking = false;
        stats::Rng cuts(seed + 7);
        check_equivalence(wd, /*n=*/120, /*k=*/9, random_boundaries(120, 7, cuts),
                          /*rounds=*/4, seed);
    }
}

TEST(ShardEquivalence, OneShardPerNodeMatchesMonolithic) {
    // The degenerate maximal split: S = N single-node shards.
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = 5;
    std::vector<std::size_t> cuts(16);
    for (std::size_t i = 0; i < cuts.size(); ++i) cuts[i] = i + 1;
    check_equivalence(wd, /*n=*/17, /*k=*/5, cuts, /*rounds=*/3, 0x1d1ULL);
}

/// Gather-lane coverage: a custom mechanism that is NOT the exact built-in
/// engine (it drops every third selected winner — arbitrary but
/// deterministic), registered like any third-party extension would be. The
/// sharded selector must take the gather lane and reproduce the monolithic
/// round exactly, custom select and all.
class EveryThirdMechanism final : public auction::ScoreAuctionMechanism {
public:
    explicit EveryThirdMechanism(auction::MechanismSpec spec)
        : ScoreAuctionMechanism(std::move(spec), "every_third") {}

    // The engine's select() delegates to this virtual, so one override
    // covers both the vector API and frame rounds (calling the virtual
    // select() from here would recurse).
    void select_into(const std::vector<auction::ScoredBid>& ranking, stats::Rng& rng,
                     std::vector<std::size_t>& chosen) const override {
        ScoreAuctionMechanism::select_into(ranking, rng, chosen);
        std::size_t kept = 0;
        for (std::size_t i = 0; i < chosen.size(); ++i) {
            if (i % 3 != 2) chosen[kept++] = chosen[i];
        }
        chosen.resize(kept);
    }
};

TEST(ShardEquivalence, CustomMechanismTakesGatherLaneAndMatches) {
    auto& registry = auction::MechanismRegistry::instance();
    registry.replace("every_third", [](const auction::MechanismSpec& spec) {
        return std::make_unique<EveryThirdMechanism>(spec);
    });
    auction::WinnerDeterminationConfig wd;
    wd.mechanism = "every_third";
    wd.num_winners = 9;
    stats::Rng cuts(5);
    check_equivalence(wd, /*n=*/70, /*k=*/9, random_boundaries(70, 5, cuts),
                      /*rounds=*/4, 0xcafeULL);
    registry.remove("every_third");
}

TEST(ShardEquivalence, SelectionRecordsAndBlacklistStayIdentical) {
    // The full select() path — compliance rolls, blacklist bans, record
    // assembly — with defectors banned mid-run: the ban must flow into
    // both markets' later rounds identically (banned nodes stop bidding).
    const Market& m = market();
    const std::uint64_t seed = 0x7e57ULL;
    const std::size_t n = 90;
    const std::size_t k = 10;
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = k;

    MecPopulation population(make_store(n, seed));
    AuctionSelector mono(population, *m.scoring, *m.strategy, wd,
                         data_category_extractor(), /*data_dimension=*/0);
    stats::Rng cuts(21);
    ShardedAuctionSelector sharded(make_store(n, seed).split(random_boundaries(n, 6, cuts)),
                                   *m.scoring, *m.strategy, wd, layout(),
                                   /*data_dimension=*/0);
    ComplianceSpec compliance;
    compliance.defect_probability = 0.35;
    mono.set_compliance(compliance);
    sharded.set_compliance(compliance);

    stats::Rng mono_rng(seed);
    stats::Rng shard_rng(seed);
    for (std::size_t round = 1; round <= 6; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        const fl::SelectionRecord a = mono.select(round, k, mono_rng);
        const fl::SelectionRecord b = sharded.select(round, k, shard_rng);
        expect_records_equal(a, b);
        EXPECT_EQ(mono.blacklist().size(), sharded.blacklist().size());
    }
    EXPECT_GT(mono.blacklist().size(), 0u) << "compliance model never banned anyone — "
                                              "the blacklist propagation went untested";
}

TEST(ShardEquivalence, ViewModeOverPopulationMatchesOwnedSplit) {
    // The engine configuration (view mode over one MecPopulation) and the
    // bench configuration (owned split stores) are the same market.
    const Market& m = market();
    const std::uint64_t seed = 0x11aaULL;
    const std::size_t n = 64;
    const std::size_t k = 8;
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = k;
    wd.full_ranking = false;

    MecPopulation population(make_store(n, seed));
    ShardedAuctionSelector view(population, *m.scoring, *m.strategy, wd, layout(),
                                /*data_dimension=*/0, /*num_shards=*/4);
    ShardedAuctionSelector owned(make_store(n, seed).split_even(4), *m.scoring,
                                 *m.strategy, wd, layout(), /*data_dimension=*/0);
    stats::Rng view_rng(seed);
    stats::Rng owned_rng(seed);
    for (std::size_t round = 1; round <= 4; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        expect_outcomes_equal(view.run_auction_round(round, k, view_rng),
                              owned.run_auction_round(round, k, owned_rng));
    }
}

} // namespace
} // namespace fmore::mec
