// Tests for the extension features beyond the paper's core mechanism:
// the aggregator budget constraint (the paper's stated future work) and
// per-node psi (its open question on identical-vs-distinct psi).

#include <gtest/gtest.h>

#include "fmore/auction/winner_determination.hpp"

namespace fmore::auction {
namespace {

class ExtensionsTest : public ::testing::Test {
protected:
    ExtensionsTest() : scoring_({1.0, 1.0}) {}

    static std::vector<Bid> bids() {
        // Scores 0.7, 0.6, 0.5, 0.4, 0.2 with payments 0.3/0.2/0.1/0.5/0.1.
        return {
            {0, {0.5, 0.5}, 0.3},   {1, {0.4, 0.4}, 0.2},  {2, {0.3, 0.3}, 0.1},
            {3, {0.45, 0.45}, 0.5}, {4, {0.15, 0.15}, 0.1},
        };
    }

    AdditiveScoring scoring_;
};

TEST_F(ExtensionsTest, ZeroBudgetMeansUnconstrained) {
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 4;
    cfg.budget = 0.0;
    const WinnerDetermination wd(scoring_, cfg);
    stats::Rng rng(1);
    EXPECT_EQ(wd.run(bids(), rng).winners.size(), 4u);
}

TEST_F(ExtensionsTest, BudgetTruncatesWinnerPrefix) {
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 4;
    cfg.budget = 0.55; // 0.3 + 0.2 fits; +0.1 would need 0.6
    const WinnerDetermination wd(scoring_, cfg);
    stats::Rng rng(2);
    const auto outcome = wd.run(bids(), rng);
    ASSERT_EQ(outcome.winners.size(), 2u);
    EXPECT_EQ(outcome.winners[0].node, 0u);
    EXPECT_EQ(outcome.winners[1].node, 1u);
    double spent = 0.0;
    for (const Winner& w : outcome.winners) spent += w.payment;
    EXPECT_LE(spent, cfg.budget + 1e-12);
}

TEST_F(ExtensionsTest, BudgetDoesNotSkipToCheaperBids) {
    // The truncation is a prefix: node 2 (cheap, 0.1) must NOT be admitted
    // once node 1 broke the budget — skipping would reward underbidding a
    // slot you could not honestly win.
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 3;
    cfg.budget = 0.35; // node 0 fits (0.3); node 1 (0.2) breaks the budget
    const WinnerDetermination wd(scoring_, cfg);
    stats::Rng rng(3);
    const auto outcome = wd.run(bids(), rng);
    ASSERT_EQ(outcome.winners.size(), 1u);
    EXPECT_EQ(outcome.winners[0].node, 0u);
}

TEST_F(ExtensionsTest, BudgetSmallerThanBestBidYieldsNoWinners) {
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 2;
    cfg.budget = 0.05;
    const WinnerDetermination wd(scoring_, cfg);
    stats::Rng rng(4);
    EXPECT_TRUE(wd.run(bids(), rng).winners.empty());
}

TEST_F(ExtensionsTest, BudgetAppliesToSecondPricePayments) {
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 2;
    cfg.payment_rule = PaymentRule::second_price;
    // Second-price payments: winner 0 pays 1.0-0.5=0.5, winner 1 pays 0.3.
    cfg.budget = 0.6;
    const WinnerDetermination wd(scoring_, cfg);
    stats::Rng rng(5);
    const auto outcome = wd.run(bids(), rng);
    ASSERT_EQ(outcome.winners.size(), 1u);
    EXPECT_NEAR(outcome.winners[0].payment, 0.5, 1e-12);
}

TEST_F(ExtensionsTest, PerNodePsiOverridesGlobal) {
    // Node 4 has psi = 1 while everyone else has ~0: node 4 must win a slot
    // almost immediately despite ranking last.
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 2;
    cfg.psi = 0.05;
    cfg.psi_per_node.assign(5, 0.05);
    cfg.psi_per_node[4] = 1.0;
    const WinnerDetermination wd(scoring_, cfg);
    stats::Rng rng(6);
    int node4_wins = 0;
    constexpr int trials = 300;
    for (int t = 0; t < trials; ++t) {
        for (const Winner& w : wd.run(bids(), rng).winners) {
            if (w.node == 4) ++node4_wins;
        }
    }
    EXPECT_GT(node4_wins, trials / 2);
}

TEST_F(ExtensionsTest, PerNodePsiRejectsOutOfRangeNodeIds) {
    // A short psi_per_node table used to fall back to the global psi for
    // unlisted nodes — silently, which hid mis-sized tables. It now throws
    // with the offending NodeId spelled out.
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 5;
    cfg.psi = 1.0;
    cfg.psi_per_node = {1.0, 1.0}; // bidders 2..4 are NOT covered
    const WinnerDetermination wd(scoring_, cfg);
    stats::Rng rng(7);
    EXPECT_THROW((void)wd.run(bids(), rng), std::out_of_range);
}

TEST_F(ExtensionsTest, PerNodePsiCoveringAllBiddersFillsK) {
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 5;
    cfg.psi = 1.0;
    cfg.psi_per_node.assign(5, 1.0);
    const WinnerDetermination wd(scoring_, cfg);
    stats::Rng rng(7);
    EXPECT_EQ(wd.run(bids(), rng).winners.size(), 5u);
}

TEST_F(ExtensionsTest, PerNodePsiStillFillsK) {
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 3;
    cfg.psi = 0.5;
    cfg.psi_per_node.assign(5, 0.1);
    const WinnerDetermination wd(scoring_, cfg);
    stats::Rng rng(8);
    for (int t = 0; t < 50; ++t) {
        EXPECT_EQ(wd.run(bids(), rng).winners.size(), 3u);
    }
}

} // namespace
} // namespace fmore::auction
