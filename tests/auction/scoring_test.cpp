#include <gtest/gtest.h>

#include <memory>

#include "fmore/auction/scoring.hpp"
#include "fmore/stats/rng.hpp"

namespace fmore::auction {
namespace {

TEST(AdditiveScoring, WeightedSum) {
    const AdditiveScoring s({0.4, 0.3, 0.3});
    EXPECT_NEAR(s.quality_score({1.0, 2.0, 3.0}), 0.4 + 0.6 + 0.9, 1e-12);
    EXPECT_NEAR(s.score({1.0, 2.0, 3.0}, 0.5), 1.9 - 0.5, 1e-12);
}

TEST(AdditiveScoring, RejectsWrongDimension) {
    const AdditiveScoring s({1.0, 1.0});
    EXPECT_THROW(s.quality_score({1.0}), std::invalid_argument);
    EXPECT_THROW(AdditiveScoring(std::vector<double>{}), std::invalid_argument);
}

TEST(LeontiefScoring, TakesMinimum) {
    const LeontiefScoring s({0.5, 0.5});
    EXPECT_DOUBLE_EQ(s.quality_score({0.8, 0.4}), 0.2);
    EXPECT_DOUBLE_EQ(s.quality_score({0.2, 0.9}), 0.1);
}

TEST(CobbDouglas, GeometricForm) {
    const CobbDouglasScoring s({0.5, 0.5});
    EXPECT_NEAR(s.quality_score({4.0, 9.0}), 6.0, 1e-12);
}

TEST(CobbDouglas, RejectsNegativeQuality) {
    const CobbDouglasScoring s({0.5, 0.5});
    EXPECT_THROW(s.quality_score({-1.0, 1.0}), std::domain_error);
}

TEST(ScaledProduct, PaperSimulatorForm) {
    // Section V.A: S(q1, q2, p) = alpha q1 q2 - p with alpha = 25.
    const ScaledProductScoring s(25.0, 2);
    EXPECT_DOUBLE_EQ(s.quality_score({0.5, 0.8}), 10.0);
    EXPECT_DOUBLE_EQ(s.score({0.5, 0.8}, 3.0), 7.0);
}

TEST(ScaledProduct, WithNormalizers) {
    std::vector<stats::MinMaxNormalizer> norms;
    norms.emplace_back(0.0, 100.0);
    norms.emplace_back(0.0, 1.0);
    const ScaledProductScoring s(25.0, 2, norms);
    EXPECT_DOUBLE_EQ(s.quality_score({50.0, 1.0}), 12.5);
}

// Lock the implementation to the paper's walk-through (Fig. 3): Leontief
// scoring with alpha = (0.5, 0.5), data in [1000, 5000], bandwidth in
// [5, 100] Mb.
class WalkthroughScoring : public ::testing::Test {
protected:
    WalkthroughScoring() {
        std::vector<stats::MinMaxNormalizer> norms;
        norms.emplace_back(1000.0, 5000.0);
        norms.emplace_back(5.0, 100.0);
        scoring_ = std::make_unique<LeontiefScoring>(
            std::vector<double>{0.5, 0.5}, norms);
    }
    std::unique_ptr<LeontiefScoring> scoring_;
};

TEST_F(WalkthroughScoring, RoundOneScoresMatchPaper) {
    // Paper rounds to three decimals; allow half a unit in the last place.
    EXPECT_NEAR(scoring_->score({4000.0, 85.0}, 0.20), 0.175, 6e-4);  // A
    EXPECT_NEAR(scoring_->score({3000.0, 35.0}, 0.10), 0.058, 6e-4);  // B
    EXPECT_NEAR(scoring_->score({3500.0, 75.0}, 0.18), 0.133, 6e-4);  // C
    EXPECT_NEAR(scoring_->score({5000.0, 85.0}, 0.20), 0.221, 6e-4);  // D
    EXPECT_NEAR(scoring_->score({5000.0, 100.0}, 0.20), 0.300, 6e-4); // E
}

TEST_F(WalkthroughScoring, RoundTwoScoresMatchPaper) {
    EXPECT_NEAR(scoring_->score({4000.0, 85.0}, 0.16), 0.215, 5e-4);  // A
    EXPECT_NEAR(scoring_->score({3500.0, 45.0}, 0.10), 0.111, 5e-4);  // B
    EXPECT_NEAR(scoring_->score({4000.0, 80.0}, 0.15), 0.225, 5e-4);  // C
    EXPECT_NEAR(scoring_->score({4000.0, 80.0}, 0.20), 0.175, 5e-4);  // D
    EXPECT_NEAR(scoring_->score({5000.0, 100.0}, 0.30), 0.200, 5e-4); // E
}

// Property: raising any quality dimension never lowers any of the scoring
// families (the monotonicity Theorem 5's IC argument relies on).
class ScoringMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(ScoringMonotonicity, QualityScoreIsMonotone) {
    const int family = GetParam();
    std::unique_ptr<ScoringRule> rule;
    switch (family) {
        case 0: rule = std::make_unique<AdditiveScoring>(std::vector<double>{0.4, 0.6}); break;
        case 1: rule = std::make_unique<LeontiefScoring>(std::vector<double>{0.5, 0.5}); break;
        case 2: rule = std::make_unique<CobbDouglasScoring>(std::vector<double>{0.3, 0.7}); break;
        default: rule = std::make_unique<ScaledProductScoring>(25.0, 2); break;
    }
    stats::Rng rng(100 + family);
    for (int t = 0; t < 200; ++t) {
        QualityVector q{rng.uniform(0.01, 1.0), rng.uniform(0.01, 1.0)};
        QualityVector q_up = q;
        q_up[t % 2] += rng.uniform(0.0, 0.5);
        EXPECT_GE(rule->quality_score(q_up), rule->quality_score(q) - 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ScoringMonotonicity, ::testing::Values(0, 1, 2, 3));

} // namespace
} // namespace fmore::auction
