// BidFrame contracts: the vector<Bid> adapter round-trips exactly, the
// frame ranking path (Mechanism::rank_frame + run_frame) is bit-identical
// to the classic vector path for EVERY registered mechanism, and the fused
// partial-ranking path (full_ranking = false) selects and pays exactly
// like the full score board.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "fmore/auction/bid_frame.hpp"
#include "fmore/auction/cost.hpp"
#include "fmore/auction/mechanism.hpp"
#include "fmore/auction/scoring.hpp"
#include "fmore/auction/winner_determination.hpp"
#include "fmore/stats/rng.hpp"

namespace fmore::auction {
namespace {

/// A synthetic sealed-bid population with score ties (quantized payments)
/// so the coin-flip tie-break path is actually exercised.
std::vector<Bid> make_bids(std::size_t n, std::uint64_t seed, std::size_t dims = 2) {
    stats::Rng rng(seed);
    std::vector<Bid> bids;
    bids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        QualityVector q(dims);
        for (double& v : q) v = std::floor(rng.uniform(0.0, 8.0));
        const double payment = std::floor(rng.uniform(0.0, 6.0));
        bids.push_back(Bid{i, std::move(q), payment});
    }
    return bids;
}

MechanismSpec spec_for(const std::string& name) {
    MechanismSpec spec;
    spec.mechanism = name;
    spec.num_winners = 8;
    if (name == "psi_fmore") spec.psi = 0.6;
    if (name == "budget_feasible") spec.budget = 200.0;
    if (name == "second_score") spec.payment_rule = PaymentRule::second_price;
    return spec;
}

void expect_outcomes_equal(const AuctionOutcome& a, const AuctionOutcome& b,
                           bool compare_ranking = true) {
    ASSERT_EQ(a.winners.size(), b.winners.size());
    for (std::size_t i = 0; i < a.winners.size(); ++i) {
        EXPECT_EQ(a.winners[i].node, b.winners[i].node) << "winner " << i;
        EXPECT_EQ(a.winners[i].score, b.winners[i].score) << "winner " << i;
        EXPECT_EQ(a.winners[i].payment, b.winners[i].payment) << "winner " << i;
    }
    if (!compare_ranking) return;
    ASSERT_EQ(a.ranking.size(), b.ranking.size());
    for (std::size_t i = 0; i < a.ranking.size(); ++i) {
        EXPECT_EQ(a.ranking[i].bid.node, b.ranking[i].bid.node) << "rank " << i;
        EXPECT_EQ(a.ranking[i].score, b.ranking[i].score) << "rank " << i;
        EXPECT_EQ(a.ranking[i].bid.payment, b.ranking[i].bid.payment) << "rank " << i;
        EXPECT_EQ(a.ranking[i].bid.quality, b.ranking[i].bid.quality) << "rank " << i;
    }
}

TEST(BidFrame, AdapterRoundTripsExactly) {
    // Sparse NodeIds: rows without a bid must come back inactive/absent.
    std::vector<Bid> bids = make_bids(40, 21, 3);
    bids.erase(bids.begin() + 7);
    bids.erase(bids.begin() + 20);
    BidFrame frame;
    frame.from_bids(bids);
    EXPECT_EQ(frame.rows(), 40u);
    EXPECT_EQ(frame.dims(), 3u);
    EXPECT_EQ(frame.active_count(), bids.size());
    EXPECT_FALSE(frame.active(7));

    std::vector<Bid> back;
    frame.to_bids(back);
    ASSERT_EQ(back.size(), bids.size());
    for (std::size_t i = 0; i < bids.size(); ++i) {
        EXPECT_EQ(back[i].node, bids[i].node);
        EXPECT_EQ(back[i].quality, bids[i].quality);
        EXPECT_EQ(back[i].payment, bids[i].payment);
    }
}

TEST(BidFrame, FromBidsRejectsBadInput) {
    std::vector<Bid> bids = make_bids(4, 22);
    bids[2].quality.push_back(1.0);
    BidFrame frame;
    EXPECT_THROW(frame.from_bids(bids), std::invalid_argument);
    bids = make_bids(4, 23);
    bids[3].node = bids[0].node;
    EXPECT_THROW(frame.from_bids(bids), std::invalid_argument);
}

TEST(BidFrame, RunFrameMatchesVectorRunForEveryRegisteredMechanism) {
    const ScaledProductScoring scoring(5.0, 2);
    const std::vector<Bid> bids = make_bids(120, 31);
    BidFrame frame;
    frame.from_bids(bids);
    RankScratch scratch;
    for (const std::string& name : MechanismRegistry::instance().names()) {
        SCOPED_TRACE("mechanism " + name);
        const WinnerDetermination determination(scoring, spec_for(name));
        stats::Rng rng_vector(99);
        stats::Rng rng_frame(99);
        const AuctionOutcome via_vector = determination.run(bids, rng_vector);
        const AuctionOutcome via_frame =
            determination.run_frame(frame, rng_frame, scratch);
        expect_outcomes_equal(via_vector, via_frame);
        // Both paths must consume the RNG identically, or multi-round
        // experiments would diverge after the first round.
        EXPECT_EQ(rng_vector.engine()(), rng_frame.engine()());
    }
}

TEST(BidFrame, FusedPartialRankingMatchesFullScoreboardForEveryMechanism) {
    const ScaledProductScoring scoring(5.0, 2);
    const std::vector<Bid> bids = make_bids(150, 41);
    BidFrame frame;
    frame.from_bids(bids);
    RankScratch scratch;
    for (const std::string& name : MechanismRegistry::instance().names()) {
        SCOPED_TRACE("mechanism " + name);
        MechanismSpec full = spec_for(name);
        full.full_ranking = true;
        MechanismSpec partial = spec_for(name);
        partial.full_ranking = false;
        stats::Rng rng_full(7);
        stats::Rng rng_partial(7);
        const AuctionOutcome board =
            WinnerDetermination(scoring, full).run_frame(frame, rng_full, scratch);
        const AuctionOutcome fused =
            WinnerDetermination(scoring, partial).run_frame(frame, rng_partial, scratch);
        // Winner sets and payments are the invariant; the fused path may
        // truncate the recorded ranking to what selection needed.
        expect_outcomes_equal(board, fused, /*compare_ranking=*/false);
        ASSERT_LE(fused.ranking.size(), board.ranking.size());
        for (std::size_t i = 0; i < fused.ranking.size(); ++i) {
            EXPECT_EQ(fused.ranking[i].bid.node, board.ranking[i].bid.node) << i;
            EXPECT_EQ(fused.ranking[i].score, board.ranking[i].score) << i;
        }
    }
}

TEST(BidFrame, FusedTopKBitIdenticalAcrossWorkerCounts) {
    const ScaledProductScoring scoring(5.0, 2);
    const std::vector<Bid> bids = make_bids(3000, 51);
    BidFrame frame;
    frame.from_bids(bids);
    MechanismSpec spec = spec_for("first_score");
    spec.full_ranking = false;
    const WinnerDetermination determination(scoring, spec);

    const char* previous = std::getenv("FMORE_ROUND_THREADS");
    const std::string saved = previous ? previous : "";
    ::setenv("FMORE_ROUND_THREADS", "1", 1);
    RankScratch scratch;
    stats::Rng rng_serial(5);
    const AuctionOutcome serial = determination.run_frame(frame, rng_serial, scratch);
    ::setenv("FMORE_ROUND_THREADS", "8", 1);
    stats::Rng rng_pool(5);
    const AuctionOutcome pooled = determination.run_frame(frame, rng_pool, scratch);
    if (previous) ::setenv("FMORE_ROUND_THREADS", saved.c_str(), 1);
    else ::unsetenv("FMORE_ROUND_THREADS");

    expect_outcomes_equal(serial, pooled);
}

/// A deliberately vector-API-only mechanism — what a custom registration
/// that predates BidFrame looks like. Frame rounds must route it through
/// the default rank_frame adapter and agree with the vector path exactly.
class VectorOnlyMechanism final : public Mechanism {
public:
    [[nodiscard]] std::string name() const override { return "vector_only"; }
    [[nodiscard]] std::vector<ScoredBid> rank(const ScoringRule& scoring,
                                              const std::vector<Bid>& bids,
                                              stats::Rng& /*rng*/) const override {
        std::vector<ScoredBid> ranking;
        ranking.reserve(bids.size());
        for (const Bid& bid : bids) ranking.push_back({bid, scoring.score(bid)});
        std::sort(ranking.begin(), ranking.end(),
                  [](const ScoredBid& a, const ScoredBid& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.bid.node < b.bid.node;
                  });
        return ranking;
    }
    [[nodiscard]] std::vector<std::size_t>
    select(const std::vector<ScoredBid>& ranking, stats::Rng& /*rng*/) const override {
        std::vector<std::size_t> chosen;
        for (std::size_t i = 0; i < std::min<std::size_t>(3, ranking.size()); ++i) {
            chosen.push_back(i);
        }
        return chosen;
    }
    [[nodiscard]] std::vector<Winner>
    price(const ScoringRule& /*scoring*/, const std::vector<ScoredBid>& ranking,
          const std::vector<std::size_t>& chosen) const override {
        std::vector<Winner> winners;
        for (const std::size_t i : chosen) {
            winners.push_back(
                Winner{ranking[i].bid.node, ranking[i].score, ranking[i].bid.payment});
        }
        return winners;
    }
};

TEST(BidFrame, DefaultRankFrameAdapterServesVectorOnlyMechanisms) {
    const ScaledProductScoring scoring(5.0, 2);
    const std::vector<Bid> bids = make_bids(80, 71);
    BidFrame frame;
    frame.from_bids(bids);
    RankScratch scratch;
    const WinnerDetermination determination(scoring, MechanismSpec{},
                                            std::make_shared<VectorOnlyMechanism>());
    stats::Rng rng_vector(3);
    stats::Rng rng_frame(3);
    const AuctionOutcome via_vector = determination.run(bids, rng_vector);
    const AuctionOutcome via_frame = determination.run_frame(frame, rng_frame, scratch);
    expect_outcomes_equal(via_vector, via_frame);
}

/// A ScoreAuctionMechanism subclass that tweaks ONE vector-API stage (a
/// reserve filter in select, like the registered test/reserve mechanism).
/// Frame rounds must honour the override — the engine's fused lane is for
/// its exact type only.
class ReserveLikeMechanism final : public ScoreAuctionMechanism {
public:
    ReserveLikeMechanism(MechanismSpec spec, double reserve)
        : ScoreAuctionMechanism(std::move(spec), "reserve_like"), reserve_(reserve) {}

    [[nodiscard]] std::vector<std::size_t>
    select(const std::vector<ScoredBid>& ranking, stats::Rng& rng) const override {
        std::vector<std::size_t> chosen = ScoreAuctionMechanism::select(ranking, rng);
        std::erase_if(chosen,
                      [&](std::size_t i) { return ranking[i].score < reserve_; });
        return chosen;
    }

private:
    double reserve_;
};

TEST(BidFrame, EngineSubclassStageOverridesSurviveFrameRounds) {
    const ScaledProductScoring scoring(5.0, 2);
    const std::vector<Bid> bids = make_bids(60, 81);
    BidFrame frame;
    frame.from_bids(bids);
    RankScratch scratch;
    MechanismSpec spec;
    spec.num_winners = 8;
    // Pick the reserve from the plain engine's board: halfway across the
    // first strict score drop inside the top 8, so the filter provably
    // bites without guessing the score scale.
    double reserve = 0.0;
    {
        const WinnerDetermination plain(scoring, spec);
        stats::Rng probe(17);
        const AuctionOutcome board = plain.run(bids, probe);
        for (std::size_t k = 1; k < 8; ++k) {
            if (board.ranking[k].score < board.ranking[k - 1].score) {
                reserve = 0.5 * (board.ranking[k].score + board.ranking[k - 1].score);
                break;
            }
        }
        ASSERT_GT(reserve, 0.0) << "degenerate board: top-8 scores all tied";
    }
    const WinnerDetermination determination(
        scoring, spec, std::make_shared<ReserveLikeMechanism>(spec, reserve));
    stats::Rng rng_vector(17);
    stats::Rng rng_frame(17);
    const AuctionOutcome via_vector = determination.run(bids, rng_vector);
    const AuctionOutcome via_frame = determination.run_frame(frame, rng_frame, scratch);
    expect_outcomes_equal(via_vector, via_frame);
    for (const Winner& w : via_frame.winners) EXPECT_GE(w.score, reserve);
    ASSERT_LT(via_frame.winners.size(), 8u) << "reserve never engaged; raise it";
}

TEST(BidFrame, InactiveRowsNeverRank) {
    const ScaledProductScoring scoring(5.0, 2);
    std::vector<Bid> bids = make_bids(50, 61);
    BidFrame frame;
    frame.from_bids(bids);
    // Deactivate the rows of the first vector-path winner set.
    MechanismSpec spec = spec_for("first_score");
    const WinnerDetermination determination(scoring, spec);
    stats::Rng rng(1);
    RankScratch scratch;
    const AuctionOutcome before = determination.run_frame(frame, rng, scratch);
    for (const Winner& w : before.winners) frame.set_active(w.node, false);
    stats::Rng rng2(1);
    const AuctionOutcome after = determination.run_frame(frame, rng2, scratch);
    for (const Winner& w : after.winners) {
        for (const Winner& old : before.winners) EXPECT_NE(w.node, old.node);
    }
    EXPECT_EQ(frame.active_count(), 50u - before.winners.size());
}

TEST(BidFrame, EmptyMarketCompletesForEveryMechanism) {
    // N = 0: the degenerate frame must produce an empty board and an empty
    // winner set — not a crash, not a stale buffer — for every registered
    // mechanism, in both tie-break modes.
    const ScaledProductScoring scoring(5.0, 2);
    const std::vector<Bid> none;
    BidFrame frame;
    frame.from_bids(none);
    EXPECT_EQ(frame.rows(), 0u);
    EXPECT_EQ(frame.active_count(), 0u);
    RankScratch scratch;
    for (const std::string& name : MechanismRegistry::instance().names()) {
        for (const TieBreak mode : {TieBreak::shuffle, TieBreak::salted}) {
            SCOPED_TRACE("mechanism " + name
                         + (mode == TieBreak::salted ? " (salted)" : " (shuffle)"));
            MechanismSpec spec = spec_for(name);
            spec.tie_break = mode;
            const WinnerDetermination determination(scoring, spec);
            stats::Rng rng_vector(13);
            stats::Rng rng_frame(13);
            const AuctionOutcome via_vector = determination.run(none, rng_vector);
            const AuctionOutcome via_frame =
                determination.run_frame(frame, rng_frame, scratch);
            EXPECT_TRUE(via_vector.winners.empty());
            EXPECT_TRUE(via_vector.ranking.empty());
            expect_outcomes_equal(via_vector, via_frame);
        }
    }
}

TEST(BidFrame, SingleBidderMarketCompletesForEveryMechanism) {
    // N = 1 with K = 8: the winner set is at most the one bidder, the
    // frame path agrees with the vector path exactly, and the second-score
    // best-loser logic copes with having no loser.
    const ScaledProductScoring scoring(5.0, 2);
    const std::vector<Bid> bids = make_bids(1, 91);
    BidFrame frame;
    frame.from_bids(bids);
    RankScratch scratch;
    for (const std::string& name : MechanismRegistry::instance().names()) {
        SCOPED_TRACE("mechanism " + name);
        const WinnerDetermination determination(scoring, spec_for(name));
        stats::Rng rng_vector(29);
        stats::Rng rng_frame(29);
        const AuctionOutcome via_vector = determination.run(bids, rng_vector);
        const AuctionOutcome via_frame =
            determination.run_frame(frame, rng_frame, scratch);
        expect_outcomes_equal(via_vector, via_frame);
        EXPECT_LE(via_frame.winners.size(), 1u);
        ASSERT_EQ(via_frame.ranking.size(), 1u);
        EXPECT_EQ(via_frame.ranking[0].bid.node, bids[0].node);
    }
}

TEST(BidFrame, AllInactiveRowsBehaveLikeAnEmptyMarket) {
    // A frame whose every row was deactivated (all bidders blacklisted or
    // all shards dropped) is an empty market, not an error.
    const ScaledProductScoring scoring(5.0, 2);
    const std::vector<Bid> bids = make_bids(30, 92);
    BidFrame frame;
    frame.from_bids(bids);
    for (const Bid& bid : bids) frame.set_active(bid.node, false);
    EXPECT_EQ(frame.active_count(), 0u);
    RankScratch scratch;
    for (const std::string& name : MechanismRegistry::instance().names()) {
        SCOPED_TRACE("mechanism " + name);
        const WinnerDetermination determination(scoring, spec_for(name));
        stats::Rng rng(37);
        const AuctionOutcome outcome = determination.run_frame(frame, rng, scratch);
        EXPECT_TRUE(outcome.winners.empty());
        EXPECT_TRUE(outcome.ranking.empty());
    }
}

TEST(BidFrame, KBeyondActiveRowsSelectsEveryActiveBidder) {
    // K far above the active count: the auction admits everyone active and
    // stays bit-identical to the vector path over just the active bids —
    // including on the partial-ranking cut, where cutoff = active, not K.
    const ScaledProductScoring scoring(5.0, 2);
    std::vector<Bid> bids = make_bids(25, 93);
    BidFrame frame;
    frame.from_bids(bids);
    std::vector<Bid> active;
    for (const Bid& bid : bids) {
        if (bid.node % 5 == 0) active.push_back(bid);  // 5 survivors
        else frame.set_active(bid.node, false);
    }
    RankScratch scratch;
    for (const bool full_ranking : {true, false}) {
        SCOPED_TRACE(full_ranking ? "full board" : "partial ranking");
        MechanismSpec spec = spec_for("first_score");
        spec.num_winners = 40;
        spec.full_ranking = full_ranking;
        const WinnerDetermination determination(scoring, spec);
        stats::Rng rng_vector(41);
        stats::Rng rng_frame(41);
        const AuctionOutcome via_vector = determination.run(active, rng_vector);
        const AuctionOutcome via_frame =
            determination.run_frame(frame, rng_frame, scratch);
        expect_outcomes_equal(via_vector, via_frame);
        EXPECT_EQ(via_frame.winners.size(), active.size());
    }
}

TEST(SpanFastPaths, DefaultFallbacksMatchTheVectorApis) {
    // Custom rules that override NOTHING span-related must still score
    // frames correctly (and identically) through the copy-into-scratch
    // defaults.
    class PlainRule final : public ScoringRule {
    public:
        [[nodiscard]] double quality_score(const QualityVector& q) const override {
            double total = 0.0;
            for (const double v : q) total += v * v;
            return total;
        }
        [[nodiscard]] std::size_t dimensions() const override { return 3; }
    };
    class PlainCost final : public CostModel {
    public:
        [[nodiscard]] double cost(const QualityVector& q, double theta) const override {
            double total = 0.0;
            for (const double v : q) total += v;
            return theta * total;
        }
        [[nodiscard]] double cost_theta_derivative(const QualityVector& q,
                                                   double /*theta*/) const override {
            double total = 0.0;
            for (const double v : q) total += v;
            return total;
        }
        [[nodiscard]] std::size_t dimensions() const override { return 3; }
    };

    const PlainRule rule;
    const PlainCost cost;
    const QualityVector q{1.5, 2.0, 0.25};
    EXPECT_EQ(rule.quality_score_span(q.data(), q.size()), rule.quality_score(q));
    EXPECT_EQ(rule.score_span(q.data(), q.size(), 0.75), rule.score(q, 0.75));
    EXPECT_EQ(cost.cost_span(q.data(), q.size(), 1.25), cost.cost(q, 1.25));
}

} // namespace
} // namespace fmore::auction
