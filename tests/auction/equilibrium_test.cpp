#include <gtest/gtest.h>

#include <cmath>

#include "fmore/auction/equilibrium.hpp"
#include "fmore/stats/empirical_cdf.hpp"

namespace fmore::auction {
namespace {

/// Canonical 1-D fixture: s(q) = 2 sqrt(q) (concave), c = theta * q,
/// theta ~ U[0.5, 1.5], q in [0.01, 4]. Closed forms:
///   q^s(theta) = 1/theta^2,  u0(theta) = 1/theta.
class Equilibrium1D : public ::testing::Test {
protected:
    Equilibrium1D()
        : scoring_({2.0}),
          cost_({1.0}),
          theta_(0.5, 1.5) {}

    EquilibriumConfig config(std::size_t n, std::size_t k) const {
        EquilibriumConfig c;
        c.num_bidders = n;
        c.num_winners = k;
        c.theta_grid_points = 257;
        c.score_grid_points = 1024;
        c.quality_grid_points = 96;
        return c;
    }

    EquilibriumStrategy solve(std::size_t n, std::size_t k) const {
        return EquilibriumSolver(scoring_, cost_, theta_, {0.01}, {4.0}, config(n, k))
            .solve();
    }

    // s(q) = 2*sqrt(q) realized through Cobb-Douglas with alpha = 0.5 scaled
    // by coefficient trick: use CobbDouglas then multiply? Simpler: a custom
    // additive-on-sqrt is not in the library, so use CobbDouglas q^0.5 and
    // double the cost instead (equivalent optimum/scale).
    class SqrtScoring final : public ScoringRule {
    public:
        explicit SqrtScoring(double scale) : scale_(scale) {}
        [[nodiscard]] double quality_score(const QualityVector& q) const override {
            return scale_ * std::sqrt(q[0]);
        }
        [[nodiscard]] std::size_t dimensions() const override { return 1; }

    private:
        double scale_;
    };

    SqrtScoring scoring_;
    AdditiveCost cost_;
    stats::UniformDistribution theta_;
};

TEST_F(Equilibrium1D, QualityMatchesClosedForm) {
    const auto strategy = solve(10, 1);
    for (double theta : {0.6, 0.8, 1.0, 1.2, 1.4}) {
        // argmax 2 sqrt(q) - theta q  =>  q* = 1/theta^2.
        EXPECT_NEAR(strategy.quality(theta)[0], 1.0 / (theta * theta), 5e-3);
    }
}

TEST_F(Equilibrium1D, SurplusMatchesClosedForm) {
    const auto strategy = solve(10, 1);
    for (double theta : {0.6, 0.9, 1.2}) {
        EXPECT_NEAR(strategy.max_surplus(theta), 1.0 / theta, 5e-3);
    }
}

TEST_F(Equilibrium1D, SurplusDecreasesInTheta) {
    const auto strategy = solve(20, 4);
    double prev = strategy.max_surplus(0.5);
    for (double theta = 0.55; theta <= 1.5; theta += 0.05) {
        const double u = strategy.max_surplus(theta);
        EXPECT_LE(u, prev + 1e-9);
        prev = u;
    }
}

TEST_F(Equilibrium1D, PaymentCoversCost) {
    // Individual rationality: p >= c for every type and method.
    const auto strategy = solve(30, 5);
    for (double theta = 0.5; theta <= 1.5; theta += 0.05) {
        const double c = cost_.cost(strategy.quality(theta), theta);
        EXPECT_GE(strategy.payment(theta, PaymentMethod::integral), c - 1e-9);
        EXPECT_GE(strategy.payment(theta, PaymentMethod::euler_ode), c - 1e-9);
        EXPECT_GE(strategy.payment(theta, PaymentMethod::rk4_ode), c - 1e-9);
    }
}

TEST_F(Equilibrium1D, IntegralMatchesCheClosedFormForOneWinner) {
    // Che Theorem 2: p = c + int_theta^hi c_theta(q(t),t) [(1-F(t))/(1-F(theta))]^{N-1} dt.
    const EquilibriumSolver solver(scoring_, cost_, theta_, {0.01}, {4.0}, config(12, 1));
    const auto strategy = solver.solve();
    for (double theta : {0.6, 0.9, 1.2}) {
        const double che = solver.payment_che_closed_form(theta, 11);
        EXPECT_NEAR(strategy.payment(theta, PaymentMethod::integral), che,
                    0.02 * std::fabs(che) + 1e-3);
    }
}

TEST_F(Equilibrium1D, IntegralMatchesProposition1ForTwoWinners) {
    // The paper's Prop. 1 uses exponent N-2 for K=2; its g(u) collapses to
    // H^{N-2}, so the forms agree exactly for the paper win model.
    const EquilibriumSolver solver(scoring_, cost_, theta_, {0.01}, {4.0}, config(12, 2));
    const auto strategy = solver.solve();
    for (double theta : {0.6, 0.9, 1.2}) {
        const double prop1 = solver.payment_che_closed_form(theta, 10);
        EXPECT_NEAR(strategy.payment(theta, PaymentMethod::integral), prop1,
                    0.02 * std::fabs(prop1) + 1e-3);
    }
}

TEST_F(Equilibrium1D, EulerAndRk4AgreeWithIntegral) {
    const auto strategy = solve(40, 8);
    // Interior types; the stiff layer near theta_hi is seeded from the
    // integral form by design.
    for (double theta = 0.55; theta <= 1.3; theta += 0.05) {
        const double ref = strategy.payment(theta, PaymentMethod::integral);
        EXPECT_NEAR(strategy.payment(theta, PaymentMethod::euler_ode), ref,
                    0.03 * std::fabs(ref) + 1e-3);
        EXPECT_NEAR(strategy.payment(theta, PaymentMethod::rk4_ode), ref,
                    0.03 * std::fabs(ref) + 1e-3);
    }
}

TEST_F(Equilibrium1D, WinProbabilityMonotoneInType) {
    const auto strategy = solve(50, 10);
    double prev = 1.0;
    for (double theta = 0.5; theta <= 1.5; theta += 0.1) {
        const double g = strategy.win_probability_at(theta);
        EXPECT_LE(g, prev + 1e-9);
        EXPECT_GE(g, 0.0);
        EXPECT_LE(g, 1.0);
        prev = g;
    }
}

TEST_F(Equilibrium1D, BestTypeAlwaysWins) {
    const auto strategy = solve(50, 10);
    EXPECT_NEAR(strategy.win_probability_at(0.5), 1.0, 1e-6);
}

TEST_F(Equilibrium1D, ScoreCdfIsAProperCdf) {
    const auto strategy = solve(25, 5);
    EXPECT_NEAR(strategy.score_cdf(strategy.score_lo() - 1.0), 0.0, 1e-12);
    EXPECT_NEAR(strategy.score_cdf(strategy.score_hi() + 1.0), 1.0, 1e-12);
    double prev = 0.0;
    for (double u = strategy.score_lo(); u <= strategy.score_hi();
         u += (strategy.score_hi() - strategy.score_lo()) / 50.0) {
        const double h = strategy.score_cdf(u);
        EXPECT_GE(h, prev - 1e-9);
        prev = h;
    }
}

TEST_F(Equilibrium1D, MarkupVanishesForWorstType) {
    const auto strategy = solve(30, 6);
    const double theta = 1.5;
    const double c = cost_.cost(strategy.quality(theta), theta);
    EXPECT_NEAR(strategy.payment(theta), c, 5e-3);
}

TEST_F(Equilibrium1D, PaymentForCappedQualityStaysOnShadingCurve) {
    const auto strategy = solve(30, 6);
    const double theta = 0.7;
    const QualityVector full = strategy.quality(theta);
    QualityVector capped{0.5 * full[0]};
    const double p_capped = strategy.payment_for(capped, theta);
    const double c_capped = cost_.cost(capped, theta);
    EXPECT_GE(p_capped, c_capped - 1e-9); // still IR
    // Capped bid scores below the unconstrained one.
    const double u_capped = scoring_.quality_score(capped) - c_capped;
    EXPECT_LT(u_capped, strategy.max_surplus(theta));
    EXPECT_NEAR(p_capped - c_capped, strategy.markup_at_score(u_capped), 1e-9);
}

TEST_F(Equilibrium1D, WorksWithEmpiricalThetaCdf) {
    // Nodes learn F from history (Section III.A); the solver must accept an
    // EmpiricalCdf wherever an analytic distribution fits.
    stats::Rng rng(3);
    std::vector<double> history(400);
    for (double& h : history) h = theta_.sample(rng);
    const stats::EmpiricalCdf learned(std::move(history));
    const auto strategy =
        EquilibriumSolver(scoring_, cost_, learned, {0.01}, {4.0}, config(20, 4)).solve();
    const auto reference = solve(20, 4);
    for (double theta : {0.7, 1.0, 1.3}) {
        EXPECT_NEAR(strategy.payment(theta), reference.payment(theta),
                    0.1 * reference.payment(theta));
    }
}

TEST_F(Equilibrium1D, RejectsDegenerateConfigs) {
    EXPECT_THROW(solve(10, 0), std::invalid_argument);
    EXPECT_THROW(solve(10, 10), std::invalid_argument);
    EXPECT_THROW(solve(10, 15), std::invalid_argument);
}

TEST_F(Equilibrium1D, DegenerateConstantCostYieldsZeroMarkup) {
    // If cost does not depend on theta every type has the same surplus; the
    // solver should fall back to the zero-markup competitive outcome.
    class FlatCost final : public CostModel {
    public:
        [[nodiscard]] double cost(const QualityVector& q, double) const override {
            return q[0];
        }
        [[nodiscard]] double cost_theta_derivative(const QualityVector&,
                                                   double) const override {
            return 0.0;
        }
        [[nodiscard]] std::size_t dimensions() const override { return 1; }
    };
    const FlatCost flat;
    const auto strategy =
        EquilibriumSolver(scoring_, flat, theta_, {0.01}, {4.0}, config(10, 2)).solve();
    const double theta = 1.0;
    EXPECT_NEAR(strategy.payment(theta),
                flat.cost(strategy.quality(theta), theta), 1e-9);
    EXPECT_DOUBLE_EQ(strategy.expected_profit(theta), 0.0);
}

// Proposition 3: with multi-dimensional resources the quality choice is
// independent of p and solves argmax s(q) - c(q, theta) dimension-wise.
TEST(EquilibriumMultiDim, QualityMaximizesSurplus) {
    const CobbDouglasScoring scoring({0.5, 0.5});
    const AdditiveCost cost({0.5, 0.5});
    const stats::UniformDistribution theta(0.5, 1.5);
    EquilibriumConfig cfg;
    cfg.num_bidders = 20;
    cfg.num_winners = 4;
    const auto strategy =
        EquilibriumSolver(scoring, cost, theta, {0.01, 0.01}, {3.0, 3.0}, cfg).solve();

    stats::Rng rng(7);
    for (int t = 0; t < 50; ++t) {
        const double th = rng.uniform(0.5, 1.5);
        const QualityVector q_star = strategy.quality(th);
        const double best = scoring.quality_score(q_star) - cost.cost(q_star, th);
        const QualityVector probe{rng.uniform(0.01, 3.0), rng.uniform(0.01, 3.0)};
        const double alt = scoring.quality_score(probe) - cost.cost(probe, th);
        EXPECT_LE(alt, best + 5e-3);
    }
}

} // namespace
} // namespace fmore::auction
