#include <gtest/gtest.h>

#include "fmore/auction/cost.hpp"

namespace fmore::auction {
namespace {

TEST(AdditiveCost, LinearInQualityAndTheta) {
    const AdditiveCost c({2.0, 3.0});
    EXPECT_DOUBLE_EQ(c.cost({1.0, 1.0}, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(c.cost({1.0, 1.0}, 2.0), 10.0);
    EXPECT_DOUBLE_EQ(c.cost({2.0, 0.0}, 0.5), 2.0);
}

TEST(AdditiveCost, ThetaDerivativeIsResourceBundleValue) {
    const AdditiveCost c({2.0, 3.0});
    EXPECT_DOUBLE_EQ(c.cost_theta_derivative({1.0, 2.0}, 0.7), 8.0);
}

TEST(QuadraticCost, ConvexInQuality) {
    const QuadraticCost c({1.0});
    EXPECT_DOUBLE_EQ(c.cost({2.0}, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(c.cost({3.0}, 1.0), 9.0);
    // Midpoint cost below average of endpoints (strict convexity).
    EXPECT_LT(c.cost({2.5}, 1.0), 0.5 * (4.0 + 9.0));
}

TEST(PowerCost, GammaOneMatchesAdditive) {
    const PowerCost p({2.0, 3.0}, 1.0);
    const AdditiveCost a({2.0, 3.0});
    EXPECT_NEAR(p.cost({0.4, 0.9}, 1.3), a.cost({0.4, 0.9}, 1.3), 1e-12);
}

TEST(PowerCost, RejectsBadGammaAndNegativeQuality) {
    EXPECT_THROW(PowerCost({1.0}, 0.5), std::invalid_argument);
    const PowerCost p({1.0}, 2.0);
    EXPECT_THROW(p.cost({-1.0}, 1.0), std::domain_error);
}

TEST(CostModels, RejectDimensionMismatch) {
    const AdditiveCost c({1.0, 1.0});
    EXPECT_THROW(c.cost({1.0}, 1.0), std::invalid_argument);
    EXPECT_THROW(AdditiveCost({}), std::invalid_argument);
    EXPECT_THROW(AdditiveCost({-1.0}), std::invalid_argument);
}

// The paper's single-crossing assumptions (Section III.A): c_qq >= 0,
// c_q_theta > 0, c_qq_theta >= 0.
TEST(SingleCrossing, HoldsForAdditiveCost) {
    const AdditiveCost c({1.0, 2.0});
    const auto report = check_single_crossing(c, {0.1, 0.1}, {1.0, 1.0}, 0.5, 1.5);
    EXPECT_TRUE(report.all_hold());
}

TEST(SingleCrossing, HoldsForQuadraticCost) {
    const QuadraticCost c({1.0});
    const auto report = check_single_crossing(c, {0.1}, {2.0}, 0.5, 1.5);
    EXPECT_TRUE(report.all_hold());
}

TEST(SingleCrossing, HoldsForPowerCost) {
    const PowerCost c({1.0, 0.5}, 1.5);
    const auto report = check_single_crossing(c, {0.1, 0.1}, {2.0, 2.0}, 0.5, 1.5);
    EXPECT_TRUE(report.all_hold());
}

namespace {

/// A cost that violates c_q_theta > 0 (marginal cost falls with theta).
class PerverseCost final : public CostModel {
public:
    [[nodiscard]] double cost(const QualityVector& q, double theta) const override {
        return (2.0 - theta) * q[0];
    }
    [[nodiscard]] double cost_theta_derivative(const QualityVector& q,
                                               double) const override {
        return -q[0];
    }
    [[nodiscard]] std::size_t dimensions() const override { return 1; }
};

} // namespace

TEST(SingleCrossing, DetectsViolation) {
    const PerverseCost c;
    const auto report = check_single_crossing(c, {0.1}, {1.0}, 0.5, 1.5);
    EXPECT_FALSE(report.marginal_increasing_in_theta);
    EXPECT_FALSE(report.all_hold());
}

} // namespace
} // namespace fmore::auction
