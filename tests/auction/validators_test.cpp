#include <gtest/gtest.h>

#include "fmore/auction/validators.hpp"

namespace fmore::auction {
namespace {

class ValidatorsTest : public ::testing::Test {
protected:
    ValidatorsTest() : scoring_(25.0, 2), cost_({3.0, 3.0}), theta_(0.5, 1.5) {
        EquilibriumConfig eq;
        eq.num_bidders = 50;
        eq.num_winners = 10;
        strategy_ = std::make_unique<EquilibriumStrategy>(
            EquilibriumSolver(scoring_, cost_, theta_, {0.01, 0.01}, {1.0, 1.0}, eq)
                .solve());
    }

    ScaledProductScoring scoring_;
    AdditiveCost cost_;
    stats::UniformDistribution theta_;
    std::unique_ptr<EquilibriumStrategy> strategy_;
};

// Theorem 5: under-declaring quality only lowers the score.
TEST_F(ValidatorsTest, IncentiveCompatibilityHolds) {
    stats::Rng rng(1);
    const auto report = audit_incentive_compatibility(*strategy_, scoring_, rng, 512);
    EXPECT_TRUE(report.holds()) << "violations=" << report.violations
                                << " worst=" << report.worst_violation;
    EXPECT_EQ(report.trials, 512u);
}

// Theorem 4: the equilibrium quality choice maximizes the social surplus
// term of each winner, so no perturbation improves it.
TEST_F(ValidatorsTest, ParetoEfficiencyHolds) {
    stats::Rng rng(2);
    const auto report = audit_pareto_efficiency(*strategy_, scoring_, cost_, {0.01, 0.01},
                                                {1.0, 1.0}, rng, 512, 5e-3);
    EXPECT_TRUE(report.holds()) << "improvements=" << report.improvements
                                << " best=" << report.best_improvement;
}

TEST_F(ValidatorsTest, IndividualRationalityHolds) {
    EXPECT_TRUE(individual_rationality_holds(*strategy_, cost_));
}

TEST_F(ValidatorsTest, SocialSurplusSumsWinners) {
    const std::vector<QualityVector> qs{{0.5, 0.5}, {1.0, 1.0}};
    const std::vector<double> thetas{1.0, 1.0};
    // s = 25*q1*q2, c = 3(q1+q2): (6.25-3) + (25-6) = 22.25.
    EXPECT_NEAR(social_surplus(scoring_, cost_, qs, thetas), 22.25, 1e-12);
    EXPECT_THROW(social_surplus(scoring_, cost_, qs, {1.0}), std::invalid_argument);
}

// Proposition 4 closed form against a brute-force Lagrange check.
TEST(Proposition4, RatiosMatchClosedForm) {
    const std::vector<double> alphas{0.5, 0.3, 0.2};
    const std::vector<double> betas{0.2, 0.3, 0.5};
    const double theta = 1.2;
    const double budget = 10.0;
    const auto q = proposition4_optimal_qualities(alphas, betas, theta, budget);
    ASSERT_EQ(q.size(), 3u);
    // q_i*/q_j* = (alpha_i beta_j) / (alpha_j beta_i).
    EXPECT_NEAR(q[0] / q[1], (alphas[0] * betas[1]) / (alphas[1] * betas[0]), 1e-9);
    EXPECT_NEAR(q[1] / q[2], (alphas[1] * betas[2]) / (alphas[2] * betas[1]), 1e-9);
    // Budget exactly exhausted: theta * sum beta q = c0.
    double spend = 0.0;
    for (std::size_t i = 0; i < 3; ++i) spend += betas[i] * q[i];
    EXPECT_NEAR(theta * spend, budget, 1e-9);
}

TEST(Proposition4, BeatsRandomAllocationsOnCobbDouglasUtility) {
    const std::vector<double> alphas{0.6, 0.4};
    const std::vector<double> betas{0.5, 0.5};
    const double theta = 1.0;
    const double budget = 4.0;
    const auto q_star = proposition4_optimal_qualities(alphas, betas, theta, budget);
    auto utility = [&](const std::vector<double>& q) {
        return std::pow(q[0], alphas[0]) * std::pow(q[1], alphas[1]);
    };
    const double best = utility(q_star);
    stats::Rng rng(3);
    for (int t = 0; t < 200; ++t) {
        // Random allocation on the same budget line.
        const double share = rng.uniform(0.01, 0.99);
        const std::vector<double> q{share * budget / (theta * betas[0]),
                                    (1.0 - share) * budget / (theta * betas[1])};
        EXPECT_LE(utility(q), best + 1e-9);
    }
}

TEST(Proposition4, RejectsBadInput) {
    EXPECT_THROW(proposition4_optimal_qualities({0.5}, {0.5, 0.5}, 1.0, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(proposition4_optimal_qualities({0.5}, {0.5}, 0.0, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(proposition4_optimal_qualities({0.5}, {0.0}, 1.0, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(proposition4_optimal_qualities({-0.5}, {0.5}, 1.0, 1.0),
                 std::invalid_argument);
}

} // namespace
} // namespace fmore::auction
