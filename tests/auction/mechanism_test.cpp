// The Mechanism seam: registry resolution, the four built-in mechanisms
// (second-score payments and budget-truncation edge cases in particular),
// the O(N log K) partial-ranking path, and — the openness contract — a
// custom mechanism registered from test code without touching src/auction.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "fmore/auction/mechanism.hpp"
#include "fmore/auction/winner_determination.hpp"

namespace fmore::auction {
namespace {

class MechanismTest : public ::testing::Test {
protected:
    MechanismTest() : scoring_({1.0, 1.0}) {}

    static std::vector<Bid> bids() {
        // Scores 0.7, 0.6, 0.5, 0.4, 0.2 with payments 0.3/0.2/0.1/0.5/0.1.
        return {
            {0, {0.5, 0.5}, 0.3},   {1, {0.4, 0.4}, 0.2},  {2, {0.3, 0.3}, 0.1},
            {3, {0.45, 0.45}, 0.5}, {4, {0.15, 0.15}, 0.1},
        };
    }

    AdditiveScoring scoring_;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST_F(MechanismTest, RegistryResolvesTheFourPaperMechanisms) {
    auto& registry = MechanismRegistry::instance();
    const std::vector<std::string> expected{"budget_feasible", "first_score",
                                            "psi_fmore", "second_score"};
    for (const std::string& name : expected) {
        EXPECT_TRUE(registry.contains(name)) << name;
        MechanismSpec spec;
        spec.num_winners = 2;
        const auto mechanism = registry.create(name, spec);
        ASSERT_NE(mechanism, nullptr);
        EXPECT_EQ(mechanism->name(), name);
    }
    const std::vector<std::string> names = registry.names();
    for (const std::string& name : expected) {
        EXPECT_NE(std::find(names.begin(), names.end(), name), names.end());
    }
}

TEST_F(MechanismTest, UnknownNameErrorListsRegisteredMechanisms) {
    MechanismSpec spec;
    try {
        (void)MechanismRegistry::instance().create("no_such_mechanism", spec);
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("no_such_mechanism"), std::string::npos);
        EXPECT_NE(what.find("first_score"), std::string::npos);
    }
}

TEST_F(MechanismTest, LegacyKnobsDeriveTheExpectedName) {
    MechanismSpec spec;
    EXPECT_EQ(resolve_mechanism_name(spec), "first_score");
    spec.payment_rule = PaymentRule::second_price;
    EXPECT_EQ(resolve_mechanism_name(spec), "second_score");
    spec.psi = 0.5;
    EXPECT_EQ(resolve_mechanism_name(spec), "psi_fmore");
    spec.budget = 1.0;
    EXPECT_EQ(resolve_mechanism_name(spec), "budget_feasible");
    spec.mechanism = "first_score"; // explicit name wins over every knob
    EXPECT_EQ(resolve_mechanism_name(spec), "first_score");
}

TEST_F(MechanismTest, WinnerDeterminationReportsItsMechanism) {
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 2;
    cfg.payment_rule = PaymentRule::second_price;
    const WinnerDetermination wd(scoring_, cfg);
    EXPECT_EQ(wd.mechanism().name(), "second_score");
}

// ---------------------------------------------------------------------------
// Second-score payments
// ---------------------------------------------------------------------------

TEST_F(MechanismTest, SecondScoreWinnerPaysBestLosingScore) {
    MechanismSpec spec;
    spec.num_winners = 2;
    const auto mechanism = MechanismRegistry::instance().create("second_score", spec);
    stats::Rng rng(3);
    const AuctionOutcome outcome = mechanism->run(scoring_, bids(), rng);
    ASSERT_EQ(outcome.winners.size(), 2u);
    // Best losing score is node 2's S = 0.5. Each winner pays
    // s(q) - S_loser: node 0 pays 1.0 - 0.5 = 0.5, node 1 pays 0.8 - 0.5 =
    // 0.3 — both above their asks (0.3, 0.2), so no IR floor kicks in.
    EXPECT_EQ(outcome.winners[0].node, 0u);
    EXPECT_NEAR(outcome.winners[0].payment, 0.5, 1e-12);
    EXPECT_EQ(outcome.winners[1].node, 1u);
    EXPECT_NEAR(outcome.winners[1].payment, 0.3, 1e-12);
}

TEST_F(MechanismTest, SecondScoreTightMarginPricesAgainstTheBestLoser) {
    std::vector<Bid> tight = bids();
    tight[2].payment = 0.001; // node 2's score becomes 0.599, just losing to 0.6
    MechanismSpec spec;
    spec.num_winners = 2;
    const auto mechanism = MechanismRegistry::instance().create("second_score", spec);
    stats::Rng rng(4);
    const AuctionOutcome outcome = mechanism->run(scoring_, tight, rng);
    ASSERT_EQ(outcome.winners.size(), 2u);
    // Node 1: s = 0.8, best losing score 0.599 -> pays 0.201 (>= ask 0.2).
    EXPECT_NEAR(outcome.winners[1].payment, 0.201, 1e-12);
}

TEST_F(MechanismTest, SecondScorePaymentNeverBelowTheAsk) {
    // Under deterministic top-K a winner always outranks every loser, so
    // s(q) - S_loser >= ask by construction; only psi selection can admit a
    // winner that ranks BELOW the best loser, and there the IR floor (pay
    // at least your ask) must bind. Sweep seeds until it does.
    MechanismSpec spec;
    spec.num_winners = 2;
    spec.psi = 0.3;
    spec.payment_rule = PaymentRule::second_price;
    const auto mechanism = MechanismRegistry::instance().create("psi_fmore", spec);
    const std::vector<Bid> pool = bids();
    bool floor_hit = false;
    for (std::uint64_t seed = 0; seed < 200 && !floor_hit; ++seed) {
        stats::Rng rng(seed);
        const AuctionOutcome outcome = mechanism->run(scoring_, pool, rng);
        double best_losing = 0.0;
        for (const ScoredBid& sb : outcome.ranking) {
            const bool won = std::any_of(
                outcome.winners.begin(), outcome.winners.end(),
                [&](const Winner& w) { return w.node == sb.bid.node; });
            if (!won) {
                best_losing = sb.score;
                break;
            }
        }
        for (const Winner& w : outcome.winners) {
            const double ask = pool[w.node].payment;
            EXPECT_GE(w.payment, ask - 1e-12); // IR for every winner, always
            if (w.score < best_losing) {
                EXPECT_NEAR(w.payment, ask, 1e-12); // the floor is the ask
                floor_hit = true;
            }
        }
    }
    EXPECT_TRUE(floor_hit) << "psi selection never exercised the IR floor";
}

TEST_F(MechanismTest, SecondScoreFactoryPinsThePaymentRule) {
    // Even a spec that says first_price prices second-score when created
    // under the "second_score" registry name.
    MechanismSpec spec;
    spec.num_winners = 2;
    spec.payment_rule = PaymentRule::first_price;
    const auto mechanism = MechanismRegistry::instance().create("second_score", spec);
    stats::Rng rng(6);
    const AuctionOutcome outcome = mechanism->run(scoring_, bids(), rng);
    ASSERT_EQ(outcome.winners.size(), 2u);
    EXPECT_NEAR(outcome.winners[0].payment, 0.5, 1e-12); // not the 0.3 ask
}

// ---------------------------------------------------------------------------
// Budget-truncation edge cases
// ---------------------------------------------------------------------------

TEST_F(MechanismTest, BudgetSmallerThanFirstPaymentAdmitsNobody) {
    MechanismSpec spec;
    spec.num_winners = 3;
    spec.budget = 0.2; // first winner (node 0) asks 0.3 > 0.2
    const auto mechanism = MechanismRegistry::instance().create("budget_feasible", spec);
    stats::Rng rng(7);
    const AuctionOutcome outcome = mechanism->run(scoring_, bids(), rng);
    EXPECT_TRUE(outcome.winners.empty());
    EXPECT_EQ(outcome.ranking.size(), 5u); // the board is still complete
}

TEST_F(MechanismTest, BudgetExactlyEqualToPrefixSumAdmitsTheWholePrefix) {
    MechanismSpec spec;
    spec.num_winners = 3;
    spec.budget = 0.3 + 0.2 + 0.1; // asks of the top three, to the cent
    const auto mechanism = MechanismRegistry::instance().create("budget_feasible", spec);
    stats::Rng rng(8);
    const AuctionOutcome outcome = mechanism->run(scoring_, bids(), rng);
    ASSERT_EQ(outcome.winners.size(), 3u); // boundary is inclusive
    double spent = 0.0;
    for (const Winner& w : outcome.winners) spent += w.payment;
    EXPECT_NEAR(spent, 0.6, 1e-12);
}

TEST_F(MechanismTest, BudgetOneCentShortDropsTheLastWinner) {
    MechanismSpec spec;
    spec.num_winners = 3;
    spec.budget = 0.6 - 0.01;
    const auto mechanism = MechanismRegistry::instance().create("budget_feasible", spec);
    stats::Rng rng(9);
    const AuctionOutcome outcome = mechanism->run(scoring_, bids(), rng);
    ASSERT_EQ(outcome.winners.size(), 2u);
    EXPECT_EQ(outcome.winners[0].node, 0u);
    EXPECT_EQ(outcome.winners[1].node, 1u);
}

TEST_F(MechanismTest, BudgetTruncationDoesNotPullCheaperBidsForward) {
    // Node 3 (rank 4, ask 0.5) would fit a 0.35 budget after node 0 eats
    // 0.3 — but the prefix rule stops at the first overflow (node 1, ask
    // 0.2) rather than skipping ahead, preserving monotonicity.
    MechanismSpec spec;
    spec.num_winners = 5;
    spec.budget = 0.35;
    const auto mechanism = MechanismRegistry::instance().create("budget_feasible", spec);
    stats::Rng rng(10);
    const AuctionOutcome outcome = mechanism->run(scoring_, bids(), rng);
    ASSERT_EQ(outcome.winners.size(), 1u);
    EXPECT_EQ(outcome.winners[0].node, 0u);
}

// ---------------------------------------------------------------------------
// Spec validation
// ---------------------------------------------------------------------------

TEST_F(MechanismTest, RejectsNaNAndOutOfRangePsi) {
    MechanismSpec spec;
    spec.psi = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(ScoreAuctionMechanism{spec}, std::invalid_argument);
    spec.psi = -0.25;
    EXPECT_THROW(ScoreAuctionMechanism{spec}, std::invalid_argument);
    spec.psi = 0.5;
    spec.psi_per_node = {0.5, std::numeric_limits<double>::quiet_NaN()};
    EXPECT_THROW(ScoreAuctionMechanism{spec}, std::invalid_argument);
    spec.psi_per_node = {0.5, -1.0};
    EXPECT_THROW(ScoreAuctionMechanism{spec}, std::invalid_argument);
    spec.psi_per_node = {0.5, 0.5};
    EXPECT_NO_THROW(ScoreAuctionMechanism{spec});
}

TEST_F(MechanismTest, RejectsNegativeOrInfiniteBudget) {
    MechanismSpec spec;
    spec.budget = -1.0;
    EXPECT_THROW(ScoreAuctionMechanism{spec}, std::invalid_argument);
    spec.budget = std::numeric_limits<double>::infinity();
    EXPECT_THROW(ScoreAuctionMechanism{spec}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// O(N log K) partial-ranking path
// ---------------------------------------------------------------------------

TEST_F(MechanismTest, TopKPathMatchesFullSortBitForBit) {
    // Random bids (with deliberate score ties from duplicated bids) must
    // produce the same winners and payments on both paths for the same RNG
    // stream, under first- and second-score pricing.
    stats::Rng gen(42);
    std::vector<Bid> pool;
    for (std::size_t i = 0; i < 64; ++i) {
        const double q = gen.uniform(0.0, 0.5);
        pool.push_back({i, {q, q}, gen.uniform(0.0, 0.3)});
        if (i % 7 == 0) // exact-tie twin with a distinct node id
            pool.push_back({100 + i, {q, q}, pool.back().payment});
    }
    for (const PaymentRule rule :
         {PaymentRule::first_price, PaymentRule::second_price}) {
        MechanismSpec full;
        full.num_winners = 10;
        full.payment_rule = rule;
        MechanismSpec partial = full;
        partial.full_ranking = false;
        const ScoreAuctionMechanism full_mechanism(full);
        const ScoreAuctionMechanism partial_mechanism(partial);
        for (std::uint64_t seed = 0; seed < 10; ++seed) {
            stats::Rng rng_full(seed);
            stats::Rng rng_partial(seed);
            const AuctionOutcome a = full_mechanism.run(scoring_, pool, rng_full);
            const AuctionOutcome b = partial_mechanism.run(scoring_, pool, rng_partial);
            ASSERT_EQ(a.winners.size(), b.winners.size());
            for (std::size_t i = 0; i < a.winners.size(); ++i) {
                EXPECT_EQ(a.winners[i].node, b.winners[i].node) << "seed " << seed;
                EXPECT_EQ(a.winners[i].payment, b.winners[i].payment);
                EXPECT_EQ(a.winners[i].score, b.winners[i].score);
            }
            // The truncated board holds exactly the entries selection needs.
            const std::size_t expect_top =
                10 + (rule == PaymentRule::second_price ? 1 : 0);
            EXPECT_EQ(b.ranking.size(), expect_top);
            for (std::size_t i = 0; i < expect_top; ++i) {
                EXPECT_EQ(a.ranking[i].bid.node, b.ranking[i].bid.node);
            }
        }
    }
}

TEST_F(MechanismTest, TopKPathFallsBackToFullSortUnderPsi) {
    MechanismSpec spec;
    spec.num_winners = 2;
    spec.psi = 0.5;
    spec.full_ranking = false;
    const ScoreAuctionMechanism mechanism(spec);
    stats::Rng rng(11);
    const AuctionOutcome outcome = mechanism.run(scoring_, bids(), rng);
    EXPECT_EQ(outcome.ranking.size(), 5u); // psi scans the whole board
    EXPECT_EQ(outcome.winners.size(), 2u);
}

// ---------------------------------------------------------------------------
// Custom mechanisms plug in from outside src/auction
// ---------------------------------------------------------------------------

/// A reserve-price mechanism defined entirely in test code: bids scoring
/// below the reserve are never admitted, even if slots stay empty (the
/// "reserve prices" variant PAPERS.md points at).
class ReserveScoreMechanism final : public ScoreAuctionMechanism {
public:
    ReserveScoreMechanism(MechanismSpec spec, double reserve)
        : ScoreAuctionMechanism(std::move(spec), "test/reserve"), reserve_(reserve) {}

    [[nodiscard]] std::vector<std::size_t>
    select(const std::vector<ScoredBid>& ranking, stats::Rng& rng) const override {
        std::vector<std::size_t> chosen = ScoreAuctionMechanism::select(ranking, rng);
        std::erase_if(chosen,
                      [&](std::size_t i) { return ranking[i].score < reserve_; });
        return chosen;
    }

private:
    double reserve_;
};

TEST_F(MechanismTest, CustomMechanismRegistersAndRunsThroughTheSeam) {
    auto& registry = MechanismRegistry::instance();
    registry.replace("test/reserve", [](const MechanismSpec& spec) {
        return std::make_unique<ReserveScoreMechanism>(spec, /*reserve=*/0.45);
    });
    ASSERT_TRUE(registry.contains("test/reserve"));

    // Resolved by name through the ordinary WinnerDetermination driver.
    WinnerDeterminationConfig cfg;
    cfg.mechanism = "test/reserve";
    cfg.num_winners = 4;
    const WinnerDetermination wd(scoring_, cfg);
    EXPECT_EQ(wd.mechanism().name(), "test/reserve");
    stats::Rng rng(12);
    const AuctionOutcome outcome = wd.run(bids(), rng);
    // Scores 0.7, 0.6, 0.5 pass the 0.45 reserve; 0.4 and 0.2 do not —
    // only 3 of the 4 slots fill.
    ASSERT_EQ(outcome.winners.size(), 3u);
    std::set<NodeId> winners;
    for (const Winner& w : outcome.winners) winners.insert(w.node);
    EXPECT_EQ(winners, (std::set<NodeId>{0, 1, 2}));

    registry.remove("test/reserve");
    EXPECT_FALSE(registry.contains("test/reserve"));
}

TEST_F(MechanismTest, DuplicateRegistrationThrowsButReplaceWins) {
    auto& registry = MechanismRegistry::instance();
    registry.replace("test/dup", [](const MechanismSpec& spec) {
        return std::make_unique<ScoreAuctionMechanism>(spec, "test/dup");
    });
    EXPECT_THROW(registry.add("test/dup",
                              [](const MechanismSpec& spec) {
                                  return std::make_unique<ScoreAuctionMechanism>(
                                      spec, "test/dup");
                              }),
                 std::invalid_argument);
    EXPECT_NO_THROW(registry.replace("test/dup", [](const MechanismSpec& spec) {
        return std::make_unique<ScoreAuctionMechanism>(spec, "test/dup2");
    }));
    registry.remove("test/dup");
}

} // namespace
} // namespace fmore::auction
