#include <gtest/gtest.h>

#include <set>

#include "fmore/auction/winner_determination.hpp"

namespace fmore::auction {
namespace {

class WinnerDeterminationTest : public ::testing::Test {
protected:
    WinnerDeterminationTest() : scoring_({1.0, 1.0}) {}

    static std::vector<Bid> five_bids() {
        // Quality scores: 1.0, 0.8, 0.6, 0.9, 0.3; payments chosen so
        // ranking is E? compute S: 0.7, 0.6, 0.5, 0.4, 0.2.
        return {
            {0, {0.5, 0.5}, 0.3},  // s=1.0 S=0.7
            {1, {0.4, 0.4}, 0.2},  // s=0.8 S=0.6
            {2, {0.3, 0.3}, 0.1},  // s=0.6 S=0.5
            {3, {0.45, 0.45}, 0.5},// s=0.9 S=0.4
            {4, {0.15, 0.15}, 0.1},// s=0.3 S=0.2
        };
    }

    AdditiveScoring scoring_;
};

TEST_F(WinnerDeterminationTest, TopKByScore) {
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 3;
    const WinnerDetermination wd(scoring_, cfg);
    stats::Rng rng(1);
    const auto outcome = wd.run(five_bids(), rng);
    ASSERT_EQ(outcome.winners.size(), 3u);
    EXPECT_EQ(outcome.winners[0].node, 0u);
    EXPECT_EQ(outcome.winners[1].node, 1u);
    EXPECT_EQ(outcome.winners[2].node, 2u);
}

TEST_F(WinnerDeterminationTest, RankingIsDescendingAndComplete) {
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 2;
    const WinnerDetermination wd(scoring_, cfg);
    stats::Rng rng(2);
    const auto outcome = wd.run(five_bids(), rng);
    ASSERT_EQ(outcome.ranking.size(), 5u);
    for (std::size_t i = 1; i < outcome.ranking.size(); ++i) {
        EXPECT_GE(outcome.ranking[i - 1].score, outcome.ranking[i].score);
    }
}

TEST_F(WinnerDeterminationTest, FirstPricePaysBid) {
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 2;
    cfg.payment_rule = PaymentRule::first_price;
    const WinnerDetermination wd(scoring_, cfg);
    stats::Rng rng(3);
    const auto outcome = wd.run(five_bids(), rng);
    EXPECT_DOUBLE_EQ(outcome.winners[0].payment, 0.3);
    EXPECT_DOUBLE_EQ(outcome.winners[1].payment, 0.2);
}

TEST_F(WinnerDeterminationTest, SecondPricePaysToBestLosingScore) {
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 2;
    cfg.payment_rule = PaymentRule::second_price;
    const WinnerDetermination wd(scoring_, cfg);
    stats::Rng rng(4);
    const auto outcome = wd.run(five_bids(), rng);
    // Best losing score is node 2's 0.5; winner 0 (s=1.0) is paid 1.0-0.5.
    EXPECT_NEAR(outcome.winners[0].payment, 0.5, 1e-12);
    // Winner 1 (s=0.8) would be paid 0.3 but bid 0.2 -> gets 0.3 >= bid.
    EXPECT_NEAR(outcome.winners[1].payment, 0.3, 1e-12);
}

TEST_F(WinnerDeterminationTest, SecondPriceNeverBelowOwnAsk) {
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 4;
    cfg.payment_rule = PaymentRule::second_price;
    const WinnerDetermination wd(scoring_, cfg);
    stats::Rng rng(5);
    const auto outcome = wd.run(five_bids(), rng);
    for (const Winner& w : outcome.winners) {
        EXPECT_GE(w.payment, five_bids()[w.node].payment - 1e-12);
    }
}

TEST_F(WinnerDeterminationTest, FewerBidsThanKSelectsAll) {
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 10;
    const WinnerDetermination wd(scoring_, cfg);
    stats::Rng rng(6);
    const auto outcome = wd.run(five_bids(), rng);
    EXPECT_EQ(outcome.winners.size(), 5u);
}

TEST_F(WinnerDeterminationTest, TiesAreBrokenRandomly) {
    // Two identical bids; over many runs each should win the single slot
    // about half the time ("ties are resolved by the flip of a coin").
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 1;
    const WinnerDetermination wd(scoring_, cfg);
    const std::vector<Bid> bids = {{0, {0.5, 0.5}, 0.2}, {1, {0.5, 0.5}, 0.2}};
    stats::Rng rng(7);
    int first_wins = 0;
    constexpr int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        const auto outcome = wd.run(bids, rng);
        if (outcome.winners[0].node == 0) ++first_wins;
    }
    EXPECT_NEAR(static_cast<double>(first_wins) / trials, 0.5, 0.05);
}

TEST_F(WinnerDeterminationTest, PsiOneMatchesPlainFMore) {
    WinnerDeterminationConfig plain;
    plain.num_winners = 3;
    WinnerDeterminationConfig psi1;
    psi1.num_winners = 3;
    psi1.psi = 1.0;
    const WinnerDetermination a(scoring_, plain);
    const WinnerDetermination b(scoring_, psi1);
    stats::Rng r1(8);
    stats::Rng r2(8);
    const auto oa = a.run(five_bids(), r1);
    const auto ob = b.run(five_bids(), r2);
    ASSERT_EQ(oa.winners.size(), ob.winners.size());
    for (std::size_t i = 0; i < oa.winners.size(); ++i) {
        EXPECT_EQ(oa.winners[i].node, ob.winners[i].node);
    }
}

TEST_F(WinnerDeterminationTest, SmallPsiStillFillsK) {
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 3;
    cfg.psi = 0.05;
    const WinnerDetermination wd(scoring_, cfg);
    stats::Rng rng(9);
    for (int t = 0; t < 50; ++t) {
        EXPECT_EQ(wd.run(five_bids(), rng).winners.size(), 3u);
    }
}

TEST_F(WinnerDeterminationTest, PsiLetsLowScorersIn) {
    // With psi = 0.3 the bottom-ranked node must win sometimes; with
    // psi = 1 never.
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 2;
    cfg.psi = 0.3;
    const WinnerDetermination wd(scoring_, cfg);
    stats::Rng rng(10);
    int bottom_wins = 0;
    constexpr int trials = 2000;
    for (int t = 0; t < trials; ++t) {
        for (const Winner& w : wd.run(five_bids(), rng).winners) {
            if (w.node == 4) ++bottom_wins;
        }
    }
    EXPECT_GT(bottom_wins, 0);
    EXPECT_LT(bottom_wins, trials / 2);
}

TEST_F(WinnerDeterminationTest, PsiPreservesScoreOrderBias) {
    // Higher-ranked nodes must still win more often under psi-FMore.
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 2;
    cfg.psi = 0.5;
    const WinnerDetermination wd(scoring_, cfg);
    stats::Rng rng(11);
    std::vector<int> wins(5, 0);
    constexpr int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        for (const Winner& w : wd.run(five_bids(), rng).winners) ++wins[w.node];
    }
    EXPECT_GT(wins[0], wins[2]);
    EXPECT_GT(wins[1], wins[3]);
    EXPECT_GT(wins[2], wins[4]);
}

TEST_F(WinnerDeterminationTest, RejectsBadConfig) {
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 0;
    EXPECT_THROW(WinnerDetermination(scoring_, cfg), std::invalid_argument);
    cfg.num_winners = 2;
    cfg.psi = 0.0;
    EXPECT_THROW(WinnerDetermination(scoring_, cfg), std::invalid_argument);
    cfg.psi = 1.5;
    EXPECT_THROW(WinnerDetermination(scoring_, cfg), std::invalid_argument);
}

TEST_F(WinnerDeterminationTest, EmptyBidPoolYieldsNoWinners) {
    WinnerDeterminationConfig cfg;
    cfg.num_winners = 3;
    const WinnerDetermination wd(scoring_, cfg);
    stats::Rng rng(12);
    const auto outcome = wd.run({}, rng);
    EXPECT_TRUE(outcome.winners.empty());
    EXPECT_TRUE(outcome.ranking.empty());
}

} // namespace
} // namespace fmore::auction
