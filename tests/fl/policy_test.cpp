// The SelectionPolicy seam: registry resolution, the built-in policies'
// behavior against the raw selectors they wrap, context plumbing for
// auction-backed policies, and downstream registration.

#include <gtest/gtest.h>

#include <set>

#include "fmore/fl/policy.hpp"

namespace fmore::fl {
namespace {

PolicyContext basic_context() {
    PolicyContext context;
    context.num_clients = 10;
    context.winners = 3;
    context.trial_seed = 77;
    return context;
}

TEST(PolicyRegistryTest, ResolvesTheFourPaperPolicies) {
    auto& registry = PolicyRegistry::instance();
    for (const char* name : {"fmore", "psi_fmore", "randfl", "fixfl"}) {
        ASSERT_TRUE(registry.contains(name)) << name;
        const auto policy = registry.create(name);
        ASSERT_NE(policy, nullptr);
        EXPECT_EQ(policy->name(), name);
    }
}

TEST(PolicyRegistryTest, UnknownPolicyErrorListsRegisteredNames) {
    try {
        (void)make_policy("round_robin");
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("round_robin"), std::string::npos);
        EXPECT_NE(what.find("randfl"), std::string::npos);
    }
}

TEST(PolicyRegistryTest, RandFlPolicyMatchesRandomSelector) {
    const auto policy = make_policy("randfl");
    const auto selector = policy->make_selector(basic_context());
    RandomSelector reference(10);
    stats::Rng a(5);
    stats::Rng b(5);
    const SelectionRecord lhs = selector->select(1, 3, a);
    const SelectionRecord rhs = reference.select(1, 3, b);
    ASSERT_EQ(lhs.selected.size(), rhs.selected.size());
    for (std::size_t i = 0; i < lhs.selected.size(); ++i) {
        EXPECT_EQ(lhs.selected[i].client, rhs.selected[i].client);
    }
}

TEST(PolicyRegistryTest, FixFlPolicyDrawsItsSetFromTheTrialSeed) {
    const auto policy = make_policy("fixfl");
    const auto first = policy->make_selector(basic_context());
    const auto second = policy->make_selector(basic_context());
    stats::Rng rng(1);
    const SelectionRecord a = first->select(1, 3, rng);
    const SelectionRecord b = second->select(1, 3, rng);
    ASSERT_EQ(a.selected.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(a.selected[i].client, b.selected[i].client); // same seed, same set
    }
    PolicyContext other = basic_context();
    other.trial_seed = 78;
    const auto third = policy->make_selector(other);
    const SelectionRecord c = third->select(1, 3, rng);
    std::set<std::size_t> set_a;
    std::set<std::size_t> set_c;
    for (const auto& s : a.selected) set_a.insert(s.client);
    for (const auto& s : c.selected) set_c.insert(s.client);
    EXPECT_NE(set_a, set_c); // different trial, different fixed set
}

TEST(PolicyRegistryTest, AuctionPoliciesNeedTheExperimentHook) {
    try {
        (void)make_policy("fmore")->make_selector(basic_context());
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& error) {
        EXPECT_NE(std::string(error.what()).find("make_auction_selector"),
                  std::string::npos);
    }
}

TEST(PolicyRegistryTest, PsiFmoreFlagsProbabilisticAcceptance) {
    PolicyContext context = basic_context();
    bool seen_probabilistic = false;
    context.make_auction_selector =
        [&seen_probabilistic](const PolicyContext& ctx) -> std::unique_ptr<ClientSelector> {
        seen_probabilistic = ctx.probabilistic_acceptance;
        return std::make_unique<RandomSelector>(ctx.num_clients); // stand-in
    };
    (void)make_policy("fmore")->make_selector(context);
    EXPECT_FALSE(seen_probabilistic);
    (void)make_policy("psi_fmore")->make_selector(context);
    EXPECT_TRUE(seen_probabilistic);
}

/// A policy registered from test code: always picks clients 0..k-1.
class FirstKPolicy final : public SelectionPolicy {
public:
    [[nodiscard]] std::string name() const override { return "test/first_k"; }
    [[nodiscard]] std::unique_ptr<ClientSelector>
    make_selector(const PolicyContext& context) const override {
        std::vector<std::size_t> fixed(context.winners);
        for (std::size_t i = 0; i < fixed.size(); ++i) fixed[i] = i;
        return std::make_unique<FixedSelector>(std::move(fixed));
    }
};

TEST(PolicyRegistryTest, DownstreamPolicyRegistersWithoutCoreEdits) {
    auto& registry = PolicyRegistry::instance();
    registry.replace("test/first_k", [] { return std::make_unique<FirstKPolicy>(); });
    const auto selector = make_policy("test/first_k")->make_selector(basic_context());
    stats::Rng rng(9);
    const SelectionRecord record = selector->select(1, 3, rng);
    ASSERT_EQ(record.selected.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(record.selected[i].client, i);
    registry.remove("test/first_k");
    EXPECT_FALSE(registry.contains("test/first_k"));
}

} // namespace
} // namespace fmore::fl
