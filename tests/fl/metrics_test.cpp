#include <gtest/gtest.h>

#include "fmore/fl/metrics.hpp"

namespace fmore::fl {
namespace {

RunResult make_run(std::vector<double> accs, std::vector<double> secs = {}) {
    RunResult run;
    for (std::size_t i = 0; i < accs.size(); ++i) {
        RoundMetrics m;
        m.round = i + 1;
        m.test_accuracy = accs[i];
        m.test_loss = 1.0 - accs[i];
        m.round_seconds = i < secs.size() ? secs[i] : 0.0;
        run.rounds.push_back(m);
    }
    return run;
}

TEST(RunResult, FinalsReadLastRound) {
    const RunResult run = make_run({0.2, 0.5, 0.7});
    EXPECT_DOUBLE_EQ(run.final_accuracy(), 0.7);
    EXPECT_NEAR(run.final_loss(), 0.3, 1e-12);
}

TEST(RunResult, EmptyRunThrows) {
    const RunResult run;
    EXPECT_THROW(run.final_accuracy(), std::logic_error);
    EXPECT_THROW(run.final_loss(), std::logic_error);
}

TEST(RunResult, RoundsToAccuracyFindsFirstCrossing) {
    const RunResult run = make_run({0.2, 0.5, 0.7, 0.6, 0.8});
    EXPECT_EQ(run.rounds_to_accuracy(0.5).value(), 2u);
    EXPECT_EQ(run.rounds_to_accuracy(0.65).value(), 3u);
    EXPECT_EQ(run.rounds_to_accuracy(0.8).value(), 5u);
    EXPECT_FALSE(run.rounds_to_accuracy(0.9).has_value());
}

TEST(RunResult, SecondsToAccuracyAccumulates) {
    const RunResult run = make_run({0.2, 0.5, 0.7}, {10.0, 20.0, 30.0});
    EXPECT_DOUBLE_EQ(run.seconds_to_accuracy(0.5).value(), 30.0);
    EXPECT_DOUBLE_EQ(run.seconds_to_accuracy(0.7).value(), 60.0);
    EXPECT_FALSE(run.seconds_to_accuracy(0.99).has_value());
    EXPECT_DOUBLE_EQ(run.total_seconds(), 60.0);
}

} // namespace
} // namespace fmore::fl
