#include <gtest/gtest.h>

#include "fmore/fl/fedavg.hpp"

namespace fmore::fl {
namespace {

TEST(FedAvg, EqualWeightsIsMean) {
    const std::vector<std::vector<float>> params{{1.0F, 2.0F}, {3.0F, 4.0F}};
    const auto avg = federated_average(params, {1.0, 1.0});
    EXPECT_FLOAT_EQ(avg[0], 2.0F);
    EXPECT_FLOAT_EQ(avg[1], 3.0F);
}

TEST(FedAvg, WeightsByDataSize) {
    // Paper Eq. 3: w = sum D_i w_i / sum D_i.
    const std::vector<std::vector<float>> params{{0.0F}, {10.0F}};
    const auto avg = federated_average(params, {3.0, 1.0});
    EXPECT_FLOAT_EQ(avg[0], 2.5F);
}

TEST(FedAvg, SingleClientIsIdentity) {
    const std::vector<std::vector<float>> params{{5.0F, -1.0F, 2.0F}};
    const auto avg = federated_average(params, {42.0});
    EXPECT_EQ(avg, params[0]);
}

TEST(FedAvg, InvariantToWeightScale) {
    const std::vector<std::vector<float>> params{{1.0F}, {2.0F}, {3.0F}};
    const auto a = federated_average(params, {1.0, 2.0, 3.0});
    const auto b = federated_average(params, {10.0, 20.0, 30.0});
    EXPECT_NEAR(a[0], b[0], 1e-6);
}

TEST(FedAvg, RejectsBadInput) {
    EXPECT_THROW(federated_average({}, {}), std::invalid_argument);
    EXPECT_THROW(federated_average({{1.0F}}, {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(federated_average({{1.0F}, {1.0F, 2.0F}}, {1.0, 1.0}),
                 std::invalid_argument);
    EXPECT_THROW(federated_average({{1.0F}}, {0.0}), std::invalid_argument);
    EXPECT_THROW(federated_average({{1.0F}}, {-1.0}), std::invalid_argument);
}

TEST(FedAvg, AccumulatesInDoublePrecision) {
    // Many small-weight clients must not lose mass to float rounding.
    std::vector<std::vector<float>> params(1000, {1.0F});
    std::vector<double> weights(1000, 1.0);
    const auto avg = federated_average(params, weights);
    EXPECT_NEAR(avg[0], 1.0F, 1e-6);
}

} // namespace
} // namespace fmore::fl
