#include <gtest/gtest.h>

#include <set>

#include "fmore/fl/selection.hpp"

namespace fmore::fl {
namespace {

TEST(RandomSelector, PicksKDistinctClients) {
    RandomSelector selector(100);
    stats::Rng rng(1);
    const auto record = selector.select(1, 20, rng);
    EXPECT_EQ(record.selected.size(), 20u);
    std::set<std::size_t> unique;
    for (const auto& sel : record.selected) {
        EXPECT_LT(sel.client, 100u);
        unique.insert(sel.client);
        EXPECT_FALSE(sel.train_samples.has_value());
    }
    EXPECT_EQ(unique.size(), 20u);
}

TEST(RandomSelector, UniformOverRounds) {
    RandomSelector selector(10);
    stats::Rng rng(2);
    std::vector<int> counts(10, 0);
    constexpr int rounds = 5000;
    for (int r = 0; r < rounds; ++r) {
        for (const auto& sel : selector.select(r, 3, rng).selected) ++counts[sel.client];
    }
    for (const int c : counts) {
        EXPECT_NEAR(static_cast<double>(c) / rounds, 0.3, 0.03);
    }
}

TEST(RandomSelector, CapsAtPopulation) {
    RandomSelector selector(5);
    stats::Rng rng(3);
    EXPECT_EQ(selector.select(1, 10, rng).selected.size(), 5u);
    EXPECT_THROW(RandomSelector(0), std::invalid_argument);
}

TEST(FixedSelector, SameSetEveryRound) {
    stats::Rng init(4);
    FixedSelector selector(50, 8, init);
    stats::Rng rng(5);
    const auto first = selector.select(1, 8, rng);
    for (int r = 2; r <= 10; ++r) {
        const auto record = selector.select(r, 8, rng);
        ASSERT_EQ(record.selected.size(), first.selected.size());
        for (std::size_t i = 0; i < record.selected.size(); ++i) {
            EXPECT_EQ(record.selected[i].client, first.selected[i].client);
        }
    }
}

TEST(FixedSelector, ExplicitSet) {
    FixedSelector selector({3, 1, 4});
    stats::Rng rng(6);
    const auto record = selector.select(1, 3, rng);
    EXPECT_EQ(record.selected[0].client, 3u);
    EXPECT_EQ(record.selected[1].client, 1u);
    EXPECT_EQ(record.selected[2].client, 4u);
    // Asking for fewer winners truncates.
    EXPECT_EQ(selector.select(2, 2, rng).selected.size(), 2u);
    EXPECT_THROW(FixedSelector(std::vector<std::size_t>{}), std::invalid_argument);
}

TEST(Selectors, NamesMatchPaper) {
    RandomSelector r(10);
    stats::Rng init(7);
    FixedSelector f(10, 2, init);
    EXPECT_EQ(r.name(), "RandFL");
    EXPECT_EQ(f.name(), "FixFL");
}

} // namespace
} // namespace fmore::fl
