// Parallel-round determinism suite: the intra-round parallelism of
// fl::Coordinator (K client trainings + chunked evaluation on the shared
// util::ThreadPool) must leave every round metric bit-identical for any
// thread count — the same guarantee the trial runner gives across trials.

#include <gtest/gtest.h>

#include "fmore/fl/coordinator.hpp"
#include "fmore/fl/selection.hpp"
#include "fmore/ml/model_zoo.hpp"
#include "fmore/ml/synthetic.hpp"
#include "fmore/util/thread_pool.hpp"

namespace fmore::fl {
namespace {

class ParallelRoundTest : public ::testing::Test {
protected:
    ParallelRoundTest() {
        stats::Rng rng(21);
        ml::ImageDatasetSpec spec;
        spec.samples = 700;
        auto pool = ml::make_synthetic_images(spec, rng);
        const std::size_t vol = pool.sample_volume();
        train_.sample_shape = pool.sample_shape;
        train_.num_classes = pool.num_classes;
        train_.features.assign(pool.features.begin(), pool.features.begin() + 600 * vol);
        train_.labels.assign(pool.labels.begin(), pool.labels.begin() + 600);
        test_.sample_shape = pool.sample_shape;
        test_.num_classes = pool.num_classes;
        test_.features.assign(pool.features.begin() + 600 * vol, pool.features.end());
        test_.labels.assign(pool.labels.begin() + 600, pool.labels.end());

        stats::Rng prng(22);
        shards_ = ml::partition_iid(train_, 12, prng);
    }

    /// One full run at the given intra-round worker count. The CNN includes
    /// Dropout, so per-client RNG streams are exercised, and the capping
    /// selector exercises the contracted-volume subsampling draws.
    [[nodiscard]] RunResult run_with_threads(std::size_t threads,
                                             bool cap_samples) const {
        ml::Model model = ml::make_cnn(ml::ImageSpec{1, 12, 12, 10}, 77);
        CoordinatorConfig cc;
        cc.rounds = 3;
        cc.winners_per_round = 6;
        cc.batch_size = 16;
        cc.learning_rate = 0.08;
        cc.round_threads = threads;
        Coordinator coordinator(model, train_, test_, shards_, cc);
        stats::Rng rng(5);
        if (cap_samples) {
            class CappingSelector final : public ClientSelector {
            public:
                SelectionRecord select(std::size_t, std::size_t k,
                                       stats::Rng&) override {
                    SelectionRecord record;
                    for (std::size_t i = 0; i < k; ++i) {
                        record.selected.push_back(
                            SelectedClient{i, 1.0 + static_cast<double>(i), 2.0, 20});
                    }
                    return record;
                }
                [[nodiscard]] std::string name() const override { return "capping"; }
            };
            CappingSelector selector;
            return coordinator.run(selector, rng);
        }
        RandomSelector selector(12);
        return coordinator.run(selector, rng);
    }

    ml::Dataset train_;
    ml::Dataset test_;
    std::vector<ml::ClientShard> shards_;
};

void expect_bit_identical(const RunResult& a, const RunResult& b,
                          std::size_t threads) {
    ASSERT_EQ(a.rounds.size(), b.rounds.size());
    for (std::size_t r = 0; r < a.rounds.size(); ++r) {
        SCOPED_TRACE("round " + std::to_string(r + 1) + ", threads "
                     + std::to_string(threads));
        EXPECT_EQ(a.rounds[r].test_accuracy, b.rounds[r].test_accuracy);
        EXPECT_EQ(a.rounds[r].test_loss, b.rounds[r].test_loss);
        EXPECT_EQ(a.rounds[r].train_loss, b.rounds[r].train_loss);
        EXPECT_EQ(a.rounds[r].mean_winner_payment, b.rounds[r].mean_winner_payment);
        EXPECT_EQ(a.rounds[r].mean_winner_score, b.rounds[r].mean_winner_score);
    }
}

TEST_F(ParallelRoundTest, MetricsBitIdenticalAcrossThreadCounts) {
    const RunResult serial = run_with_threads(1, /*cap_samples=*/false);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
        const RunResult parallel = run_with_threads(threads, false);
        expect_bit_identical(serial, parallel, threads);
    }
}

TEST_F(ParallelRoundTest, ContractedVolumePathBitIdenticalAcrossThreadCounts) {
    const RunResult serial = run_with_threads(1, /*cap_samples=*/true);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
        const RunResult parallel = run_with_threads(threads, true);
        expect_bit_identical(serial, parallel, threads);
    }
}

TEST_F(ParallelRoundTest, RepeatedParallelRunsAreDeterministic) {
    const RunResult first = run_with_threads(8, false);
    const RunResult second = run_with_threads(8, false);
    expect_bit_identical(first, second, 8);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
    util::ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(100);
    for (auto& h : hits) h = 0;
    pool.parallel_for(hits.size(), 3, [&](std::size_t, std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WorkerSlotsAreDenseAndDistinct) {
    util::ThreadPool pool(4);
    std::vector<std::atomic<int>> slot_seen(5);
    for (auto& s : slot_seen) s = 0;
    pool.parallel_for(64, 4, [&](std::size_t slot, std::size_t) {
        ASSERT_LT(slot, slot_seen.size());
        slot_seen[slot].fetch_add(1);
    });
    // Every index ran exactly once, in some dense slot. (The caller drives
    // slot 0 but is not guaranteed to CLAIM an index — on a busy machine
    // the pool workers can drain all 64 first — so per-slot counts are
    // scheduling-dependent; only the total is deterministic.)
    int total = 0;
    for (const auto& s : slot_seen) total += s.load();
    EXPECT_EQ(total, 64);
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
    util::ThreadPool pool(2);
    EXPECT_THROW(pool.parallel_for(32, 2,
                                   [](std::size_t, std::size_t i) {
                                       if (i == 7) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
}

TEST(ThreadPoolTest, ZeroHelpersRunsInline) {
    util::ThreadPool pool(0);
    std::vector<int> order;
    pool.parallel_for(5, 0, [&](std::size_t slot, std::size_t i) {
        EXPECT_EQ(slot, 0u);
        order.push_back(static_cast<int>(i));
    });
    ASSERT_EQ(order.size(), 5u);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadBudgetTest, LeaseClaimsAndReleases) {
    util::ThreadBudget& budget = util::ThreadBudget::instance();
    const std::size_t before = budget.claimed();
    {
        const util::ThreadLease lease(2, /*exact=*/true);
        EXPECT_EQ(lease.granted(), 2u);
        EXPECT_EQ(budget.claimed(), before + 2);
    }
    EXPECT_EQ(budget.claimed(), before);
}

TEST(ThreadBudgetTest, ResolveRoundThreadsHonoursExplicitRequest) {
    EXPECT_EQ(util::resolve_round_threads(4, 10), 4u);
    EXPECT_EQ(util::resolve_round_threads(16, 10), 10u); // capped at the work
    EXPECT_EQ(util::resolve_round_threads(4, 1), 1u);    // nothing to split
    EXPECT_GE(util::resolve_round_threads(0, 10), 1u);   // auto is always >= 1
}

} // namespace
} // namespace fmore::fl
