#include <gtest/gtest.h>

#include "fmore/fl/coordinator.hpp"
#include "fmore/fl/selection.hpp"
#include "fmore/ml/model_zoo.hpp"
#include "fmore/ml/synthetic.hpp"

namespace fmore::fl {
namespace {

/// Small shared fixture: 600-sample image task split over 10 clients.
class CoordinatorTest : public ::testing::Test {
protected:
    CoordinatorTest() {
        stats::Rng rng(1);
        ml::ImageDatasetSpec spec;
        spec.samples = 700;
        auto pool = ml::make_synthetic_images(spec, rng);
        const std::size_t vol = pool.sample_volume();
        train_.sample_shape = pool.sample_shape;
        train_.num_classes = pool.num_classes;
        train_.features.assign(pool.features.begin(), pool.features.begin() + 600 * vol);
        train_.labels.assign(pool.labels.begin(), pool.labels.begin() + 600);
        test_.sample_shape = pool.sample_shape;
        test_.num_classes = pool.num_classes;
        test_.features.assign(pool.features.begin() + 600 * vol, pool.features.end());
        test_.labels.assign(pool.labels.begin() + 600, pool.labels.end());

        stats::Rng prng(2);
        shards_ = ml::partition_iid(train_, 10, prng);
    }

    CoordinatorConfig config(std::size_t rounds, std::size_t k) const {
        CoordinatorConfig cc;
        cc.rounds = rounds;
        cc.winners_per_round = k;
        cc.local_epochs = 1;
        cc.batch_size = 16;
        cc.learning_rate = 0.08;
        return cc;
    }

    ml::Dataset train_;
    ml::Dataset test_;
    std::vector<ml::ClientShard> shards_;
};

TEST_F(CoordinatorTest, RunProducesPerRoundMetrics) {
    ml::Model model = ml::make_mlp(ml::ImageSpec{1, 12, 12, 10}, 3);
    Coordinator coordinator(model, train_, test_, shards_, config(4, 4));
    RandomSelector selector(10);
    stats::Rng rng(4);
    const RunResult result = coordinator.run(selector, rng);
    ASSERT_EQ(result.rounds.size(), 4u);
    for (std::size_t r = 0; r < 4; ++r) {
        EXPECT_EQ(result.rounds[r].round, r + 1);
        EXPECT_GE(result.rounds[r].test_accuracy, 0.0);
        EXPECT_LE(result.rounds[r].test_accuracy, 1.0);
        EXPECT_GT(result.rounds[r].test_loss, 0.0);
        EXPECT_EQ(result.rounds[r].selection.selected.size(), 4u);
    }
}

TEST_F(CoordinatorTest, LearningActuallyHappens) {
    ml::Model model = ml::make_mlp(ml::ImageSpec{1, 12, 12, 10}, 5);
    Coordinator coordinator(model, train_, test_, shards_, config(10, 6));
    RandomSelector selector(10);
    stats::Rng rng(6);
    const RunResult result = coordinator.run(selector, rng);
    EXPECT_GT(result.final_accuracy(), 0.5);
    EXPECT_LT(result.rounds.back().test_loss, result.rounds.front().test_loss);
}

TEST_F(CoordinatorTest, TrainSampleCapIsHonoured) {
    // A selector that caps training at 5 samples per winner: FedAvg weights
    // and the time-model sample counts must reflect the cap.
    class CappingSelector final : public ClientSelector {
    public:
        SelectionRecord select(std::size_t, std::size_t k, stats::Rng&) override {
            SelectionRecord record;
            for (std::size_t i = 0; i < k; ++i) {
                record.selected.push_back(SelectedClient{i, 0.0, 0.0, 5});
            }
            return record;
        }
        [[nodiscard]] std::string name() const override { return "capping"; }
    };

    ml::Model model = ml::make_mlp(ml::ImageSpec{1, 12, 12, 10}, 7);
    Coordinator coordinator(model, train_, test_, shards_, config(1, 3));
    CappingSelector selector;
    stats::Rng rng(8);
    std::vector<std::size_t> observed;
    const RoundTimeModel time_model =
        [&observed](const SelectionRecord&, const std::vector<std::size_t>& samples) {
            observed = samples;
            return 1.0;
        };
    const RunResult result = coordinator.run(selector, rng, time_model);
    ASSERT_EQ(observed.size(), 3u);
    for (const std::size_t s : observed) EXPECT_EQ(s, 5u);
    EXPECT_DOUBLE_EQ(result.rounds[0].round_seconds, 1.0);
}

TEST_F(CoordinatorTest, TimeModelOptional) {
    ml::Model model = ml::make_mlp(ml::ImageSpec{1, 12, 12, 10}, 9);
    Coordinator coordinator(model, train_, test_, shards_, config(2, 2));
    RandomSelector selector(10);
    stats::Rng rng(10);
    const RunResult result = coordinator.run(selector, rng);
    EXPECT_DOUBLE_EQ(result.rounds[0].round_seconds, 0.0);
    EXPECT_DOUBLE_EQ(result.total_seconds(), 0.0);
}

TEST_F(CoordinatorTest, RejectsInvalidConstruction) {
    ml::Model model = ml::make_mlp(ml::ImageSpec{1, 12, 12, 10}, 11);
    EXPECT_THROW(Coordinator(model, train_, test_, {}, config(2, 2)),
                 std::invalid_argument);
    CoordinatorConfig bad = config(0, 2);
    EXPECT_THROW(Coordinator(model, train_, test_, shards_, bad), std::invalid_argument);
    bad = config(2, 0);
    EXPECT_THROW(Coordinator(model, train_, test_, shards_, bad), std::invalid_argument);
}

TEST_F(CoordinatorTest, SelectorPickingUnknownClientIsAnError) {
    class RogueSelector final : public ClientSelector {
    public:
        SelectionRecord select(std::size_t, std::size_t, stats::Rng&) override {
            SelectionRecord record;
            record.selected.push_back(SelectedClient{9999, 0.0, 0.0, std::nullopt});
            return record;
        }
        [[nodiscard]] std::string name() const override { return "rogue"; }
    };
    ml::Model model = ml::make_mlp(ml::ImageSpec{1, 12, 12, 10}, 13);
    Coordinator coordinator(model, train_, test_, shards_, config(1, 1));
    RogueSelector selector;
    stats::Rng rng(14);
    EXPECT_THROW(coordinator.run(selector, rng), std::out_of_range);
}

TEST_F(CoordinatorTest, EvalCapLimitsEvaluationSet) {
    ml::Model model = ml::make_mlp(ml::ImageSpec{1, 12, 12, 10}, 15);
    CoordinatorConfig cc = config(1, 2);
    cc.eval_cap = 10;
    Coordinator coordinator(model, train_, test_, shards_, cc);
    RandomSelector selector(10);
    stats::Rng rng(16);
    const RunResult result = coordinator.run(selector, rng);
    // Accuracy over 10 samples is a multiple of 0.1.
    const double acc = result.rounds[0].test_accuracy;
    EXPECT_NEAR(acc * 10.0, std::round(acc * 10.0), 1e-9);
}

} // namespace
} // namespace fmore::fl
