// The async/semi-sync coordinator: equivalence with the synchronous
// barrier when nothing straggles, bit-identical metrics across round-thread
// counts, staleness-weighted merging of late updates, deadline rounds and
// dropout handling — the determinism contract of
// docs/ARCHITECTURE.md "The async round model".

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "fmore/fl/async_coordinator.hpp"
#include "fmore/fl/selection.hpp"
#include "fmore/ml/model_zoo.hpp"
#include "fmore/ml/synthetic.hpp"

namespace fmore::fl {
namespace {

class AsyncCoordinatorTest : public ::testing::Test {
protected:
    AsyncCoordinatorTest() {
        stats::Rng rng(31);
        ml::ImageDatasetSpec spec;
        spec.samples = 700;
        auto pool = ml::make_synthetic_images(spec, rng);
        const std::size_t vol = pool.sample_volume();
        train_.sample_shape = pool.sample_shape;
        train_.num_classes = pool.num_classes;
        train_.features.assign(pool.features.begin(), pool.features.begin() + 600 * vol);
        train_.labels.assign(pool.labels.begin(), pool.labels.begin() + 600);
        test_.sample_shape = pool.sample_shape;
        test_.num_classes = pool.num_classes;
        test_.features.assign(pool.features.begin() + 600 * vol, pool.features.end());
        test_.labels.assign(pool.labels.begin() + 600, pool.labels.end());

        stats::Rng prng(32);
        shards_ = ml::partition_iid(train_, 12, prng);
    }

    [[nodiscard]] CoordinatorConfig coordinator_config(std::size_t threads) const {
        CoordinatorConfig cc;
        cc.rounds = 4;
        cc.winners_per_round = 6;
        cc.batch_size = 16;
        cc.learning_rate = 0.08;
        cc.round_threads = threads;
        return cc;
    }

    /// Heterogeneous but deterministic per-client latency (client 0 is the
    /// fastest, client 11 a 4.3x straggler); never consumes the RNG.
    [[nodiscard]] static ClientTimeModel spread_clock() {
        return [](std::size_t client, std::size_t samples, stats::Rng&) {
            DispatchTiming t;
            t.seconds = (1.0 + 0.3 * static_cast<double>(client))
                        * (0.5 + 0.01 * static_cast<double>(samples));
            return t;
        };
    }

    /// Every client takes the same per-sample time — no stragglers.
    [[nodiscard]] static ClientTimeModel flat_clock() {
        return [](std::size_t, std::size_t samples, stats::Rng&) {
            DispatchTiming t;
            t.seconds = 0.5 + 0.01 * static_cast<double>(samples);
            return t;
        };
    }

    [[nodiscard]] RunResult run_async_with(AsyncCoordinatorConfig ac,
                                           const ClientTimeModel& clock,
                                           std::size_t threads = 1) {
        ml::Model model = ml::make_cnn(ml::ImageSpec{1, 12, 12, 10}, 77);
        AsyncCoordinator coordinator(model, train_, test_, shards_,
                                     coordinator_config(threads), ac);
        RandomSelector selector(12);
        stats::Rng rng(5);
        return coordinator.run_async(selector, rng, clock);
    }

    ml::Dataset train_;
    ml::Dataset test_;
    std::vector<ml::ClientShard> shards_;
};

void expect_bit_identical(const RunResult& a, const RunResult& b) {
    ASSERT_EQ(a.rounds.size(), b.rounds.size());
    for (std::size_t r = 0; r < a.rounds.size(); ++r) {
        SCOPED_TRACE("round " + std::to_string(r + 1));
        EXPECT_EQ(a.rounds[r].test_accuracy, b.rounds[r].test_accuracy);
        EXPECT_EQ(a.rounds[r].test_loss, b.rounds[r].test_loss);
        EXPECT_EQ(a.rounds[r].train_loss, b.rounds[r].train_loss);
        EXPECT_EQ(a.rounds[r].mean_winner_payment, b.rounds[r].mean_winner_payment);
        EXPECT_EQ(a.rounds[r].mean_winner_score, b.rounds[r].mean_winner_score);
        EXPECT_EQ(a.rounds[r].round_seconds, b.rounds[r].round_seconds);
        EXPECT_EQ(a.rounds[r].aggregated_updates, b.rounds[r].aggregated_updates);
        EXPECT_EQ(a.rounds[r].mean_staleness, b.rounds[r].mean_staleness);
    }
}

// ---------------------------------------------------------------------------
// Equivalence with the synchronous barrier
// ---------------------------------------------------------------------------

TEST_F(AsyncCoordinatorTest, FullBarrierSemiSyncMatchesSyncBitIdentically) {
    // min_updates = 0 (wait for everyone), heterogeneous latency, no
    // dropouts: the aggregation set, weights (s = 0 so 1/(1+s)^alpha == 1)
    // and trigger time coincide with the synchronous round exactly.
    const double overhead = 1.25;
    const ClientTimeModel clock = spread_clock();

    ml::Model sync_model = ml::make_cnn(ml::ImageSpec{1, 12, 12, 10}, 77);
    Coordinator sync(sync_model, train_, test_, shards_, coordinator_config(1));
    RandomSelector sync_selector(12);
    stats::Rng sync_rng(5);
    stats::Rng scratch(0); // the deterministic clock never touches it
    const RoundTimeModel sync_time = [&](const SelectionRecord& selection,
                                         const std::vector<std::size_t>& samples) {
        double slowest = 0.0;
        for (std::size_t i = 0; i < selection.selected.size(); ++i) {
            slowest = std::max(
                slowest, clock(selection.selected[i].client, samples[i], scratch).seconds);
        }
        return slowest + overhead;
    };
    const RunResult sync_run = sync.run(sync_selector, sync_rng, sync_time);

    for (const RoundMode mode : {RoundMode::semi_sync, RoundMode::async}) {
        AsyncCoordinatorConfig ac;
        ac.mode = mode;
        ac.min_updates = 0;
        ac.round_overhead_s = overhead;
        const RunResult async_run = run_async_with(ac, clock);
        expect_bit_identical(sync_run, async_run);
        for (const RoundMetrics& m : async_run.rounds) {
            EXPECT_EQ(m.aggregated_updates, 6u);
            EXPECT_EQ(m.mean_staleness, 0.0);
        }
    }
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST_F(AsyncCoordinatorTest, MetricsBitIdenticalAcrossThreadCounts) {
    AsyncCoordinatorConfig ac;
    ac.mode = RoundMode::async;
    ac.min_updates = 3; // half the dispatches straggle into later rounds
    const RunResult serial = run_async_with(ac, spread_clock(), 1);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        expect_bit_identical(serial, run_async_with(ac, spread_clock(), threads));
    }
}

TEST_F(AsyncCoordinatorTest, RepeatedRunsAreDeterministic) {
    AsyncCoordinatorConfig ac;
    ac.mode = RoundMode::async;
    ac.min_updates = 2;
    expect_bit_identical(run_async_with(ac, spread_clock(), 8),
                         run_async_with(ac, spread_clock(), 8));
}

// ---------------------------------------------------------------------------
// Staleness semantics
// ---------------------------------------------------------------------------

TEST_F(AsyncCoordinatorTest, LateUpdatesMergeWithStaleness) {
    AsyncCoordinatorConfig ac;
    ac.mode = RoundMode::async;
    ac.min_updates = 2; // aggressive: most dispatches carry over
    const RunResult run = run_async_with(ac, spread_clock());

    // Round 1 can only merge fresh updates; later rounds see carried ones.
    EXPECT_EQ(run.rounds.front().mean_staleness, 0.0);
    double max_staleness = 0.0;
    std::size_t max_merged = 0;
    for (const RoundMetrics& m : run.rounds) {
        EXPECT_GE(m.aggregated_updates, 2u);
        max_staleness = std::max(max_staleness, m.mean_staleness);
        max_merged = std::max(max_merged, m.aggregated_updates);
    }
    EXPECT_GT(max_staleness, 0.0) << "no late update ever merged";
    EXPECT_GT(max_merged, 2u) << "carried updates never joined an aggregation";
}

TEST_F(AsyncCoordinatorTest, MaxStalenessDiscardsAncientUpdates) {
    AsyncCoordinatorConfig ac;
    ac.mode = RoundMode::async;
    ac.min_updates = 2;
    ac.max_staleness = 1;
    const RunResult run = run_async_with(ac, spread_clock());
    for (const RoundMetrics& m : run.rounds) {
        EXPECT_LE(m.mean_staleness, 1.0);
    }
}

TEST_F(AsyncCoordinatorTest, StalenessAlphaZeroKeepsFullWeight) {
    // alpha only reweights stale merges, so the participating sets (and
    // merged counts) match; the resulting models differ once something
    // stale merges.
    AsyncCoordinatorConfig ac;
    ac.mode = RoundMode::async;
    ac.min_updates = 2;
    ac.staleness_alpha = 0.0;
    const RunResult full = run_async_with(ac, spread_clock());
    ac.staleness_alpha = 2.0;
    const RunResult decayed = run_async_with(ac, spread_clock());
    ASSERT_EQ(full.rounds.size(), decayed.rounds.size());
    bool diverged = false;
    for (std::size_t r = 0; r < full.rounds.size(); ++r) {
        EXPECT_EQ(full.rounds[r].aggregated_updates, decayed.rounds[r].aggregated_updates);
        EXPECT_EQ(full.rounds[r].round_seconds, decayed.rounds[r].round_seconds);
        if (full.rounds[r].test_loss != decayed.rounds[r].test_loss) diverged = true;
    }
    EXPECT_TRUE(diverged) << "staleness_alpha had no effect on any round";
}

// ---------------------------------------------------------------------------
// Deadlines and dropouts
// ---------------------------------------------------------------------------

TEST_F(AsyncCoordinatorTest, SemiSyncDeadlineCutsTheRoundShort) {
    AsyncCoordinatorConfig ac;
    ac.mode = RoundMode::semi_sync;
    ac.min_updates = 0; // would wait for everyone...
    ac.round_deadline_s = 2.0; // ...but the deadline fires first
    ac.round_overhead_s = 0.5;
    const RunResult run = run_async_with(ac, spread_clock());
    std::size_t thinnest = 6;
    for (const RoundMetrics& m : run.rounds) {
        // The deadline caps the round — except for the stretch-to-first-
        // arrival rule when nothing landed by then. With spread_clock the
        // earliest selected client (id <= 6, since 6 of 12 are picked)
        // arrives by (1 + 0.3*6) * 1.0 = 2.8 s, so that is the hard bound.
        EXPECT_LE(m.round_seconds, 2.8 + 0.5 + 1e-12);
        EXPECT_GE(m.aggregated_updates, 1u); // never aggregates thin air
        thinnest = std::min(thinnest, m.aggregated_updates);
    }
    // A fast selection can beat the deadline wholesale (and carried updates
    // can push a round past K), but across rounds some straggler must have
    // missed the cut.
    EXPECT_LT(thinnest, 6u);
}

TEST_F(AsyncCoordinatorTest, AllDroppedSemiSyncRoundStillHoldsItsDeadline) {
    // Round 2 onward every fresh dispatch drops; round 1's stragglers carry
    // over and land early. "min_updates OR deadline, whichever first" must
    // still govern: with min_updates unreachable, the round closes at the
    // deadline, not at the first carried arrival.
    AsyncCoordinatorConfig ac;
    ac.mode = RoundMode::semi_sync;
    ac.min_updates = 2;
    ac.round_deadline_s = 5.0;
    ac.round_overhead_s = 0.0;
    std::size_t dispatches = 0;
    const ClientTimeModel clock = [&dispatches](std::size_t, std::size_t,
                                                stats::Rng&) mutable {
        DispatchTiming t;
        if (dispatches < 6) {
            // Round 1: client slots arrive at 1, 3, 5, 7, 9, 11 seconds.
            t.seconds = 1.0 + 2.0 * static_cast<double>(dispatches);
        } else {
            t.dropped = true;
        }
        ++dispatches;
        return t;
    };
    const RunResult run = run_async_with(ac, clock);
    ASSERT_GE(run.rounds.size(), 2u);
    // Round 1: min_updates = 2 met at the second arrival (t = 3).
    EXPECT_EQ(run.rounds[0].round_seconds, 3.0);
    // Round 2: no fresh arrivals possible; carried updates land at t = 2
    // and 4 (< deadline) but the round still runs to the 5 s deadline and
    // merges both.
    EXPECT_EQ(run.rounds[1].round_seconds, 5.0);
    EXPECT_EQ(run.rounds[1].aggregated_updates, 2u);
    EXPECT_EQ(run.rounds[1].mean_staleness, 1.0);
}

TEST_F(AsyncCoordinatorTest, PartialDropoutSemiSyncHoldsTheRoundToItsDeadline) {
    // K = 6, min_updates = 5, but only 4 dispatches per round survive: the
    // server cannot know the other two died, so the round runs to the
    // deadline (merging the 4 that made it) instead of closing at the 4th
    // arrival.
    AsyncCoordinatorConfig ac;
    ac.mode = RoundMode::semi_sync;
    ac.min_updates = 5;
    ac.round_deadline_s = 30.0;
    ac.round_overhead_s = 0.0;
    const ClientTimeModel flaky = [](std::size_t client, std::size_t, stats::Rng&) {
        DispatchTiming t;
        t.seconds = 2.0 + static_cast<double>(client % 4); // all land by t = 5
        t.dropped = client % 3 == 0; // 0, 3, 6, 9 never report
        return t;
    };
    const RunResult run = run_async_with(ac, flaky);
    bool deadline_round = false;
    for (const RoundMetrics& m : run.rounds) {
        EXPECT_GE(m.aggregated_updates, 1u);
        if (m.aggregated_updates >= 5) {
            // Enough survivors: min_updates fired before the deadline.
            EXPECT_LE(m.round_seconds, 5.0);
        } else {
            // Dropouts left min_updates unreachable — the server cannot
            // know and holds the round to its deadline.
            EXPECT_EQ(m.round_seconds, 30.0) << "round closed before its deadline";
            deadline_round = true;
        }
    }
    EXPECT_TRUE(deadline_round) << "seed never produced a dropout-starved round";
}

TEST_F(AsyncCoordinatorTest, TotalDropoutRoundLeavesGlobalUnchanged) {
    AsyncCoordinatorConfig ac;
    ac.mode = RoundMode::async;
    ac.min_updates = 1;
    const ClientTimeModel never = [](std::size_t, std::size_t, stats::Rng&) {
        DispatchTiming t;
        t.dropped = true;
        return t;
    };
    const RunResult run = run_async_with(ac, never);
    ASSERT_EQ(run.rounds.size(), 4u);
    for (const RoundMetrics& m : run.rounds) {
        EXPECT_EQ(m.aggregated_updates, 0u);
        EXPECT_EQ(m.test_accuracy, run.rounds.front().test_accuracy)
            << "nothing merged, yet the global moved";
    }
}

TEST_F(AsyncCoordinatorTest, PartialDropoutsStillAggregate) {
    AsyncCoordinatorConfig ac;
    ac.mode = RoundMode::async;
    ac.min_updates = 2;
    const ClientTimeModel flaky = [](std::size_t client, std::size_t samples,
                                     stats::Rng&) {
        DispatchTiming t;
        t.seconds = 1.0 + 0.01 * static_cast<double>(samples);
        t.dropped = client % 3 == 0; // clients 0, 3, 6, 9 never report
        return t;
    };
    const RunResult run = run_async_with(ac, flaky);
    for (const RoundMetrics& m : run.rounds) {
        EXPECT_GE(m.aggregated_updates, 1u);
    }
}

// ---------------------------------------------------------------------------
// Configuration validation
// ---------------------------------------------------------------------------

TEST_F(AsyncCoordinatorTest, RejectsBadConfigs) {
    ml::Model model = ml::make_cnn(ml::ImageSpec{1, 12, 12, 10}, 77);
    auto make = [&](AsyncCoordinatorConfig ac) {
        AsyncCoordinator coordinator(model, train_, test_, shards_,
                                     coordinator_config(1), ac);
    };
    AsyncCoordinatorConfig ac;
    ac.mode = RoundMode::sync;
    EXPECT_THROW(make(ac), std::invalid_argument);
    ac.mode = RoundMode::async;
    ac.min_updates = 7; // > K = 6
    EXPECT_THROW(make(ac), std::invalid_argument);
    ac.min_updates = 0;
    ac.round_deadline_s = 3.0; // deadlines are semi_sync-only
    EXPECT_THROW(make(ac), std::invalid_argument);
    ac.round_deadline_s = 0.0;
    ac.staleness_alpha = -1.0;
    EXPECT_THROW(make(ac), std::invalid_argument);
    ac.staleness_alpha = 0.5;
    EXPECT_NO_THROW(make(ac));

    AsyncCoordinatorConfig ok;
    ok.mode = RoundMode::semi_sync;
    AsyncCoordinator coordinator(model, train_, test_, shards_,
                                 coordinator_config(1), ok);
    RandomSelector selector(12);
    stats::Rng rng(5);
    EXPECT_THROW((void)coordinator.run_async(selector, rng, nullptr),
                 std::invalid_argument);
}

} // namespace
} // namespace fmore::fl
