// The adaptive quorum controller (fl/adaptive_quorum.hpp): the bounded
// control law that retunes `timing.min_updates` from close telemetry. The
// contract under test — adjust at most once per full window, integer steps
// clamped to [min_quorum, max_quorum], raise only with p99 slack against
// the deadline, and a schedule that is a PURE function of the observation
// sequence (byte-identical across replays).

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "fmore/fl/adaptive_quorum.hpp"

namespace fmore::fl {
namespace {

AdaptiveQuorumConfig base_config() {
    AdaptiveQuorumConfig cfg;
    cfg.initial = 10;
    cfg.max_quorum = 20;
    cfg.step = 4;
    cfg.window = 4;
    cfg.deadline_s = 1.0;
    return cfg;
}

/// `count` observations of one close reason at one close time.
void feed(AdaptiveQuorumController& ctl, std::size_t count,
          const std::string& reason, double close_s) {
    for (std::size_t i = 0; i < count; ++i) ctl.observe(reason, close_s);
}

TEST(AdaptiveQuorum, CtorRejectsUnusableConfigs) {
    auto with = [](auto mutate) {
        AdaptiveQuorumConfig cfg = base_config();
        mutate(cfg);
        return cfg;
    };
    EXPECT_THROW(AdaptiveQuorumController(
                     with([](auto& c) { c.initial = 0; })),
                 std::invalid_argument);
    EXPECT_THROW(AdaptiveQuorumController(
                     with([](auto& c) { c.window = 0; })),
                 std::invalid_argument);
    // Inverted clamp range, and an initial outside it.
    EXPECT_THROW(AdaptiveQuorumController(with([](auto& c) {
                     c.min_quorum = 8;
                     c.max_quorum = 4;
                     c.initial = 6;
                 })),
                 std::invalid_argument);
    EXPECT_THROW(AdaptiveQuorumController(with([](auto& c) {
                     c.min_quorum = 4;
                     c.initial = 2;
                 })),
                 std::invalid_argument);
    EXPECT_THROW(AdaptiveQuorumController(
                     with([](auto& c) { c.slack_ratio = 1.5; })),
                 std::invalid_argument);
    EXPECT_THROW(AdaptiveQuorumController(
                     with([](auto& c) { c.dominance = 0.0; })),
                 std::invalid_argument);
    EXPECT_THROW(AdaptiveQuorumController(
                     with([](auto& c) { c.deadline_s = -0.5; })),
                 std::invalid_argument);
}

TEST(AdaptiveQuorum, DefaultsDeriveStepAndCeiling) {
    AdaptiveQuorumConfig cfg;
    cfg.initial = 40;
    const AdaptiveQuorumController ctl(cfg);
    EXPECT_EQ(ctl.quorum(), 40u);
    // step 0 derives max(1, initial / 8); max_quorum 0 pins the ceiling at
    // the initial (the controller can only lower).
    EXPECT_EQ(ctl.config().step, 0u);  // config is kept verbatim...
    EXPECT_EQ(ctl.config().max_quorum, 40u);

    AdaptiveQuorumConfig tiny;
    tiny.initial = 3;
    tiny.window = 1;
    AdaptiveQuorumController small(tiny);
    small.observe("deadline", 1.0);
    EXPECT_EQ(small.quorum(), 2u);  // derived step = max(1, 3/8) = 1
}

TEST(AdaptiveQuorum, DeadlineDominanceStepsDownAndClampsAtTheFloor) {
    AdaptiveQuorumController ctl(base_config());
    feed(ctl, 4, "deadline", 1.0);
    EXPECT_EQ(ctl.quorum(), 6u);
    feed(ctl, 4, "deadline", 1.0);
    EXPECT_EQ(ctl.quorum(), 2u);
    // The next drop is truncated to the floor, and the floor holds.
    feed(ctl, 4, "deadline", 1.0);
    EXPECT_EQ(ctl.quorum(), 1u);
    feed(ctl, 4, "deadline", 1.0);
    EXPECT_EQ(ctl.quorum(), 1u);
}

TEST(AdaptiveQuorum, RaiseNeedsQuorumDominanceAndP99Slack) {
    // Comfortably early quorum closes: raise by one step per window,
    // truncated at the ceiling.
    AdaptiveQuorumController ctl(base_config());
    feed(ctl, 4, "quorum", 0.2);
    EXPECT_EQ(ctl.quorum(), 14u);
    feed(ctl, 4, "quorum", 0.2);
    EXPECT_EQ(ctl.quorum(), 18u);
    feed(ctl, 4, "quorum", 0.2);
    EXPECT_EQ(ctl.quorum(), 20u);
    feed(ctl, 4, "quorum", 0.2);
    EXPECT_EQ(ctl.quorum(), 20u);

    // Quorum closes WITHOUT slack (p99 past slack_ratio x deadline): hold.
    AdaptiveQuorumController tight(base_config());
    feed(tight, 4, "quorum", 0.9);
    EXPECT_EQ(tight.quorum(), 10u);
    // One late round in the window drags its p99 over the line too.
    feed(tight, 3, "quorum", 0.1);
    tight.observe("quorum", 0.95);
    EXPECT_EQ(tight.quorum(), 10u);

    // No deadline configured: no latency budget, the raise rule is off.
    AdaptiveQuorumConfig no_deadline = base_config();
    no_deadline.deadline_s = 0.0;
    AdaptiveQuorumController flat(no_deadline);
    feed(flat, 4, "quorum", 0.0);
    EXPECT_EQ(flat.quorum(), 10u);
}

TEST(AdaptiveQuorum, MixedAndExhaustedWindowsHold) {
    // Nothing dominant (dominance 0.75, both reasons at 0.5): hold.
    AdaptiveQuorumConfig cfg = base_config();
    cfg.dominance = 0.75;
    AdaptiveQuorumController ctl(cfg);
    feed(ctl, 2, "deadline", 1.0);
    feed(ctl, 2, "quorum", 0.2);
    EXPECT_EQ(ctl.quorum(), 10u);
    // Exhaustion closes fill the window but count toward neither trigger.
    feed(ctl, 4, "exhausted", 0.3);
    EXPECT_EQ(ctl.quorum(), 10u);
}

TEST(AdaptiveQuorum, AdjustsAtMostOncePerFullWindow) {
    AdaptiveQuorumController ctl(base_config());
    // A partial window never moves the quorum...
    feed(ctl, 3, "deadline", 1.0);
    EXPECT_EQ(ctl.quorum(), 10u);
    // ...the window-filling observation decides...
    ctl.observe("deadline", 1.0);
    EXPECT_EQ(ctl.quorum(), 6u);
    // ...and the window restarts empty: three more deadline closes are
    // again not enough, whatever came before.
    feed(ctl, 3, "deadline", 1.0);
    EXPECT_EQ(ctl.quorum(), 6u);
    ctl.observe("quorum", 0.2);
    EXPECT_EQ(ctl.quorum(), 2u);  // 3/4 deadline still dominates at 0.5
}

TEST(AdaptiveQuorum, ScheduleReplaysByteIdentical) {
    // A telemetry tape mixing all three reasons; two controllers fed the
    // same tape must emit the same schedule, entry for entry — and each
    // entry is the quorum AFTER folding that observation.
    const std::vector<std::pair<std::string, double>> tape = {
        {"deadline", 1.0}, {"quorum", 0.3},    {"deadline", 1.0},
        {"deadline", 1.0}, {"quorum", 0.2},    {"quorum", 0.15},
        {"quorum", 0.1},   {"quorum", 0.2},    {"exhausted", 0.8},
        {"deadline", 1.0}, {"deadline", 1.0},  {"deadline", 1.0},
    };
    AdaptiveQuorumController a(base_config());
    AdaptiveQuorumController b(base_config());
    for (const auto& [reason, sec] : tape) {
        a.observe(reason, sec);
        b.observe(reason, sec);
        EXPECT_EQ(a.quorum(), b.quorum());
        EXPECT_EQ(a.schedule().back(), a.quorum());
    }
    ASSERT_EQ(a.schedule().size(), tape.size());
    EXPECT_EQ(a.schedule(), b.schedule());
}

} // namespace
} // namespace fmore::fl
