// The full fl-layer pipeline driven by the auction selector, exercising the
// extension knobs end-to-end: psi acceptance, per-round budget, compliance
// blacklisting — all through fl::Coordinator rounds.

#include <gtest/gtest.h>

#include "fmore/core/simulation.hpp"

namespace fmore::core {
namespace {

SimulationConfig tiny() {
    SimulationConfig config;
    config.train_samples = 900;
    config.test_samples = 200;
    config.num_nodes = 20;
    config.winners = 5;
    config.rounds = 3;
    config.data_lo = 10;
    config.data_hi = 40;
    config.eval_cap = 100;
    return config;
}

TEST(AuctionPipeline, BudgetLimitsWinnersPerRound) {
    SimulationConfig config = tiny();
    // First find the unconstrained per-round spend.
    double spend = 0.0;
    {
        SimulationTrial probe(config, 0);
        const auto run = probe.run(Strategy::fmore);
        for (const auto& sel : run.rounds.front().selection.selected) {
            spend += sel.payment;
        }
    }
    config.budget = 0.5 * spend;
    SimulationTrial trial(config, 0);
    const auto run = trial.run(Strategy::fmore);
    for (const auto& round : run.rounds) {
        EXPECT_LT(round.selection.selected.size(), 5u);
        EXPECT_GE(round.selection.selected.size(), 1u);
        double round_spend = 0.0;
        for (const auto& sel : round.selection.selected) round_spend += sel.payment;
        EXPECT_LE(round_spend, config.budget + 1e-9);
    }
}

TEST(AuctionPipeline, GenerousBudgetChangesNothing) {
    SimulationConfig config = tiny();
    SimulationTrial base_trial(config, 0);
    const auto base = base_trial.run(Strategy::fmore);
    config.budget = 1e9;
    SimulationTrial rich_trial(config, 0);
    const auto rich = rich_trial.run(Strategy::fmore);
    ASSERT_EQ(base.rounds.size(), rich.rounds.size());
    for (std::size_t r = 0; r < base.rounds.size(); ++r) {
        EXPECT_EQ(base.rounds[r].selection.selected.size(),
                  rich.rounds[r].selection.selected.size());
        EXPECT_DOUBLE_EQ(base.rounds[r].test_accuracy, rich.rounds[r].test_accuracy);
    }
}

TEST(AuctionPipeline, PsiRunsProduceFullWinnerSets) {
    SimulationConfig config = tiny();
    config.psi = 0.4;
    SimulationTrial trial(config, 0);
    const auto run = trial.run(Strategy::psi_fmore);
    for (const auto& round : run.rounds) {
        EXPECT_EQ(round.selection.selected.size(), 5u);
    }
}

TEST(AuctionPipeline, ScoresByNodeAlignWithAllScores) {
    SimulationTrial trial(tiny(), 0);
    const auto run = trial.run(Strategy::fmore);
    for (const auto& round : run.rounds) {
        const auto& by_node = round.selection.scores_by_node;
        ASSERT_EQ(by_node.size(), 20u);
        std::vector<double> sorted = by_node;
        std::sort(sorted.begin(), sorted.end(), std::greater<double>());
        ASSERT_EQ(sorted.size(), round.selection.all_scores.size());
        for (std::size_t i = 0; i < sorted.size(); ++i) {
            EXPECT_NEAR(sorted[i], round.selection.all_scores[i], 1e-9);
        }
    }
}

} // namespace
} // namespace fmore::core
