#include <gtest/gtest.h>

#include <cmath>

#include "fmore/ml/tensor.hpp"

namespace fmore::ml {
namespace {

TEST(Tensor, ZeroInitialized) {
    const Tensor t({2, 3});
    EXPECT_EQ(t.size(), 6u);
    EXPECT_EQ(t.rank(), 2u);
    for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0F);
}

TEST(Tensor, ShapeAccessors) {
    const Tensor t({4, 1, 5});
    EXPECT_EQ(t.dim(0), 4u);
    EXPECT_EQ(t.dim(2), 5u);
    EXPECT_THROW(t.dim(3), std::out_of_range);
}

TEST(Tensor, ConstructFromData) {
    const Tensor t({2, 2}, {1.0F, 2.0F, 3.0F, 4.0F});
    EXPECT_EQ(t[3], 4.0F);
    EXPECT_THROW(Tensor({2, 2}, {1.0F}), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesData) {
    Tensor t({2, 3});
    for (std::size_t i = 0; i < 6; ++i) t[i] = static_cast<float>(i);
    const Tensor r = t.reshaped({3, 2});
    EXPECT_EQ(r.dim(0), 3u);
    for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(r[i], static_cast<float>(i));
    EXPECT_THROW(t.reshaped({5}), std::invalid_argument);
}

TEST(Tensor, FillAndFiniteCheck) {
    Tensor t({3});
    t.fill(2.5F);
    EXPECT_TRUE(t.all_finite());
    t[1] = std::numeric_limits<float>::quiet_NaN();
    EXPECT_FALSE(t.all_finite());
    t[1] = std::numeric_limits<float>::infinity();
    EXPECT_FALSE(t.all_finite());
}

TEST(Tensor, ShapeVolume) {
    EXPECT_EQ(shape_volume({}), 1u);
    EXPECT_EQ(shape_volume({7}), 7u);
    EXPECT_EQ(shape_volume({2, 3, 4}), 24u);
}

} // namespace
} // namespace fmore::ml
