#include <gtest/gtest.h>

#include <set>

#include "fmore/ml/model_zoo.hpp"
#include "fmore/ml/synthetic.hpp"

namespace fmore::ml {
namespace {

TEST(SyntheticImages, ShapeAndLabels) {
    stats::Rng rng(1);
    ImageDatasetSpec spec;
    spec.samples = 200;
    const Dataset data = make_synthetic_images(spec, rng);
    EXPECT_EQ(data.size(), 200u);
    EXPECT_EQ(data.sample_shape, (std::vector<std::size_t>{1, 12, 12}));
    EXPECT_EQ(data.num_classes, 10u);
    std::set<int> labels(data.labels.begin(), data.labels.end());
    EXPECT_GE(labels.size(), 8u); // nearly all classes present
    for (const int l : data.labels) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, 10);
    }
}

TEST(SyntheticImages, DeterministicPerSeed) {
    ImageDatasetSpec spec;
    spec.samples = 50;
    stats::Rng r1(7);
    stats::Rng r2(7);
    const Dataset a = make_synthetic_images(spec, r1);
    const Dataset b = make_synthetic_images(spec, r2);
    EXPECT_EQ(a.features, b.features);
    EXPECT_EQ(a.labels, b.labels);
}

TEST(SyntheticImages, DifficultyKnobOrdersLearnability) {
    // A linear probe should separate the easy spec better than the hard
    // one after identical training: the knob drives the achievable ceiling
    // that ranks MNIST-O above CIFAR-10 in the paper's figures.
    auto train_probe = [](const ImageDatasetSpec& spec, std::size_t h, std::size_t w,
                          std::size_t c) {
        stats::Rng rng(11);
        Dataset data = make_synthetic_images(spec, rng);
        Model probe = make_mlp(ImageSpec{c, h, w, 10}, 5);
        std::vector<std::size_t> train_idx;
        std::vector<std::size_t> test_idx;
        for (std::size_t i = 0; i < 700; ++i) train_idx.push_back(i);
        for (std::size_t i = 700; i < 900; ++i) test_idx.push_back(i);
        for (int e = 0; e < 8; ++e) probe.train_epoch(data, train_idx, 16, 0.05);
        return probe.evaluate(data, test_idx).accuracy;
    };
    ImageDatasetSpec easy = mnist_o_spec(900);
    ImageDatasetSpec hard = cifar10_spec(900);
    const double easy_acc = train_probe(easy, easy.height, easy.width, easy.channels);
    const double hard_acc = train_probe(hard, hard.height, hard.width, hard.channels);
    EXPECT_GT(easy_acc, hard_acc);
    EXPECT_GT(easy_acc, 0.5);
}

TEST(SyntheticImages, CannedSpecsMatchPaperDatasets) {
    EXPECT_EQ(mnist_o_spec(10).channels, 1u);
    EXPECT_EQ(mnist_f_spec(10).channels, 1u);
    EXPECT_EQ(cifar10_spec(10).channels, 3u);
    EXPECT_GT(mnist_f_spec(10).noise, mnist_o_spec(10).noise);
    EXPECT_GT(cifar10_spec(10).noise, mnist_f_spec(10).noise);
}

TEST(SyntheticImages, RejectsBadSpec) {
    stats::Rng rng(2);
    ImageDatasetSpec spec;
    spec.classes = 1;
    EXPECT_THROW(make_synthetic_images(spec, rng), std::invalid_argument);
    spec.classes = 10;
    spec.samples = 0;
    EXPECT_THROW(make_synthetic_images(spec, rng), std::invalid_argument);
}

TEST(SyntheticText, ShapeAndTokenRange) {
    stats::Rng rng(3);
    TextDatasetSpec spec;
    spec.samples = 150;
    const Dataset data = make_synthetic_text(spec, rng);
    EXPECT_EQ(data.size(), 150u);
    EXPECT_EQ(data.sample_shape, (std::vector<std::size_t>{spec.seq_len}));
    for (const float f : data.features) {
        EXPECT_GE(f, 0.0F);
        EXPECT_LT(f, static_cast<float>(spec.vocab));
        EXPECT_EQ(f, std::floor(f));
    }
}

TEST(SyntheticText, SharpnessControlsClassSignal) {
    // Sharper chains concentrate transition mass; measure the mean max
    // transition probability per row indirectly through repeat-structure:
    // an LSTM probe learns sharp chains far better than flat ones.
    auto probe_accuracy = [](double sharpness) {
        stats::Rng rng(13);
        TextDatasetSpec spec;
        spec.samples = 900;
        spec.vocab = 24;
        spec.sharpness = sharpness;
        Dataset data = make_synthetic_text(spec, rng);
        Model probe = make_lstm_classifier(TextSpec{spec.vocab, spec.seq_len, 10}, 5);
        std::vector<std::size_t> train_idx;
        std::vector<std::size_t> test_idx;
        for (std::size_t i = 0; i < 700; ++i) train_idx.push_back(i);
        for (std::size_t i = 700; i < 900; ++i) test_idx.push_back(i);
        for (int e = 0; e < 10; ++e) probe.train_epoch(data, train_idx, 16, 0.3);
        return probe.evaluate(data, test_idx).accuracy;
    };
    EXPECT_GT(probe_accuracy(0.9), probe_accuracy(0.05) + 0.15);
}

TEST(SyntheticText, HpnewsSpecIsLearnableConfiguration) {
    const TextDatasetSpec spec = hpnews_spec(10);
    EXPECT_EQ(spec.samples, 10u);
    EXPECT_GE(spec.sharpness, 0.5);
    EXPECT_LE(spec.vocab, 64u);
}

TEST(SyntheticText, RejectsBadSpec) {
    stats::Rng rng(4);
    TextDatasetSpec spec;
    spec.vocab = 1;
    EXPECT_THROW(make_synthetic_text(spec, rng), std::invalid_argument);
    spec.vocab = 16;
    spec.seq_len = 1;
    EXPECT_THROW(make_synthetic_text(spec, rng), std::invalid_argument);
}

TEST(Dataset, GatherBuildsBatches) {
    stats::Rng rng(5);
    ImageDatasetSpec spec;
    spec.samples = 20;
    const Dataset data = make_synthetic_images(spec, rng);
    const Tensor batch = data.gather({0, 5, 7});
    EXPECT_EQ(batch.shape(), (std::vector<std::size_t>{3, 1, 12, 12}));
    const auto labels = data.gather_labels({0, 5, 7});
    EXPECT_EQ(labels.size(), 3u);
    EXPECT_EQ(labels[0], data.labels[0]);
    EXPECT_THROW(data.gather({100}), std::out_of_range);
    EXPECT_THROW(data.gather_labels({100}), std::out_of_range);
}

} // namespace
} // namespace fmore::ml
