// Additional layer edge cases: multi-channel convolution against hand
// computation, LSTM numerical stability over long sequences, pooling with
// negative inputs, and embedding reuse across batches.

#include <gtest/gtest.h>

#include <cmath>

#include "fmore/ml/conv2d.hpp"
#include "fmore/ml/embedding.hpp"
#include "fmore/ml/lstm.hpp"
#include "fmore/ml/pooling.hpp"

namespace fmore::ml {
namespace {

TEST(Conv2dEdge, MultiChannelSumsAcrossInputs) {
    // Two input channels, one output, 1x1 kernel with weights (2, 3):
    // y = 2*c0 + 3*c1 + bias.
    Conv2d conv(2, 1, 1);
    auto params = conv.parameters();
    *params[0].values = {2.0F, 3.0F};
    *params[1].values = {0.5F};
    const Tensor x({1, 2, 2, 2}, {// channel 0
                                  1.0F, 2.0F, 3.0F, 4.0F,
                                  // channel 1
                                  10.0F, 20.0F, 30.0F, 40.0F});
    const Tensor y = conv.forward(x, false);
    ASSERT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 2, 2}));
    EXPECT_FLOAT_EQ(y[0], 2.0F * 1.0F + 3.0F * 10.0F + 0.5F);
    EXPECT_FLOAT_EQ(y[3], 2.0F * 4.0F + 3.0F * 40.0F + 0.5F);
}

TEST(Conv2dEdge, MultipleOutputChannelsIndependent) {
    Conv2d conv(1, 2, 1);
    auto params = conv.parameters();
    *params[0].values = {1.0F, -1.0F}; // oc0 copies, oc1 negates
    *params[1].values = {0.0F, 0.0F};
    const Tensor x({1, 1, 1, 2}, {3.0F, -4.0F});
    const Tensor y = conv.forward(x, false);
    EXPECT_FLOAT_EQ(y[0], 3.0F);
    EXPECT_FLOAT_EQ(y[1], -4.0F);
    EXPECT_FLOAT_EQ(y[2], -3.0F);
    EXPECT_FLOAT_EQ(y[3], 4.0F);
}

TEST(MaxPoolEdge, AllNegativeInputs) {
    MaxPool2d pool;
    const Tensor x({1, 1, 2, 2}, {-5.0F, -1.0F, -3.0F, -9.0F});
    const Tensor y = pool.forward(x, false);
    EXPECT_FLOAT_EQ(y[0], -1.0F);
}

TEST(LstmEdge, LongSequenceStaysFinite) {
    Lstm lstm(4, 8);
    stats::Rng rng(1);
    lstm.initialize(rng);
    Tensor x({1, 200, 4});
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
    const Tensor h = lstm.forward(x, false);
    EXPECT_TRUE(h.all_finite());
    const Tensor g = lstm.backward(Tensor({1, 8}, std::vector<float>(8, 1.0F)));
    EXPECT_TRUE(g.all_finite());
}

TEST(LstmEdge, ZeroInputGivesBoundedStableOutput) {
    Lstm lstm(3, 4);
    stats::Rng rng(2);
    lstm.initialize(rng);
    const Tensor x({2, 6, 3}); // zeros
    const Tensor h = lstm.forward(x, false);
    for (std::size_t i = 0; i < h.size(); ++i) {
        EXPECT_LT(std::fabs(h[i]), 1.0F);
    }
}

TEST(LstmEdge, BatchElementsAreIndependent) {
    Lstm lstm(2, 3);
    stats::Rng rng(3);
    lstm.initialize(rng);
    // Same sequence twice in one batch must give identical rows.
    Tensor x({2, 4, 2});
    for (std::size_t t = 0; t < 4; ++t) {
        for (std::size_t e = 0; e < 2; ++e) {
            const auto v = static_cast<float>(rng.uniform(-1.0, 1.0));
            x[(0 * 4 + t) * 2 + e] = v;
            x[(1 * 4 + t) * 2 + e] = v;
        }
    }
    const Tensor h = lstm.forward(x, false);
    for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_FLOAT_EQ(h[j], h[3 + j]);
    }
}

TEST(EmbeddingEdge, RepeatedForwardAccumulatesGradsAcrossCalls) {
    Embedding emb(4, 1);
    auto params = emb.parameters();
    *params[0].values = {0.0F, 0.0F, 0.0F, 0.0F};
    const Tensor ids({1, 1}, {2.0F});
    (void)emb.forward(ids, true);
    (void)emb.backward(Tensor({1, 1, 1}, {1.0F}));
    (void)emb.forward(ids, true);
    (void)emb.backward(Tensor({1, 1, 1}, {1.0F}));
    EXPECT_FLOAT_EQ((*params[0].grads)[2], 2.0F); // grads accumulate until zero_grad
}

} // namespace
} // namespace fmore::ml
