// Finite-difference gradient checks: for each layer family, build a tiny
// model ending in softmax cross-entropy, compare analytic parameter
// gradients against central differences. This is the test that certifies
// the substrate's backpropagation — including the LSTM's BPTT.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "fmore/ml/activations.hpp"
#include "fmore/ml/conv2d.hpp"
#include "fmore/ml/dense.hpp"
#include "fmore/ml/embedding.hpp"
#include "fmore/ml/lstm.hpp"
#include "fmore/ml/model.hpp"
#include "fmore/ml/pooling.hpp"

namespace fmore::ml {
namespace {

/// Fraction of sampled parameter coordinates whose analytic gradient
/// disagrees with the central difference. The analytic flat
/// gradient is extracted without extra API surface: after one backward
/// pass, an SGD step with lr = 1 subtracts exactly the gradient, so
/// (params_before - params_after) is the flat gradient in parameter order.
double max_gradient_error(Model& model, const Tensor& input,
                          const std::vector<int>& labels, double eps = 1e-3) {
    SoftmaxCrossEntropy loss;
    std::vector<float> params = model.get_parameters();

    model.zero_grad();
    (void)loss.forward(model.forward(input, /*training=*/false), labels);
    model.backward(loss.backward());
    model.sgd_step(1.0);
    const std::vector<float> stepped = model.get_parameters();
    std::vector<double> analytic(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
        analytic[i] = static_cast<double>(params[i]) - static_cast<double>(stepped[i]);
    }
    model.set_parameters(params);

    // Relative error per coordinate with the denominator floored at 1e-3:
    // float32 forward noise makes sub-1e-3 gradients uncomparable, and
    // ReLU/max-pool kink crossings make isolated coordinates disagree even
    // with a correct backward pass. The check therefore asserts on the
    // FRACTION of disagreeing coordinates rather than the single worst one.
    const std::size_t stride = std::max<std::size_t>(1, params.size() / 96);
    std::size_t checked = 0;
    std::size_t bad = 0;
    for (std::size_t i = 0; i < params.size(); i += stride) {
        const float saved = params[i];
        params[i] = saved + static_cast<float>(eps);
        model.set_parameters(params);
        const double up = loss.forward(model.forward(input, false), labels);
        params[i] = saved - static_cast<float>(eps);
        model.set_parameters(params);
        const double down = loss.forward(model.forward(input, false), labels);
        params[i] = saved;
        model.set_parameters(params);
        const double numeric = (up - down) / (2.0 * eps);

        const double denom = std::max({std::fabs(numeric), std::fabs(analytic[i]), 1e-3});
        if (std::fabs(numeric - analytic[i]) / denom > 0.05) ++bad;
        ++checked;
    }
    return static_cast<double>(bad) / static_cast<double>(checked);
}

TEST(GradientCheck, DenseRelu) {
    Model model(11);
    model.add(std::make_unique<Dense>(6, 8));
    model.add(std::make_unique<ReLU>());
    model.add(std::make_unique<Dense>(8, 3));
    stats::Rng rng(1);
    Tensor x({4, 6});
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    EXPECT_LE(max_gradient_error(model, x, {0, 1, 2, 1}), 0.05);
}

TEST(GradientCheck, TanhHead) {
    Model model(12);
    model.add(std::make_unique<Dense>(5, 5));
    model.add(std::make_unique<Tanh>());
    model.add(std::make_unique<Dense>(5, 2));
    stats::Rng rng(2);
    Tensor x({3, 5});
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    EXPECT_LE(max_gradient_error(model, x, {1, 0, 1}), 0.05);
}

TEST(GradientCheck, ConvPoolStack) {
    Model model(13);
    model.add(std::make_unique<Conv2d>(1, 2, 3));
    model.add(std::make_unique<ReLU>());
    model.add(std::make_unique<MaxPool2d>());
    model.add(std::make_unique<Flatten>());
    model.add(std::make_unique<Dense>(2 * 2 * 2, 3));
    stats::Rng rng(3);
    Tensor x({2, 1, 6, 6});
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    EXPECT_LE(max_gradient_error(model, x, {2, 0}), 0.05);
}

TEST(GradientCheck, LstmBptt) {
    Model model(14);
    model.add(std::make_unique<Lstm>(3, 4));
    model.add(std::make_unique<Dense>(4, 2));
    stats::Rng rng(4);
    Tensor x({2, 5, 3});
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    EXPECT_LE(max_gradient_error(model, x, {0, 1}), 0.05);
}

TEST(GradientCheck, EmbeddingLstmClassifier) {
    Model model(15);
    model.add(std::make_unique<Embedding>(7, 3));
    model.add(std::make_unique<Lstm>(3, 4));
    model.add(std::make_unique<Dense>(4, 2));
    const Tensor ids({2, 4}, {1.0F, 3.0F, 5.0F, 0.0F, 2.0F, 2.0F, 6.0F, 4.0F});
    EXPECT_LE(max_gradient_error(model, ids, {1, 0}), 0.05);
}

} // namespace
} // namespace fmore::ml
