#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "fmore/ml/partition.hpp"
#include "fmore/ml/synthetic.hpp"

namespace fmore::ml {
namespace {

Dataset image_data(std::size_t n, std::uint64_t seed) {
    stats::Rng rng(seed);
    ImageDatasetSpec spec;
    spec.samples = n;
    return make_synthetic_images(spec, rng);
}

TEST(PartitionNonIid, CoversDatasetWithoutOverlap) {
    const Dataset data = image_data(1000, 1);
    stats::Rng rng(2);
    const auto shards = partition_non_iid(data, 20, 2, rng);
    ASSERT_EQ(shards.size(), 20u);
    std::set<std::size_t> seen;
    std::size_t total = 0;
    for (const auto& shard : shards) {
        for (const std::size_t idx : shard.indices) {
            EXPECT_TRUE(seen.insert(idx).second) << "duplicate sample " << idx;
        }
        total += shard.indices.size();
    }
    EXPECT_EQ(total, data.size());
}

TEST(PartitionNonIid, ShardsHaveFewLabels) {
    // With 2 contiguous label shards each, clients should see far fewer
    // classes than the full 10 (the non-IID property of McMahan et al.).
    const Dataset data = image_data(2000, 3);
    stats::Rng rng(4);
    const auto shards = partition_non_iid(data, 50, 2, rng);
    double mean_labels = 0.0;
    for (const auto& shard : shards) {
        mean_labels += static_cast<double>(shard.distinct_labels());
    }
    mean_labels /= 50.0;
    EXPECT_LT(mean_labels, 4.5);
    EXPECT_GE(mean_labels, 1.0);
}

TEST(PartitionNonIid, HistogramsMatchIndices) {
    const Dataset data = image_data(500, 5);
    stats::Rng rng(6);
    const auto shards = partition_non_iid(data, 10, 2, rng);
    for (const auto& shard : shards) {
        std::size_t total = 0;
        for (const std::size_t c : shard.label_count) total += c;
        EXPECT_EQ(total, shard.indices.size());
        for (const std::size_t idx : shard.indices) {
            EXPECT_GT(shard.label_count[static_cast<std::size_t>(data.labels[idx])], 0u);
        }
    }
}

TEST(PartitionNonIid, RejectsBadArguments) {
    const Dataset data = image_data(100, 7);
    stats::Rng rng(8);
    EXPECT_THROW(partition_non_iid(data, 0, 2, rng), std::invalid_argument);
    EXPECT_THROW(partition_non_iid(data, 10, 0, rng), std::invalid_argument);
    EXPECT_THROW(partition_non_iid(data, 200, 2, rng), std::invalid_argument);
}

TEST(PartitionNonIidVariable, ShardCountsVaryWithinRange) {
    const Dataset data = image_data(3000, 9);
    stats::Rng rng(10);
    const auto shards = partition_non_iid_variable(data, 60, 1, 5, rng);
    ASSERT_EQ(shards.size(), 60u);
    std::set<std::size_t> label_counts;
    for (const auto& shard : shards) {
        EXPECT_FALSE(shard.indices.empty());
        label_counts.insert(shard.distinct_labels());
    }
    // Diversity must actually vary across clients.
    EXPECT_GE(label_counts.size(), 3u);
}

TEST(PartitionNonIidVariable, CategoryProportionInUnitRange) {
    const Dataset data = image_data(1500, 11);
    stats::Rng rng(12);
    const auto shards = partition_non_iid_variable(data, 30, 1, 4, rng);
    for (const auto& shard : shards) {
        const double q2 = shard.category_proportion(data.num_classes);
        EXPECT_GT(q2, 0.0);
        EXPECT_LE(q2, 1.0);
    }
}

TEST(PartitionIid, BalancedAndDiverse) {
    const Dataset data = image_data(1000, 13);
    stats::Rng rng(14);
    const auto shards = partition_iid(data, 10, rng);
    for (const auto& shard : shards) {
        EXPECT_NEAR(static_cast<double>(shard.indices.size()), 100.0, 1.0);
        // Random splits see most classes.
        EXPECT_GE(shard.distinct_labels(), 7u);
    }
}

TEST(ResizeShards, RespectsBoundsAndRebuildsHistograms) {
    const Dataset data = image_data(2000, 15);
    stats::Rng rng(16);
    auto shards = partition_non_iid_variable(data, 20, 2, 4, rng);
    resize_shards(shards, data, 10, 40, rng);
    for (const auto& shard : shards) {
        EXPECT_LE(shard.indices.size(), 40u);
        EXPECT_GE(shard.indices.size(), 1u);
        std::size_t total = 0;
        for (const std::size_t c : shard.label_count) total += c;
        EXPECT_EQ(total, shard.indices.size());
    }
    EXPECT_THROW(resize_shards(shards, data, 50, 40, rng), std::invalid_argument);
}

TEST(ClientShard, DistinctLabelHelpers) {
    ClientShard shard;
    shard.label_count = {3, 0, 1, 0};
    EXPECT_EQ(shard.distinct_labels(), 2u);
    EXPECT_DOUBLE_EQ(shard.category_proportion(4), 0.5);
    EXPECT_DOUBLE_EQ(shard.category_proportion(0), 0.0);
}

} // namespace
} // namespace fmore::ml
