// Dropout behaviour through the Model container: stochastic at train time
// (wired to the model RNG), deterministic identity at eval, and training
// with dropout still converges on a separable task.

#include <gtest/gtest.h>

#include "fmore/ml/activations.hpp"
#include "fmore/ml/dense.hpp"
#include "fmore/ml/dropout.hpp"
#include "fmore/ml/model.hpp"

namespace fmore::ml {
namespace {

Model dropout_model(std::uint64_t seed, double rate) {
    Model model(seed);
    model.add(std::make_unique<Dense>(6, 16));
    model.add(std::make_unique<ReLU>());
    model.add(std::make_unique<Dropout>(rate));
    model.add(std::make_unique<Dense>(16, 3));
    return model;
}

TEST(DropoutModel, EvalIsDeterministic) {
    Model model = dropout_model(1, 0.5);
    Tensor x({2, 6});
    x.fill(0.5F);
    const Tensor a = model.forward(x, false);
    const Tensor b = model.forward(x, false);
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(DropoutModel, TrainForwardIsStochastic) {
    Model model = dropout_model(2, 0.5);
    Tensor x({2, 6});
    x.fill(0.5F);
    const Tensor a = model.forward(x, true);
    const Tensor b = model.forward(x, true);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(DropoutModel, StillLearnsSeparableTask) {
    Model model = dropout_model(3, 0.3);
    Dataset data;
    data.sample_shape = {6};
    data.num_classes = 3;
    stats::Rng rng(4);
    for (int i = 0; i < 90; ++i) {
        std::vector<float> feat(6);
        const int label = i % 3;
        for (auto& f : feat) f = static_cast<float>(rng.uniform(-0.3, 0.3));
        feat[static_cast<std::size_t>(label)] += 2.0F;
        data.push_sample(feat, label);
    }
    std::vector<std::size_t> idx(90);
    for (std::size_t i = 0; i < 90; ++i) idx[i] = i;
    for (int e = 0; e < 40; ++e) model.train_epoch(data, idx, 16, 0.1);
    EXPECT_GT(model.evaluate(data, idx).accuracy, 0.9);
}

TEST(DropoutModel, ParameterRoundTripUnaffectedByDropout) {
    Model model = dropout_model(5, 0.4);
    const auto params = model.get_parameters();
    Tensor x({1, 6});
    x.fill(1.0F);
    (void)model.forward(x, true); // dropout draws RNG, must not touch params
    EXPECT_EQ(model.get_parameters(), params);
}

} // namespace
} // namespace fmore::ml
