// Kernel-equivalence suite: the GEMM-backed fast paths must match the
// naive reference loops to <= 1e-10 (they are in fact designed to be
// bit-identical — see gemm.hpp's order contract), across random shapes
// including non-square inputs, non-square kernels, and the stride/pad
// generality of the im2col/col2im helpers.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include "fmore/ml/conv2d.hpp"
#include "fmore/ml/dense.hpp"
#include "fmore/ml/gemm.hpp"
#include "fmore/ml/lstm.hpp"
#include "fmore/ml/model_zoo.hpp"
#include "fmore/ml/synthetic.hpp"
#include "fmore/ml/tensor.hpp"
#include "fmore/stats/rng.hpp"

namespace fmore::ml {
namespace {

constexpr double kTol = 1e-10;

/// RAII kernel-path override so a failing assertion cannot leak the mode.
struct KernelMode {
    explicit KernelMode(int mode) { set_naive_kernels(mode); }
    ~KernelMode() { set_naive_kernels(-1); }
};

Tensor random_tensor(std::vector<std::size_t> shape, stats::Rng& rng) {
    Tensor t(std::move(shape));
    for (std::size_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    return t;
}

void expect_close(const Tensor& a, const Tensor& b, const std::string& what) {
    ASSERT_EQ(a.shape(), b.shape()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_NEAR(a[i], b[i], kTol) << what << " element " << i;
    }
}

void expect_close(const std::vector<float>& a, const std::vector<float>& b,
                  const std::string& what) {
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_NEAR(a[i], b[i], kTol) << what << " element " << i;
    }
}

// ---------------------------------------------------------------------------
// Raw kernel vs scalar reference
// ---------------------------------------------------------------------------

TEST(GemmKernelTest, MatchesScalarReferenceOnRandomShapes) {
    stats::Rng rng(31);
    // Shapes chosen to hit every tile path: full 4x16 tiles, 8/4-wide
    // tails, scalar tails, 1-3 row tails, tiny and skinny extremes.
    const std::vector<std::array<std::size_t, 3>> shapes = {
        {4, 16, 8},  {8, 100, 9}, {5, 17, 3},  {3, 7, 11},  {1, 1, 1},
        {2, 37, 64}, {16, 9, 100}, {7, 23, 5}, {13, 52, 21}, {4, 4, 200},
    };
    for (const auto& [m, n, k] : shapes) {
        std::vector<float> a(m * k);
        std::vector<float> b(k * n);
        std::vector<float> c_ref(m * n);
        for (float& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
        for (float& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
        for (float& v : c_ref) v = static_cast<float>(rng.uniform(-1.0, 1.0));
        std::vector<float> c_fast = c_ref;

        for (std::size_t i = 0; i < m; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                float acc = c_ref[i * n + j];
                for (std::size_t kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[kk * n + j];
                c_ref[i * n + j] = acc;
            }
        }
        gemm_acc(m, n, k, a.data(), static_cast<std::ptrdiff_t>(k), 1, b.data(),
                 static_cast<std::ptrdiff_t>(n), c_fast.data(),
                 static_cast<std::ptrdiff_t>(n));
        expect_close(c_fast, c_ref,
                     "gemm " + std::to_string(m) + "x" + std::to_string(n) + "x"
                         + std::to_string(k));
    }
}

TEST(GemmKernelTest, StridedATransposeMatchesMaterializedTranspose) {
    stats::Rng rng(32);
    const std::size_t m = 6, n = 21, k = 13;
    std::vector<float> at(k * m); // a stored transposed [k x m]
    std::vector<float> b(k * n);
    std::vector<float> c_ref(m * n, 0.25F);
    for (float& v : at) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (float& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    std::vector<float> c_fast = c_ref;

    // Reference through a materialized row-major A.
    std::vector<float> a(m * k);
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t kk = 0; kk < k; ++kk) a[i * k + kk] = at[kk * m + i];
    gemm_acc(m, n, k, a.data(), static_cast<std::ptrdiff_t>(k), 1, b.data(),
             static_cast<std::ptrdiff_t>(n), c_ref.data(),
             static_cast<std::ptrdiff_t>(n));
    // Same multiply via strides: row stride 1, column stride m.
    gemm_acc(m, n, k, at.data(), 1, static_cast<std::ptrdiff_t>(m), b.data(),
             static_cast<std::ptrdiff_t>(n), c_fast.data(),
             static_cast<std::ptrdiff_t>(n));
    expect_close(c_fast, c_ref, "strided-A gemm");
}

TEST(GemmKernelTest, GroupedAccumulationMatchesGroupedReference) {
    stats::Rng rng(33);
    const std::size_t m = 5, n = 19, k = 18, group = 6;
    std::vector<float> a(m * k);
    std::vector<float> b(k * n);
    std::vector<float> c_ref(m * n, 1.0F);
    for (float& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (float& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    std::vector<float> c_fast = c_ref;

    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            float acc = c_ref[i * n + j];
            for (std::size_t g0 = 0; g0 < k; g0 += group) {
                float part = 0.0F;
                for (std::size_t kk = g0; kk < std::min(k, g0 + group); ++kk) {
                    part += a[i * k + kk] * b[kk * n + j];
                }
                acc += part;
            }
            c_ref[i * n + j] = acc;
        }
    }
    gemm_acc_grouped(m, n, k, a.data(), static_cast<std::ptrdiff_t>(k), 1, b.data(),
                     static_cast<std::ptrdiff_t>(n), c_fast.data(),
                     static_cast<std::ptrdiff_t>(n), group);
    expect_close(c_fast, c_ref, "grouped gemm");
}

// ---------------------------------------------------------------------------
// im2col / col2im
// ---------------------------------------------------------------------------

ConvShape make_shape(std::size_t in_c, std::size_t h, std::size_t w, std::size_t kh,
                     std::size_t kw, std::size_t stride, std::size_t pad) {
    ConvShape s;
    s.in_c = in_c;
    s.h = h;
    s.w = w;
    s.kh = kh;
    s.kw = kw;
    s.stride_h = s.stride_w = stride;
    s.pad_h = s.pad_w = pad;
    return s;
}

/// Reference im2col: the textbook definition, no fast paths.
std::vector<float> im2col_reference(const std::vector<float>& x, const ConvShape& s) {
    const std::size_t oh = s.out_h();
    const std::size_t ow = s.out_w();
    std::vector<float> col(s.col_rows() * s.col_cols(), -1.0F);
    std::size_t row = 0;
    for (std::size_t ic = 0; ic < s.in_c; ++ic) {
        for (std::size_t ky = 0; ky < s.kh; ++ky) {
            for (std::size_t kx = 0; kx < s.kw; ++kx, ++row) {
                for (std::size_t oy = 0; oy < oh; ++oy) {
                    for (std::size_t ox = 0; ox < ow; ++ox) {
                        const auto iy = static_cast<std::ptrdiff_t>(oy * s.stride_h + ky)
                                        - static_cast<std::ptrdiff_t>(s.pad_h);
                        const auto ix = static_cast<std::ptrdiff_t>(ox * s.stride_w + kx)
                                        - static_cast<std::ptrdiff_t>(s.pad_w);
                        const bool in =
                            iy >= 0 && iy < static_cast<std::ptrdiff_t>(s.h) && ix >= 0
                            && ix < static_cast<std::ptrdiff_t>(s.w);
                        col[row * oh * ow + oy * ow + ox] =
                            in ? x[(ic * s.h + static_cast<std::size_t>(iy)) * s.w
                                   + static_cast<std::size_t>(ix)]
                               : 0.0F;
                    }
                }
            }
        }
    }
    return col;
}

TEST(Im2ColTest, MatchesReferenceAcrossStridePadAndNonSquareShapes) {
    stats::Rng rng(34);
    const std::vector<ConvShape> shapes = {
        make_shape(1, 12, 12, 3, 3, 1, 0),  // the MNIST layer
        make_shape(3, 9, 14, 3, 3, 1, 0),   // non-square input
        make_shape(2, 8, 8, 3, 5, 1, 0),    // non-square kernel
        make_shape(2, 10, 10, 3, 3, 1, 1),  // padding
        make_shape(1, 11, 13, 5, 3, 2, 0),  // stride 2
        make_shape(2, 9, 7, 3, 3, 2, 2),    // stride + wide pad
        make_shape(1, 4, 4, 4, 4, 1, 3),    // pad wider than the image edge
    };
    for (const ConvShape& s : shapes) {
        std::vector<float> x(s.in_c * s.h * s.w);
        for (float& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
        const std::vector<float> expected = im2col_reference(x, s);

        std::vector<float> col(s.col_rows() * s.col_cols(), -7.0F);
        im2col(x.data(), s, col.data());
        expect_close(col, expected, "im2col");

        // im2col_t is the same matrix, transposed.
        std::vector<float> colt(s.col_rows() * s.col_cols(), -7.0F);
        im2col_t(x.data(), s, colt.data());
        const std::size_t rows = s.col_rows();
        const std::size_t cols = s.col_cols();
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t p = 0; p < cols; ++p) {
                ASSERT_NEAR(colt[p * rows + r], expected[r * cols + p], kTol)
                    << "im2col_t at (" << r << ", " << p << ")";
            }
        }
    }
}

TEST(Im2ColTest, Col2ImIsTheAdjointOfIm2Col) {
    // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
    // property of the adjoint, which is exactly what backward needs.
    stats::Rng rng(35);
    for (const ConvShape& s :
         {make_shape(2, 7, 9, 3, 3, 1, 1), make_shape(1, 10, 6, 4, 2, 2, 1)}) {
        std::vector<float> x(s.in_c * s.h * s.w);
        std::vector<float> y(s.col_rows() * s.col_cols());
        for (float& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
        for (float& v : y) v = static_cast<float>(rng.uniform(-1.0, 1.0));

        std::vector<float> col(y.size());
        im2col(x.data(), s, col.data());
        std::vector<float> back(x.size(), 0.0F);
        col2im_add(y.data(), s, back.data());

        double lhs = 0.0, rhs = 0.0;
        for (std::size_t i = 0; i < y.size(); ++i)
            lhs += static_cast<double>(col[i]) * static_cast<double>(y[i]);
        for (std::size_t i = 0; i < x.size(); ++i)
            rhs += static_cast<double>(x[i]) * static_cast<double>(back[i]);
        ASSERT_NEAR(lhs, rhs, 1e-4) << "adjoint identity";
    }
}

// ---------------------------------------------------------------------------
// Layer fast path vs naive reference
// ---------------------------------------------------------------------------

/// Run forward+backward under one kernel mode, returning outputs, input
/// gradients and parameter gradients.
struct LayerPass {
    Tensor output;
    Tensor grad_input;
    std::vector<std::vector<float>> param_grads;
};

LayerPass run_layer(Layer& layer, const Tensor& input, const Tensor& grad_out,
                    int mode) {
    const KernelMode guard(mode);
    for (const ParamBlock& block : layer.parameters()) {
        for (float& g : *block.grads) g = 0.0F;
    }
    LayerPass pass;
    pass.output = layer.forward(input, /*training=*/true);
    pass.grad_input = layer.backward(grad_out);
    for (const ParamBlock& block : layer.parameters()) {
        pass.param_grads.push_back(*block.grads);
    }
    return pass;
}

void expect_layer_equivalence(Layer& layer, const Tensor& input,
                              const std::string& what, stats::Rng& rng) {
    Tensor probe;
    {
        const KernelMode guard(1);
        probe = layer.forward(input, true);
    }
    Tensor grad_out(probe.shape());
    for (std::size_t i = 0; i < grad_out.size(); ++i)
        grad_out[i] = static_cast<float>(rng.uniform(-0.5, 0.5));
    // Zero some gradient entries: the naive loops short-circuit g == 0, the
    // GEMM path does not, and the results must still agree.
    for (std::size_t i = 0; i < grad_out.size(); i += 7) grad_out[i] = 0.0F;

    const LayerPass naive = run_layer(layer, input, grad_out, 1);
    const LayerPass fast = run_layer(layer, input, grad_out, 0);
    expect_close(fast.output, naive.output, what + " forward");
    expect_close(fast.grad_input, naive.grad_input, what + " grad_input");
    ASSERT_EQ(fast.param_grads.size(), naive.param_grads.size());
    for (std::size_t p = 0; p < fast.param_grads.size(); ++p) {
        expect_close(fast.param_grads[p], naive.param_grads[p],
                     what + " param_grad " + std::to_string(p));
    }
}

TEST(KernelEquivalenceTest, Conv2dMatchesNaiveOnRandomShapes) {
    stats::Rng rng(41);
    struct Case {
        std::size_t batch, in_c, out_c, k, h, w;
    };
    const std::vector<Case> cases = {
        {16, 1, 8, 3, 12, 12},  // MNIST layer
        {4, 3, 8, 3, 14, 14},   // CIFAR layer
        {2, 8, 16, 3, 6, 6},    // deep CIFAR layer
        {3, 2, 5, 3, 9, 13},    // non-square input
        {1, 1, 3, 5, 7, 11},    // big kernel, odd dims
        {2, 4, 4, 1, 5, 6},     // 1x1 kernel
    };
    for (const Case& c : cases) {
        Conv2d layer(c.in_c, c.out_c, c.k);
        layer.initialize(rng);
        const Tensor input = random_tensor({c.batch, c.in_c, c.h, c.w}, rng);
        expect_layer_equivalence(layer, input,
                                 "conv2d " + std::to_string(c.in_c) + "->"
                                     + std::to_string(c.out_c) + " k"
                                     + std::to_string(c.k),
                                 rng);
    }
}

TEST(KernelEquivalenceTest, GemmConvHelpersMatchDirectStridePadReference) {
    // The generic stride/pad lowering (im2col + grouped GEMM) against a
    // direct convolution written independently here.
    stats::Rng rng(42);
    for (const ConvShape& s :
         {make_shape(2, 9, 11, 3, 3, 1, 1), make_shape(3, 8, 8, 3, 5, 2, 2),
          make_shape(1, 12, 7, 5, 3, 2, 0)}) {
        const std::size_t out_c = 6;
        const std::size_t oh = s.out_h();
        const std::size_t ow = s.out_w();
        std::vector<float> x(s.in_c * s.h * s.w);
        std::vector<float> w(out_c * s.col_rows());
        std::vector<float> bias(out_c);
        for (float& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
        for (float& v : w) v = static_cast<float>(rng.uniform(-0.5, 0.5));
        for (float& v : bias) v = static_cast<float>(rng.uniform(-0.1, 0.1));

        std::vector<float> expected(out_c * oh * ow);
        for (std::size_t oc = 0; oc < out_c; ++oc) {
            for (std::size_t oy = 0; oy < oh; ++oy) {
                for (std::size_t ox = 0; ox < ow; ++ox) {
                    double acc = bias[oc];
                    for (std::size_t ic = 0; ic < s.in_c; ++ic) {
                        for (std::size_t ky = 0; ky < s.kh; ++ky) {
                            for (std::size_t kx = 0; kx < s.kw; ++kx) {
                                const auto iy =
                                    static_cast<std::ptrdiff_t>(oy * s.stride_h + ky)
                                    - static_cast<std::ptrdiff_t>(s.pad_h);
                                const auto ix =
                                    static_cast<std::ptrdiff_t>(ox * s.stride_w + kx)
                                    - static_cast<std::ptrdiff_t>(s.pad_w);
                                if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(s.h)
                                    || ix < 0
                                    || ix >= static_cast<std::ptrdiff_t>(s.w)) {
                                    continue;
                                }
                                acc += static_cast<double>(
                                           w[(oc * s.in_c + ic) * s.kh * s.kw
                                             + ky * s.kw + kx])
                                       * static_cast<double>(
                                           x[(ic * s.h + static_cast<std::size_t>(iy))
                                                 * s.w
                                             + static_cast<std::size_t>(ix)]);
                            }
                        }
                    }
                    expected[(oc * oh + oy) * ow + ox] = static_cast<float>(acc);
                }
            }
        }

        std::vector<float> col(s.col_rows() * s.col_cols());
        std::vector<float> y(out_c * oh * ow, -9.0F);
        conv2d_forward_gemm(x.data(), w.data(), bias.data(), out_c, s, col.data(),
                            y.data());
        // Double-accumulated reference vs float kernel: float-level
        // agreement (the bit-exactness contract is vs the float loops,
        // covered above).
        for (std::size_t i = 0; i < y.size(); ++i) {
            ASSERT_NEAR(y[i], expected[i], 1e-4) << "stride/pad conv element " << i;
        }
    }
}

TEST(KernelEquivalenceTest, DenseMatchesNaiveOnRandomShapes) {
    stats::Rng rng(43);
    struct Case {
        std::size_t batch, in, out;
    };
    for (const Case& c : std::vector<Case>{
             {16, 200, 64}, {16, 800, 64}, {1, 7, 3}, {5, 33, 17}, {128, 64, 10}}) {
        Dense layer(c.in, c.out);
        layer.initialize(rng);
        const Tensor input = random_tensor({c.batch, c.in}, rng);
        expect_layer_equivalence(layer, input,
                                 "dense " + std::to_string(c.in) + "->"
                                     + std::to_string(c.out),
                                 rng);
    }
}

TEST(KernelEquivalenceTest, LstmMatchesNaiveOnRandomShapes) {
    stats::Rng rng(44);
    struct Case {
        std::size_t batch, seq, embed, hidden;
    };
    for (const Case& c :
         std::vector<Case>{{16, 16, 16, 32}, {3, 5, 7, 11}, {1, 2, 4, 4}}) {
        Lstm layer(c.embed, c.hidden);
        layer.initialize(rng);
        const Tensor input = random_tensor({c.batch, c.seq, c.embed}, rng);
        expect_layer_equivalence(layer, input,
                                 "lstm E" + std::to_string(c.embed) + " H"
                                     + std::to_string(c.hidden),
                                 rng);
    }
}

TEST(KernelEquivalenceTest, WholeModelTrainingStepBitIdentical) {
    // End-to-end: one SGD epoch of the paper's CNN under both kernel paths
    // from identical starting parameters must land on parameters that agree
    // to <= 1e-10 (the layers are bit-identical, so this guards the glue).
    stats::Rng data_rng(45);
    ml::ImageDatasetSpec spec;
    spec.samples = 64;
    const Dataset data = make_synthetic_images(spec, data_rng);
    std::vector<std::size_t> indices(data.size());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;

    auto run_epoch = [&](int mode) {
        const KernelMode guard(mode);
        Model model = make_cnn(ImageSpec{1, 12, 12, data.num_classes}, 99);
        (void)model.train_epoch(data, indices, 16, 0.05);
        return model.get_parameters();
    };
    const std::vector<float> naive = run_epoch(1);
    const std::vector<float> fast = run_epoch(0);
    expect_close(fast, naive, "model parameters after one epoch");
}

TEST(KernelEquivalenceTest, NaiveKernelEnvDefaultIsOff) {
    set_naive_kernels(-1);
    // Unless the environment explicitly asks for the reference loops, the
    // fast path is the default.
    if (std::getenv("FMORE_NAIVE_KERNELS") == nullptr) {
        EXPECT_FALSE(use_naive_kernels());
    }
}

} // namespace
} // namespace fmore::ml
