#include <gtest/gtest.h>

#include "fmore/ml/activations.hpp"
#include "fmore/ml/conv2d.hpp"
#include "fmore/ml/dense.hpp"
#include "fmore/ml/dropout.hpp"
#include "fmore/ml/embedding.hpp"
#include "fmore/ml/lstm.hpp"
#include "fmore/ml/pooling.hpp"

namespace fmore::ml {
namespace {

TEST(DenseLayer, ForwardShapeAndValues) {
    Dense dense(3, 2);
    stats::Rng rng(1);
    dense.initialize(rng);
    // Overwrite with known weights: y = [x0+x1+x2, 2*x0] + [0.5, -0.5].
    auto params = dense.parameters();
    *params[0].values = {1.0F, 1.0F, 1.0F, 2.0F, 0.0F, 0.0F};
    *params[1].values = {0.5F, -0.5F};
    const Tensor x({1, 3}, {1.0F, 2.0F, 3.0F});
    const Tensor y = dense.forward(x, false);
    ASSERT_EQ(y.size(), 2u);
    EXPECT_FLOAT_EQ(y[0], 6.5F);
    EXPECT_FLOAT_EQ(y[1], 1.5F);
}

TEST(DenseLayer, BatchedForward) {
    Dense dense(2, 1);
    auto params = dense.parameters();
    *params[0].values = {1.0F, -1.0F};
    *params[1].values = {0.0F};
    const Tensor x({3, 2}, {1.0F, 0.0F, 0.0F, 1.0F, 2.0F, 2.0F});
    const Tensor y = dense.forward(x, false);
    EXPECT_FLOAT_EQ(y[0], 1.0F);
    EXPECT_FLOAT_EQ(y[1], -1.0F);
    EXPECT_FLOAT_EQ(y[2], 0.0F);
}

TEST(ReLULayer, ClampsNegatives) {
    ReLU relu;
    const Tensor x({1, 4}, {-1.0F, 0.0F, 2.0F, -3.0F});
    const Tensor y = relu.forward(x, false);
    EXPECT_FLOAT_EQ(y[0], 0.0F);
    EXPECT_FLOAT_EQ(y[2], 2.0F);
    const Tensor g = relu.backward(Tensor({1, 4}, {1.0F, 1.0F, 1.0F, 1.0F}));
    EXPECT_FLOAT_EQ(g[0], 0.0F);
    EXPECT_FLOAT_EQ(g[2], 1.0F);
}

TEST(FlattenLayer, RoundTripsShape) {
    Flatten flatten;
    const Tensor x({2, 3, 4});
    const Tensor y = flatten.forward(x, false);
    EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 12}));
    const Tensor g = flatten.backward(y);
    EXPECT_EQ(g.shape(), x.shape());
}

TEST(Conv2dLayer, KnownKernel) {
    Conv2d conv(1, 1, 2);
    auto params = conv.parameters();
    *params[0].values = {1.0F, 0.0F, 0.0F, 1.0F}; // main-diagonal sum
    *params[1].values = {0.0F};
    const Tensor x({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
    const Tensor y = conv.forward(x, false);
    ASSERT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 2, 2}));
    EXPECT_FLOAT_EQ(y[0], 1.0F + 5.0F);
    EXPECT_FLOAT_EQ(y[1], 2.0F + 6.0F);
    EXPECT_FLOAT_EQ(y[2], 4.0F + 8.0F);
    EXPECT_FLOAT_EQ(y[3], 5.0F + 9.0F);
}

TEST(Conv2dLayer, RejectsBadInput) {
    Conv2d conv(2, 4, 3);
    EXPECT_THROW(conv.forward(Tensor({1, 1, 5, 5}), false), std::invalid_argument);
    EXPECT_THROW(conv.forward(Tensor({1, 2, 2, 2}), false), std::invalid_argument);
}

TEST(MaxPoolLayer, PicksMaxAndRoutesGradient) {
    MaxPool2d pool;
    const Tensor x({1, 1, 2, 2}, {1.0F, 5.0F, 3.0F, 2.0F});
    const Tensor y = pool.forward(x, false);
    ASSERT_EQ(y.size(), 1u);
    EXPECT_FLOAT_EQ(y[0], 5.0F);
    const Tensor g = pool.backward(Tensor({1, 1, 1, 1}, {7.0F}));
    EXPECT_FLOAT_EQ(g[0], 0.0F);
    EXPECT_FLOAT_EQ(g[1], 7.0F);
    EXPECT_FLOAT_EQ(g[2], 0.0F);
}

TEST(MaxPoolLayer, OddSizesDropTrailing) {
    MaxPool2d pool;
    const Tensor x({1, 1, 5, 5});
    const Tensor y = pool.forward(x, false);
    EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 2, 2}));
}

TEST(DropoutLayer, IdentityAtEval) {
    Dropout drop(0.5);
    stats::Rng rng(2);
    drop.attach_rng(&rng);
    const Tensor x({1, 8}, {1, 2, 3, 4, 5, 6, 7, 8});
    const Tensor y = drop.forward(x, false);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(DropoutLayer, TrainModeZeroesAndScales) {
    Dropout drop(0.5);
    stats::Rng rng(3);
    drop.attach_rng(&rng);
    Tensor x({1, 1000});
    x.fill(1.0F);
    const Tensor y = drop.forward(x, true);
    int zeros = 0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        if (y[i] == 0.0F) {
            ++zeros;
        } else {
            EXPECT_FLOAT_EQ(y[i], 2.0F); // inverted scaling 1/(1-0.5)
        }
    }
    EXPECT_NEAR(zeros / 1000.0, 0.5, 0.08);
}

TEST(DropoutLayer, RequiresRngForTraining) {
    Dropout drop(0.3);
    EXPECT_THROW(drop.forward(Tensor({1, 4}), true), std::logic_error);
    EXPECT_THROW(Dropout(1.0), std::invalid_argument);
    EXPECT_THROW(Dropout(-0.1), std::invalid_argument);
}

TEST(EmbeddingLayer, LooksUpRows) {
    Embedding emb(4, 2);
    auto params = emb.parameters();
    *params[0].values = {0, 0, 1, 1, 2, 2, 3, 3}; // row i = (i, i)
    const Tensor ids({1, 3}, {2.0F, 0.0F, 3.0F});
    const Tensor y = emb.forward(ids, false);
    ASSERT_EQ(y.shape(), (std::vector<std::size_t>{1, 3, 2}));
    EXPECT_FLOAT_EQ(y[0], 2.0F);
    EXPECT_FLOAT_EQ(y[2], 0.0F);
    EXPECT_FLOAT_EQ(y[4], 3.0F);
}

TEST(EmbeddingLayer, BackwardScattersIntoRows) {
    Embedding emb(3, 1);
    auto params = emb.parameters();
    *params[0].values = {0.0F, 0.0F, 0.0F};
    const Tensor ids({1, 2}, {1.0F, 1.0F});
    (void)emb.forward(ids, true);
    (void)emb.backward(Tensor({1, 2, 1}, {0.5F, 0.25F}));
    EXPECT_FLOAT_EQ((*params[0].grads)[1], 0.75F);
    EXPECT_FLOAT_EQ((*params[0].grads)[0], 0.0F);
}

TEST(EmbeddingLayer, RejectsOutOfVocab) {
    Embedding emb(3, 2);
    EXPECT_THROW(emb.forward(Tensor({1, 1}, {5.0F}), false), std::out_of_range);
}

TEST(LstmLayer, OutputShapeAndFiniteness) {
    Lstm lstm(4, 6);
    stats::Rng rng(4);
    lstm.initialize(rng);
    Tensor x({2, 5, 4});
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    const Tensor h = lstm.forward(x, true);
    EXPECT_EQ(h.shape(), (std::vector<std::size_t>{2, 6}));
    EXPECT_TRUE(h.all_finite());
    const Tensor g = lstm.backward(Tensor({2, 6}, std::vector<float>(12, 0.1F)));
    EXPECT_EQ(g.shape(), x.shape());
    EXPECT_TRUE(g.all_finite());
}

TEST(LstmLayer, HiddenStateBoundedByTanh) {
    Lstm lstm(3, 4);
    stats::Rng rng(5);
    lstm.initialize(rng);
    Tensor x({1, 8, 3});
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = static_cast<float>(rng.uniform(-3.0, 3.0));
    }
    const Tensor h = lstm.forward(x, false);
    for (std::size_t i = 0; i < h.size(); ++i) {
        EXPECT_LE(std::fabs(h[i]), 1.0F);
    }
}

TEST(LstmLayer, RejectsWrongInputShape) {
    Lstm lstm(3, 4);
    EXPECT_THROW(lstm.forward(Tensor({2, 5}), false), std::invalid_argument);
    EXPECT_THROW(lstm.forward(Tensor({2, 5, 7}), false), std::invalid_argument);
}

} // namespace
} // namespace fmore::ml
