#include <gtest/gtest.h>

#include <cmath>

#include "fmore/ml/loss.hpp"

namespace fmore::ml {
namespace {

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
    SoftmaxCrossEntropy loss;
    const Tensor logits({2, 4});
    const double value = loss.forward(logits, {0, 3});
    EXPECT_NEAR(value, std::log(4.0), 1e-6);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectHasLowLoss) {
    SoftmaxCrossEntropy loss;
    const Tensor logits({1, 3}, {10.0F, 0.0F, 0.0F});
    EXPECT_LT(loss.forward(logits, {0}), 1e-3);
    const Tensor wrong({1, 3}, {10.0F, 0.0F, 0.0F});
    EXPECT_GT(loss.forward(wrong, {1}), 5.0);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
    SoftmaxCrossEntropy loss;
    const Tensor logits({2, 3}, {1.0F, 2.0F, 0.5F, -1.0F, 0.0F, 1.0F});
    (void)loss.forward(logits, {1, 2});
    const Tensor grad = loss.backward();
    for (std::size_t b = 0; b < 2; ++b) {
        double row = 0.0;
        for (std::size_t c = 0; c < 3; ++c) row += grad[b * 3 + c];
        EXPECT_NEAR(row, 0.0, 1e-6);
    }
}

TEST(SoftmaxCrossEntropy, GradientSignAtLabel) {
    SoftmaxCrossEntropy loss;
    const Tensor logits({1, 2}, {0.0F, 0.0F});
    (void)loss.forward(logits, {0});
    const Tensor grad = loss.backward();
    EXPECT_LT(grad[0], 0.0F); // pushes label prob up
    EXPECT_GT(grad[1], 0.0F);
}

TEST(SoftmaxCrossEntropy, NumericallyStableForLargeLogits) {
    SoftmaxCrossEntropy loss;
    const Tensor logits({1, 3}, {1000.0F, 999.0F, 998.0F});
    const double value = loss.forward(logits, {0});
    EXPECT_TRUE(std::isfinite(value));
    EXPECT_LT(value, 1.0);
}

TEST(SoftmaxCrossEntropy, PredictionsAreArgmax) {
    SoftmaxCrossEntropy loss;
    const Tensor logits({2, 3}, {0.1F, 0.9F, 0.2F, 2.0F, -1.0F, 0.0F});
    (void)loss.forward(logits, {0, 0});
    const auto preds = loss.predictions();
    EXPECT_EQ(preds[0], 1);
    EXPECT_EQ(preds[1], 0);
}

TEST(SoftmaxCrossEntropy, RejectsBadInput) {
    SoftmaxCrossEntropy loss;
    EXPECT_THROW(loss.forward(Tensor({2, 3}), {0}), std::invalid_argument);
    EXPECT_THROW(loss.forward(Tensor({1, 3}), {7}), std::out_of_range);
    SoftmaxCrossEntropy fresh;
    EXPECT_THROW(fresh.backward(), std::logic_error);
}

TEST(Accuracy, CountsMatches) {
    EXPECT_DOUBLE_EQ(accuracy({1, 2, 3}, {1, 2, 0}), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(accuracy({0}, {0}), 1.0);
    EXPECT_THROW(accuracy({}, {}), std::invalid_argument);
    EXPECT_THROW(accuracy({1}, {1, 2}), std::invalid_argument);
}

} // namespace
} // namespace fmore::ml
