#include <gtest/gtest.h>

#include "fmore/ml/dense.hpp"
#include "fmore/ml/activations.hpp"
#include "fmore/ml/model.hpp"
#include "fmore/ml/model_zoo.hpp"
#include "fmore/ml/synthetic.hpp"

namespace fmore::ml {
namespace {

Model tiny_model(std::uint64_t seed) {
    Model model(seed);
    model.add(std::make_unique<Dense>(4, 8));
    model.add(std::make_unique<ReLU>());
    model.add(std::make_unique<Dense>(8, 3));
    return model;
}

TEST(Model, ParameterRoundTrip) {
    Model model = tiny_model(1);
    const auto params = model.get_parameters();
    EXPECT_EQ(params.size(), model.parameter_count());
    EXPECT_EQ(params.size(), 4u * 8u + 8u + 8u * 3u + 3u);

    std::vector<float> altered = params;
    for (float& p : altered) p += 1.0F;
    model.set_parameters(altered);
    EXPECT_EQ(model.get_parameters(), altered);
    model.set_parameters(params);
    EXPECT_EQ(model.get_parameters(), params);
}

TEST(Model, SetParametersRejectsWrongSize) {
    Model model = tiny_model(2);
    std::vector<float> wrong(model.parameter_count() + 1, 0.0F);
    EXPECT_THROW(model.set_parameters(wrong), std::invalid_argument);
    wrong.resize(model.parameter_count() - 1);
    EXPECT_THROW(model.set_parameters(wrong), std::invalid_argument);
}

TEST(Model, DifferentSeedsDifferentInit) {
    Model a = tiny_model(1);
    Model b = tiny_model(99);
    EXPECT_NE(a.get_parameters(), b.get_parameters());
    Model c = tiny_model(1);
    EXPECT_EQ(a.get_parameters(), c.get_parameters());
}

TEST(Model, SgdStepMovesAgainstGradient) {
    Model model = tiny_model(3);
    Dataset data;
    data.sample_shape = {4};
    data.num_classes = 3;
    stats::Rng rng(4);
    for (int i = 0; i < 32; ++i) {
        std::vector<float> feat(4);
        const int label = i % 3;
        for (auto& f : feat) f = static_cast<float>(rng.uniform(-1.0, 1.0));
        feat[static_cast<std::size_t>(label)] += 2.0F; // separable signal
        data.push_sample(feat, label);
    }
    std::vector<std::size_t> idx(32);
    for (std::size_t i = 0; i < 32; ++i) idx[i] = i;

    const double before = model.evaluate(data, idx).mean_loss;
    for (int e = 0; e < 30; ++e) model.train_epoch(data, idx, 8, 0.1);
    const double after = model.evaluate(data, idx).mean_loss;
    EXPECT_LT(after, before * 0.5);
    EXPECT_GT(model.evaluate(data, idx).accuracy, 0.9);
}

TEST(Model, TrainEpochHandlesEdgeCases) {
    Model model = tiny_model(5);
    Dataset data;
    data.sample_shape = {4};
    data.num_classes = 3;
    data.push_sample({1.0F, 0.0F, 0.0F, 0.0F}, 0);
    const TrainStats empty = model.train_epoch(data, {}, 8, 0.1);
    EXPECT_EQ(empty.samples, 0u);
    EXPECT_THROW(model.train_epoch(data, {0}, 0, 0.1), std::invalid_argument);
    const TrainStats one = model.train_epoch(data, {0}, 8, 0.1);
    EXPECT_EQ(one.samples, 1u);
}

TEST(ModelZoo, FactoriesProduceWorkingModels) {
    stats::Rng rng(6);
    // CNN on a small image batch.
    const ImageSpec img{1, 12, 12, 10};
    Model cnn = make_cnn(img, 7);
    Tensor x({2, 1, 12, 12});
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    EXPECT_EQ(cnn.forward(x, false).shape(), (std::vector<std::size_t>{2, 10}));

    const ImageSpec cif{3, 14, 14, 10};
    Model deep = make_cnn_deep(cif, 8);
    Tensor xc({2, 3, 14, 14});
    EXPECT_EQ(deep.forward(xc, false).shape(), (std::vector<std::size_t>{2, 10}));

    Model mlp = make_mlp(img, 9);
    EXPECT_EQ(mlp.forward(x, false).shape(), (std::vector<std::size_t>{2, 10}));

    const TextSpec text{32, 12, 10};
    Model lstm = make_lstm_classifier(text, 10);
    Tensor ids({2, 12});
    for (std::size_t i = 0; i < ids.size(); ++i)
        ids[i] = static_cast<float>(rng.uniform_int(0, 31));
    EXPECT_EQ(lstm.forward(ids, false).shape(), (std::vector<std::size_t>{2, 10}));
}

TEST(ModelZoo, ParameterCountsAreStable) {
    // Guards against silent architecture drift that would invalidate the
    // recorded experiment numbers.
    Model cnn = make_cnn(ImageSpec{1, 12, 12, 10}, 1);
    // conv 8*1*9+8 = 80; dense (8*5*5)->64: 12864; dense 64->10: 650.
    EXPECT_EQ(cnn.parameter_count(), 80u + 12864u + 650u);
    Model lstm = make_lstm_classifier(TextSpec{32, 12, 10}, 1);
    // embed 32*16=512; lstm 4*32*(16+32)+128 = 6272; dense 32->10: 330.
    EXPECT_EQ(lstm.parameter_count(), 512u + 6272u + 330u);
}

} // namespace
} // namespace fmore::ml
