#include <gtest/gtest.h>

#include <cmath>

#include "fmore/numeric/ode.hpp"

namespace fmore::numeric {
namespace {

// y' = y, y(0) = 1 -> y(1) = e.
TEST(Euler, ExponentialGrowthConverges) {
    const OdeRhs f = [](double, double y) { return y; };
    const double coarse = euler_final(f, 0.0, 1.0, 1.0, 50);
    const double fine = euler_final(f, 0.0, 1.0, 1.0, 5000);
    EXPECT_NEAR(fine, std::exp(1.0), 5e-4);
    EXPECT_LT(std::fabs(fine - std::exp(1.0)), std::fabs(coarse - std::exp(1.0)));
}

TEST(Euler, FirstOrderErrorScaling) {
    const OdeRhs f = [](double, double y) { return y; };
    const double e1 = std::fabs(euler_final(f, 0.0, 1.0, 1.0, 100) - std::exp(1.0));
    const double e2 = std::fabs(euler_final(f, 0.0, 1.0, 1.0, 200) - std::exp(1.0));
    // Halving h should roughly halve the error (global order 1).
    EXPECT_NEAR(e1 / e2, 2.0, 0.2);
}

TEST(RungeKutta4, MuchMoreAccurateThanEuler) {
    const OdeRhs f = [](double x, double y) { return std::sin(x) - 0.3 * y; };
    const double reference = runge_kutta4_final(f, 0.0, 4.0, 1.0, 20000);
    const double rk = runge_kutta4_final(f, 0.0, 4.0, 1.0, 64);
    const double eu = euler_final(f, 0.0, 4.0, 1.0, 64);
    EXPECT_LT(std::fabs(rk - reference), std::fabs(eu - reference));
    EXPECT_NEAR(rk, reference, 1e-6);
}

TEST(RungeKutta4, FourthOrderErrorScaling) {
    const OdeRhs f = [](double, double y) { return y; };
    const double e1 = std::fabs(runge_kutta4_final(f, 0.0, 1.0, 1.0, 10) - std::exp(1.0));
    const double e2 = std::fabs(runge_kutta4_final(f, 0.0, 1.0, 1.0, 20) - std::exp(1.0));
    EXPECT_NEAR(e1 / e2, 16.0, 4.0);
}

TEST(OdeSolvers, BackwardIntegration) {
    // y' = 1 integrated from 1 to 0 should subtract 1.
    const OdeRhs f = [](double, double) { return 1.0; };
    EXPECT_NEAR(euler_final(f, 1.0, 0.0, 5.0, 100), 4.0, 1e-12);
    EXPECT_NEAR(runge_kutta4_final(f, 1.0, 0.0, 5.0, 100), 4.0, 1e-12);
}

TEST(OdeSolvers, TrajectoryHasExpectedShape) {
    const OdeRhs f = [](double, double) { return 2.0; };
    const auto traj = euler(f, 0.0, 1.0, 0.0, 4);
    ASSERT_EQ(traj.size(), 5u);
    EXPECT_DOUBLE_EQ(traj.front().x, 0.0);
    EXPECT_DOUBLE_EQ(traj.back().x, 1.0);
    EXPECT_NEAR(traj.back().y, 2.0, 1e-12);
    EXPECT_NEAR(traj[2].y, 1.0, 1e-12);
}

TEST(OdeSolvers, ZeroStepsRejected) {
    const OdeRhs f = [](double, double) { return 0.0; };
    EXPECT_THROW(euler(f, 0.0, 1.0, 0.0, 0), std::invalid_argument);
    EXPECT_THROW(runge_kutta4(f, 0.0, 1.0, 0.0, 0), std::invalid_argument);
}

// The exact linear ODE the paper's payment derivation produces (Eq. 12):
// b' + phi(u) b = u phi(u) with phi constant has solution
// b(u) = u - 1/phi + C exp(-phi u).
TEST(OdeSolvers, PaperLinearFormAgainstClosedForm) {
    const double phi = 3.0;
    const OdeRhs f = [phi](double u, double b) { return (u - b) * phi; };
    const double b0 = 0.0;
    const double c_const = (b0 - (0.0 - 1.0 / phi)); // at u=0
    auto closed = [&](double u) { return u - 1.0 / phi + c_const * std::exp(-phi * u); };
    EXPECT_NEAR(euler_final(f, 0.0, 2.0, b0, 4000), closed(2.0), 1e-3);
    EXPECT_NEAR(runge_kutta4_final(f, 0.0, 2.0, b0, 200), closed(2.0), 1e-8);
}

} // namespace
} // namespace fmore::numeric
