#include <gtest/gtest.h>

#include <cmath>

#include "fmore/numeric/optimize.hpp"

namespace fmore::numeric {
namespace {

TEST(GoldenSection, FindsParabolaPeak) {
    const auto opt = golden_section_maximize(
        [](double x) { return -(x - 1.7) * (x - 1.7) + 4.0; }, 0.0, 5.0);
    EXPECT_NEAR(opt.x, 1.7, 1e-6);
    EXPECT_NEAR(opt.value, 4.0, 1e-10);
}

TEST(GoldenSection, PeakAtBoundary) {
    const auto opt = golden_section_maximize([](double x) { return x; }, 0.0, 2.0);
    EXPECT_NEAR(opt.x, 2.0, 1e-6);
}

TEST(GridRefine, HandlesMultimodal) {
    // Two peaks; the global one is at x ~ 4.71 (height 2), local at ~1.57.
    const auto f = [](double x) {
        return std::sin(x) < 0 ? -2.0 * std::sin(x) : std::sin(x);
    };
    const auto opt = grid_refine_maximize(f, 0.0, 6.28, 64);
    EXPECT_NEAR(opt.x, 4.712, 5e-3);
    EXPECT_NEAR(opt.value, 2.0, 1e-5);
}

TEST(GridRefine, DegenerateIntervalReturnsPoint) {
    const auto opt = grid_refine_maximize([](double x) { return -x * x; }, 2.0, 2.0);
    EXPECT_DOUBLE_EQ(opt.x, 2.0);
}

TEST(GridRefine, RejectsInvertedBounds) {
    EXPECT_THROW(grid_refine_maximize([](double x) { return x; }, 1.0, 0.0),
                 std::invalid_argument);
}

TEST(CoordinateAscent, SeparableQuadratic) {
    const auto f = [](const std::vector<double>& q) {
        return -(q[0] - 0.3) * (q[0] - 0.3) - (q[1] - 0.8) * (q[1] - 0.8);
    };
    const auto opt = coordinate_ascent_maximize(f, {0.0, 0.0}, {1.0, 1.0});
    EXPECT_NEAR(opt.x[0], 0.3, 1e-4);
    EXPECT_NEAR(opt.x[1], 0.8, 1e-4);
}

TEST(CoordinateAscent, BilinearObjectiveFindsCorner) {
    // The paper's simulator objective s - c = 25*q1*q2 - theta*(6 q1 + 2 q2)
    // on the unit box has its max at a corner.
    const double theta = 0.5;
    const auto f = [theta](const std::vector<double>& q) {
        return 25.0 * q[0] * q[1] - theta * (6.0 * q[0] + 2.0 * q[1]);
    };
    const auto opt = coordinate_ascent_maximize(f, {0.0, 0.0}, {1.0, 1.0});
    EXPECT_NEAR(opt.x[0], 1.0, 1e-6);
    EXPECT_NEAR(opt.x[1], 1.0, 1e-6);
    EXPECT_NEAR(opt.value, 25.0 - theta * 8.0, 1e-9);
}

TEST(CoordinateAscent, CobbDouglasInterior) {
    // max (q1 q2)^{1/4} - (q1 + q2)/2: first-order conditions give
    // q1 = q2 = 1/4 with value (1/16)^{1/4} - 1/4 = 1/4.
    const auto f = [](const std::vector<double>& q) {
        return std::pow(q[0] * q[1], 0.25) - 0.5 * (q[0] + q[1]);
    };
    const auto opt = coordinate_ascent_maximize(f, {0.001, 0.001}, {1.0, 1.0}, 64, 48);
    EXPECT_NEAR(opt.x[0], 0.25, 2e-2);
    EXPECT_NEAR(opt.x[1], 0.25, 2e-2);
    EXPECT_NEAR(opt.value, 0.25, 1e-3);
}

TEST(CoordinateAscent, RejectsBadBounds) {
    const auto f = [](const std::vector<double>&) { return 0.0; };
    EXPECT_THROW(coordinate_ascent_maximize(f, {0.0}, {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(coordinate_ascent_maximize(f, {}, {}), std::invalid_argument);
    EXPECT_THROW(coordinate_ascent_maximize(f, {1.0}, {0.0}), std::invalid_argument);
}

} // namespace
} // namespace fmore::numeric
