#include <gtest/gtest.h>

#include <cmath>

#include "fmore/numeric/root_finding.hpp"

namespace fmore::numeric {
namespace {

TEST(Bisect, FindsSimpleRoot) {
    const auto root = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
    ASSERT_TRUE(root.has_value());
    EXPECT_NEAR(*root, std::sqrt(2.0), 1e-9);
}

TEST(Bisect, ReturnsNulloptWithoutSignChange) {
    const auto root = bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0);
    EXPECT_FALSE(root.has_value());
}

TEST(Bisect, ExactRootAtEndpoint) {
    const auto root = bisect([](double x) { return x; }, 0.0, 1.0);
    ASSERT_TRUE(root.has_value());
    EXPECT_DOUBLE_EQ(*root, 0.0);
}

TEST(Brent, FindsTranscendentalRoot) {
    const auto root = brent([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
    ASSERT_TRUE(root.has_value());
    EXPECT_NEAR(*root, 0.7390851332151607, 1e-9);
}

TEST(Brent, AgreesWithBisect) {
    const auto f = [](double x) { return std::exp(x) - 3.0; };
    const auto rb = bisect(f, 0.0, 2.0);
    const auto rr = brent(f, 0.0, 2.0);
    ASSERT_TRUE(rb.has_value());
    ASSERT_TRUE(rr.has_value());
    EXPECT_NEAR(*rb, *rr, 1e-8);
    EXPECT_NEAR(*rr, std::log(3.0), 1e-9);
}

TEST(Brent, NoSignChangeReturnsNullopt) {
    EXPECT_FALSE(brent([](double) { return 1.0; }, 0.0, 1.0).has_value());
}

TEST(Brent, SteepFunction) {
    const auto root = brent([](double x) { return std::pow(x, 9) - 0.5; }, 0.0, 1.0);
    ASSERT_TRUE(root.has_value());
    EXPECT_NEAR(std::pow(*root, 9), 0.5, 1e-8);
}

TEST(Bisect, InvertedBoundsThrow) {
    EXPECT_THROW(bisect([](double x) { return x; }, 1.0, 0.0), std::invalid_argument);
}

} // namespace
} // namespace fmore::numeric
