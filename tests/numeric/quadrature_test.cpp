#include <gtest/gtest.h>

#include <cmath>

#include "fmore/numeric/quadrature.hpp"

namespace fmore::numeric {
namespace {

TEST(Trapezoid, ExactOnLinear) {
    const Integrand f = [](double x) { return 3.0 * x + 1.0; };
    EXPECT_NEAR(trapezoid(f, 0.0, 2.0, 4), 8.0, 1e-12);
}

TEST(Trapezoid, ConvergesOnSmooth) {
    const Integrand f = [](double x) { return std::sin(x); };
    EXPECT_NEAR(trapezoid(f, 0.0, M_PI, 2000), 2.0, 1e-5);
}

TEST(Trapezoid, SignedWhenReversed) {
    const Integrand f = [](double) { return 1.0; };
    EXPECT_NEAR(trapezoid(f, 1.0, 0.0, 10), -1.0, 1e-12);
}

TEST(Simpson, ExactOnCubic) {
    const Integrand f = [](double x) { return x * x * x - 2.0 * x; };
    // integral over [0,2] = 4 - 4 = 0.
    EXPECT_NEAR(simpson(f, 0.0, 2.0, 2), 0.0, 1e-12);
}

TEST(Simpson, OddPanelCountRoundedUp) {
    const Integrand f = [](double x) { return x * x; };
    EXPECT_NEAR(simpson(f, 0.0, 3.0, 3), 9.0, 1e-12);
}

TEST(Simpson, BeatsTrapezoidOnSmooth) {
    const Integrand f = [](double x) { return std::exp(x); };
    const double truth = std::exp(1.0) - 1.0;
    const double ts = std::fabs(trapezoid(f, 0.0, 1.0, 16) - truth);
    const double ss = std::fabs(simpson(f, 0.0, 1.0, 16) - truth);
    EXPECT_LT(ss, ts);
}

TEST(TabulatedTrapezoid, MatchesFunctionForm) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 0; i <= 100; ++i) {
        const double x = i / 100.0;
        xs.push_back(x);
        ys.push_back(x * x);
    }
    EXPECT_NEAR(trapezoid_tabulated(xs, ys), 1.0 / 3.0, 1e-4);
}

TEST(TabulatedTrapezoid, HandlesNonUniformGrid) {
    const std::vector<double> xs{0.0, 0.1, 0.5, 1.0};
    const std::vector<double> ys{0.0, 0.1, 0.5, 1.0}; // y = x
    EXPECT_NEAR(trapezoid_tabulated(xs, ys), 0.5, 1e-12);
}

TEST(TabulatedTrapezoid, RejectsBadInput) {
    EXPECT_THROW(trapezoid_tabulated({0.0}, {1.0}), std::invalid_argument);
    EXPECT_THROW(trapezoid_tabulated({0.0, 1.0}, {1.0}), std::invalid_argument);
}

TEST(CumulativeTrapezoid, PrefixSumsMatch) {
    const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
    const std::vector<double> ys{1.0, 1.0, 1.0, 1.0};
    const auto cum = cumulative_trapezoid(xs, ys);
    ASSERT_EQ(cum.size(), 4u);
    EXPECT_DOUBLE_EQ(cum[0], 0.0);
    EXPECT_DOUBLE_EQ(cum[1], 1.0);
    EXPECT_DOUBLE_EQ(cum[3], 3.0);
}

TEST(CumulativeTrapezoid, LastEntryEqualsFullIntegral) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 0; i <= 64; ++i) {
        xs.push_back(i / 64.0);
        ys.push_back(std::cos(xs.back()));
    }
    const auto cum = cumulative_trapezoid(xs, ys);
    EXPECT_NEAR(cum.back(), trapezoid_tabulated(xs, ys), 1e-14);
}

} // namespace
} // namespace fmore::numeric
