#include <gtest/gtest.h>

#include "fmore/numeric/interpolation.hpp"

namespace fmore::numeric {
namespace {

TEST(LinearInterpolator, ExactAtKnots) {
    const LinearInterpolator f({0.0, 1.0, 2.0}, {5.0, 7.0, 4.0});
    EXPECT_DOUBLE_EQ(f(0.0), 5.0);
    EXPECT_DOUBLE_EQ(f(1.0), 7.0);
    EXPECT_DOUBLE_EQ(f(2.0), 4.0);
}

TEST(LinearInterpolator, MidpointsAreAverages) {
    const LinearInterpolator f({0.0, 2.0}, {0.0, 10.0});
    EXPECT_DOUBLE_EQ(f(1.0), 5.0);
    EXPECT_DOUBLE_EQ(f(0.5), 2.5);
}

TEST(LinearInterpolator, ClampsOutsideRange) {
    const LinearInterpolator f({0.0, 1.0}, {3.0, 8.0});
    EXPECT_DOUBLE_EQ(f(-1.0), 3.0);
    EXPECT_DOUBLE_EQ(f(2.0), 8.0);
}

TEST(LinearInterpolator, RejectsBadKnots) {
    EXPECT_THROW(LinearInterpolator({0.0}, {1.0}), std::invalid_argument);
    EXPECT_THROW(LinearInterpolator({0.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(LinearInterpolator({1.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(LinearInterpolator({0.0, 1.0}, {1.0}), std::invalid_argument);
}

TEST(InverseOf, InvertsIncreasingFunction) {
    const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
    const std::vector<double> ys{1.0, 3.0, 7.0, 15.0};
    const auto inv = LinearInterpolator::inverse_of(xs, ys);
    EXPECT_DOUBLE_EQ(inv(1.0), 0.0);
    EXPECT_DOUBLE_EQ(inv(15.0), 3.0);
    EXPECT_DOUBLE_EQ(inv(5.0), 1.5);
}

TEST(InverseOf, InvertsDecreasingFunction) {
    // The equilibrium solver inverts the decreasing map theta -> u0(theta).
    const std::vector<double> xs{0.5, 1.0, 1.5};
    const std::vector<double> ys{21.0, 17.0, 13.0};
    const auto inv = LinearInterpolator::inverse_of(xs, ys);
    EXPECT_DOUBLE_EQ(inv(21.0), 0.5);
    EXPECT_DOUBLE_EQ(inv(13.0), 1.5);
    EXPECT_NEAR(inv(17.0), 1.0, 1e-12);
    EXPECT_NEAR(inv(15.0), 1.25, 1e-12);
}

TEST(InverseOf, CollapsesPlateaus) {
    // A flat stretch (equal u0 for neighbouring thetas after the isotonic
    // cleanup) must not break inversion.
    const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
    const std::vector<double> ys{10.0, 8.0, 8.0, 5.0};
    const auto inv = LinearInterpolator::inverse_of(xs, ys);
    EXPECT_DOUBLE_EQ(inv(10.0), 0.0);
    EXPECT_DOUBLE_EQ(inv(5.0), 3.0);
}

TEST(InverseOf, RejectsNonMonotone) {
    const std::vector<double> xs{0.0, 1.0, 2.0};
    const std::vector<double> ys{0.0, 2.0, 1.0};
    EXPECT_THROW(LinearInterpolator::inverse_of(xs, ys), std::invalid_argument);
}

TEST(InverseOf, RoundTripsThroughForwardMap) {
    const std::vector<double> xs{0.0, 0.5, 1.0, 1.5, 2.0};
    const std::vector<double> ys{0.0, 0.25, 1.0, 2.25, 4.0}; // y = x^2 sampled
    const LinearInterpolator fwd(xs, ys);
    const auto inv = LinearInterpolator::inverse_of(xs, ys);
    for (double x = 0.0; x <= 2.0; x += 0.25) {
        EXPECT_NEAR(inv(fwd(x)), x, 1e-12);
    }
}

} // namespace
} // namespace fmore::numeric
