#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fmore/core/simulation.hpp"
#include "fmore/core/trials.hpp"

namespace fmore::core {
namespace {

/// Tiny configuration so a trial runs in well under a second.
SimulationConfig tiny_config() {
    SimulationConfig config;
    config.train_samples = 900;
    config.test_samples = 300;
    config.num_nodes = 20;
    config.winners = 5;
    config.rounds = 3;
    config.data_lo = 10;
    config.data_hi = 40;
    config.eval_cap = 200;
    return config;
}

fl::RunResult synthetic_run(std::size_t trial_index) {
    fl::RunResult run;
    fl::RoundMetrics m;
    m.round = 1;
    m.test_accuracy = 0.1 * static_cast<double>(trial_index);
    run.rounds.push_back(m);
    return run;
}

TEST(RunTrials, PreservesTrialIndexOrder) {
    const auto runs = run_trials(8, synthetic_run, {.threads = 4});
    ASSERT_EQ(runs.size(), 8u);
    for (std::size_t t = 0; t < runs.size(); ++t) {
        EXPECT_DOUBLE_EQ(runs[t].rounds.front().test_accuracy,
                         0.1 * static_cast<double>(t));
    }
}

TEST(RunTrials, EachIndexRunsExactlyOnce) {
    std::atomic<int> calls{0};
    std::mutex mutex;
    std::set<std::size_t> seen;
    const auto runs = run_trials(
        17,
        [&](std::size_t t) {
            calls.fetch_add(1);
            const std::lock_guard<std::mutex> lock(mutex);
            seen.insert(t);
            return synthetic_run(t);
        },
        {.threads = 4, .batch = 3});
    EXPECT_EQ(runs.size(), 17u);
    EXPECT_EQ(calls.load(), 17);
    EXPECT_EQ(seen.size(), 17u);
}

TEST(RunTrials, ZeroTrialsAndNullFunction) {
    EXPECT_TRUE(run_trials(0, synthetic_run).empty());
    EXPECT_THROW(run_trials(3, TrialFn{}), std::invalid_argument);
}

TEST(RunTrials, PropagatesFirstException) {
    EXPECT_THROW(run_trials(
                     6,
                     [](std::size_t t) -> fl::RunResult {
                         if (t == 3) throw std::runtime_error("trial 3 boom");
                         return synthetic_run(t);
                     },
                     {.threads = 3}),
                 std::runtime_error);
}

TEST(ResolveTrialThreads, CapsAndDefaults) {
    EXPECT_EQ(resolve_trial_threads(8, 3), 3u);  // capped at trial count
    EXPECT_EQ(resolve_trial_threads(2, 100), 2u);
    EXPECT_EQ(resolve_trial_threads(0, 1), 1u);
    EXPECT_EQ(resolve_trial_threads(0, 0), 0u);
    // auto never resolves to zero workers for real work
    EXPECT_GE(resolve_trial_threads(0, 64), 1u);
}

// The acceptance property: one root seed => bit-identical averaged series
// no matter how many workers ran the trials.
TEST(RunSimulationTrials, DeterministicAcrossThreadCounts) {
    const SimulationConfig config = tiny_config();
    constexpr std::size_t kTrials = 4;
    const AveragedSeries serial =
        averaged_simulation(config, Strategy::fmore, kTrials, {.threads = 1});
    for (const std::size_t threads : {2ul, 4ul}) {
        const AveragedSeries parallel =
            averaged_simulation(config, Strategy::fmore, kTrials, {.threads = threads});
        ASSERT_EQ(parallel.rounds(), serial.rounds());
        for (std::size_t r = 0; r < serial.rounds(); ++r) {
            // EXPECT_EQ, not NEAR: same trials, same slots, same floats.
            EXPECT_EQ(parallel.accuracy[r], serial.accuracy[r]) << "threads=" << threads;
            EXPECT_EQ(parallel.loss[r], serial.loss[r]);
            EXPECT_EQ(parallel.payment[r], serial.payment[r]);
            EXPECT_EQ(parallel.score[r], serial.score[r]);
            EXPECT_EQ(parallel.seconds[r], serial.seconds[r]);
            EXPECT_EQ(parallel.cumulative_seconds[r], serial.cumulative_seconds[r]);
        }
    }
}

// threads=1 must reproduce the pre-runner serial loop exactly.
TEST(RunSimulationTrials, SingleThreadMatchesLegacySerialLoop) {
    const SimulationConfig config = tiny_config();
    constexpr std::size_t kTrials = 3;
    std::vector<fl::RunResult> legacy;
    for (std::size_t t = 0; t < kTrials; ++t) {
        SimulationTrial trial(config, t);
        legacy.push_back(trial.run(Strategy::randfl));
    }
    const auto pooled =
        run_simulation_trials(config, Strategy::randfl, kTrials, {.threads = 1});
    ASSERT_EQ(pooled.size(), legacy.size());
    for (std::size_t t = 0; t < kTrials; ++t) {
        ASSERT_EQ(pooled[t].rounds.size(), legacy[t].rounds.size());
        for (std::size_t r = 0; r < legacy[t].rounds.size(); ++r) {
            EXPECT_EQ(pooled[t].rounds[r].test_accuracy, legacy[t].rounds[r].test_accuracy);
            EXPECT_EQ(pooled[t].rounds[r].test_loss, legacy[t].rounds[r].test_loss);
            EXPECT_EQ(pooled[t].rounds[r].mean_winner_payment,
                      legacy[t].rounds[r].mean_winner_payment);
        }
    }
}

} // namespace
} // namespace fmore::core
