// The durable-run container (util/snapshot.hpp) and the RunCheckpoint
// serialization built on it. The contract under test: a checkpoint is
// either consumed whole or rejected whole — every truncated prefix and
// every single-byte corruption of a valid file raises SnapshotError with
// context, never a crash, never a half-loaded checkpoint — and a clean
// file round-trips bit-exactly.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "fmore/core/run_checkpoint.hpp"
#include "fmore/util/snapshot.hpp"

namespace fmore::core {
namespace {

namespace fs = std::filesystem;
using util::ByteReader;
using util::ByteWriter;
using util::SnapshotError;
using util::SnapshotReader;
using util::SnapshotWriter;

/// Scratch directory cleaned up per test.
class TempDir {
public:
    TempDir() {
        static int counter = 0;
        dir_ = fs::temp_directory_path()
               / ("fmore_snapshot_test_" + std::to_string(::getpid()) + "_"
                  + std::to_string(counter++));
        fs::create_directories(dir_);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    [[nodiscard]] std::string path(const std::string& name) const {
        return (dir_ / name).string();
    }
    [[nodiscard]] std::string str() const { return dir_.string(); }

private:
    fs::path dir_;
};

// ---------------------------------------------------------------------------
// ByteWriter / ByteReader
// ---------------------------------------------------------------------------

TEST(Snapshot, ByteCodecRoundTripsEveryType) {
    std::mt19937_64 gen(42);
    for (int iter = 0; iter < 20; ++iter) {
        const std::uint32_t a = static_cast<std::uint32_t>(gen());
        const std::uint64_t b = gen();
        const float c = static_cast<float>(gen()) / 3.0f;
        const double d = static_cast<double>(gen()) / 7.0;
        std::string s;
        for (std::size_t i = gen() % 40; i-- > 0;)
            s.push_back(static_cast<char>(gen() % 256));
        std::vector<float> fv(gen() % 17);
        for (float& f : fv) f = static_cast<float>(gen()) * 1e-9f;
        std::vector<double> dv(gen() % 17);
        for (double& x : dv) x = static_cast<double>(gen()) * 1e-9;
        std::vector<std::uint64_t> uv(gen() % 17);
        for (std::uint64_t& u : uv) u = gen();

        ByteWriter w;
        w.put_u32(a);
        w.put_u64(b);
        w.put_f32(c);
        w.put_f64(d);
        w.put_str(s);
        w.put_f32_vec(fv);
        w.put_f64_vec(dv);
        w.put_u64_vec(uv);

        const std::vector<std::uint8_t> bytes = w.bytes();
        ByteReader r(bytes.data(), bytes.size(), "test");
        EXPECT_EQ(r.get_u32(), a);
        EXPECT_EQ(r.get_u64(), b);
        EXPECT_EQ(r.get_f32(), c);
        EXPECT_EQ(r.get_f64(), d);
        EXPECT_EQ(r.get_str(), s);
        EXPECT_EQ(r.get_f32_vec(), fv);
        EXPECT_EQ(r.get_f64_vec(), dv);
        EXPECT_EQ(r.get_u64_vec(), uv);
        EXPECT_EQ(r.remaining(), 0u);
        EXPECT_NO_THROW(r.expect_end());
    }
}

TEST(Snapshot, ReaderRejectsEveryTruncatedPrefix) {
    ByteWriter w;
    w.put_u32(7);
    w.put_u64(9);
    w.put_f64(3.5);
    w.put_str("hello");
    w.put_u64_vec({1, 2, 3});
    const std::vector<std::uint8_t> bytes = w.bytes();
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        ByteReader r(bytes.data(), cut, "cut");
        EXPECT_THROW(
            {
                (void)r.get_u32();
                (void)r.get_u64();
                (void)r.get_f64();
                (void)r.get_str();
                (void)r.get_u64_vec();
            },
            SnapshotError)
            << "prefix of " << cut << " bytes was accepted";
    }
}

TEST(Snapshot, ExpectEndRejectsLeftoverBytes) {
    ByteWriter w;
    w.put_u32(1);
    w.put_u32(2);
    const std::vector<std::uint8_t> bytes = w.bytes();
    ByteReader r(bytes.data(), bytes.size(), "leftover");
    (void)r.get_u32();
    EXPECT_THROW(r.expect_end(), SnapshotError);
}

// ---------------------------------------------------------------------------
// SnapshotWriter / SnapshotReader container
// ---------------------------------------------------------------------------

SnapshotWriter sample_writer() {
    SnapshotWriter writer;
    ByteWriter a;
    a.put_str("alpha");
    a.put_u64(123456789ULL);
    writer.add_section(1, a.take());
    ByteWriter b;
    b.put_f64_vec({1.0, -2.5, 3.25});
    writer.add_section(7, b.take());
    return writer;
}

TEST(Snapshot, ContainerRoundTripsSections) {
    const std::vector<std::uint8_t> bytes = sample_writer().serialize();
    const SnapshotReader reader = SnapshotReader::from_bytes(bytes, "mem");
    EXPECT_EQ(reader.section_count(), 2u);
    EXPECT_TRUE(reader.has_section(1));
    EXPECT_TRUE(reader.has_section(7));
    EXPECT_FALSE(reader.has_section(2));
    ByteReader r = reader.open_section(1);
    EXPECT_EQ(r.get_str(), "alpha");
    EXPECT_EQ(r.get_u64(), 123456789ULL);
    r.expect_end();
    ByteReader r7 = reader.open_section(7);
    EXPECT_EQ(r7.get_f64_vec(), (std::vector<double>{1.0, -2.5, 3.25}));
    EXPECT_THROW((void)reader.section(2), SnapshotError);
}

TEST(Snapshot, DuplicateSectionTagIsRejectedAtAdd) {
    SnapshotWriter writer;
    writer.add_section(3, {1, 2, 3});
    EXPECT_THROW(writer.add_section(3, {4, 5}), SnapshotError);
}

TEST(Snapshot, EveryTruncatedFilePrefixIsRejected) {
    const std::vector<std::uint8_t> bytes = sample_writer().serialize();
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
        EXPECT_THROW((void)SnapshotReader::from_bytes(std::move(prefix), "cut"),
                     SnapshotError)
            << "prefix of " << cut << " bytes parsed";
    }
}

TEST(Snapshot, EverySingleByteCorruptionIsRejected) {
    const std::vector<std::uint8_t> bytes = sample_writer().serialize();
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
        std::vector<std::uint8_t> bad = bytes;
        bad[pos] ^= 0x40;
        EXPECT_THROW((void)SnapshotReader::from_bytes(std::move(bad), "flip"),
                     SnapshotError)
            << "flip at byte " << pos << " parsed";
    }
}

TEST(Snapshot, TrailingBytesAreRejected) {
    std::vector<std::uint8_t> bytes = sample_writer().serialize();
    bytes.push_back(0);
    EXPECT_THROW((void)SnapshotReader::from_bytes(std::move(bytes), "trail"),
                 SnapshotError);
}

TEST(Snapshot, FileRoundTripLeavesNoTemp) {
    TempDir tmp;
    const std::string path = tmp.path("a.fmsnap");
    sample_writer().write_file(path);
    EXPECT_TRUE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".tmp"));
    const SnapshotReader reader = SnapshotReader::from_file(path);
    ByteReader r = reader.open_section(1);
    EXPECT_EQ(r.get_str(), "alpha");
}

TEST(Snapshot, MissingFileIsADiagnosisNotACrash) {
    EXPECT_THROW((void)SnapshotReader::from_file("/nonexistent/nope.fmsnap"),
                 SnapshotError);
}

TEST(Snapshot, ThrowingMidWriteNeverShadowsThePreviousFile) {
    TempDir tmp;
    const std::string path = tmp.path("b.fmsnap");
    sample_writer().write_file(path); // good generation 1
    SnapshotWriter gen2;
    gen2.add_section(1, {9, 9, 9});
    struct Abort {};
    EXPECT_THROW(gen2.write_file(path, [] { throw Abort{}; }), Abort);
    // The interrupted write unlinked its temp and left generation 1 intact.
    EXPECT_FALSE(fs::exists(path + ".tmp"));
    const SnapshotReader reader = SnapshotReader::from_file(path);
    ByteReader r = reader.open_section(1);
    EXPECT_EQ(r.get_str(), "alpha");
}

// ---------------------------------------------------------------------------
// RunCheckpoint save/load
// ---------------------------------------------------------------------------

RunCheckpoint sample_checkpoint() {
    RunCheckpoint ckpt;
    ckpt.spec_text = "mode = simulation\nseed = 7\n";
    ckpt.policy = "fmore";
    ckpt.trial_index = 2;
    ckpt.rng_state = "123 456 789";
    ckpt.model_params = {0.25f, -1.5f, 3.0f};
    ckpt.population.node_offset = 5;
    ckpt.population.salt_history = {11, 22, 33};
    ckpt.population.columns = {{1.0, 2.0}, {3.0, 4.0}};
    ckpt.banned_nodes = {3, 8};
    for (std::size_t round = 1; round <= 2; ++round) {
        fl::RoundMetrics m;
        m.round = round;
        m.test_accuracy = 0.5 + 0.1 * static_cast<double>(round);
        m.test_loss = 1.25;
        m.train_loss = 0.75;
        m.mean_winner_payment = 2.5;
        m.mean_winner_score = 0.125;
        m.round_seconds = 9.5;
        m.aggregated_updates = 4;
        m.mean_staleness = 0.5;
        m.dropped_shards = 1;
        fl::SelectedClient c;
        c.client = 42 + round;
        c.payment = 1.75;
        c.score = 0.5;
        if (round == 2) c.train_samples = 321;
        m.selection.selected.push_back(c);
        m.selection.all_scores = {0.5, 0.25};
        m.selection.scores_by_node = {0.0, 0.5, 0.25};
        m.selection.dropped_shards = {1};
        m.selection.shard_health = {3, 1, 2, 1, 1};
        m.selection.close_reason = round == 2 ? "quorum" : "";
        m.selection.close_time_s = 0.75;
        m.selection.arrived_bids = 6;
        m.selection.bid_quorum = 4;
        ckpt.rounds.push_back(m);
    }
    ckpt.completed_rounds = ckpt.rounds.size();
    fl::InFlightUpdate u;
    u.seq = 9;
    u.base_round = 1;
    u.weight = 0.5;
    u.arrival = 12.25;
    u.dropped = true;
    u.params = {1.0f, 2.0f};
    u.stats.mean_loss = 0.625;
    u.stats.samples = 17;
    ckpt.flight.push_back(u);
    ckpt.next_seq = 10;
    return ckpt;
}

void expect_checkpoints_equal(const RunCheckpoint& a, const RunCheckpoint& b) {
    EXPECT_EQ(a.spec_text, b.spec_text);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.trial_index, b.trial_index);
    EXPECT_EQ(a.completed_rounds, b.completed_rounds);
    EXPECT_EQ(a.rng_state, b.rng_state);
    EXPECT_EQ(a.model_params, b.model_params);
    EXPECT_EQ(a.population.node_offset, b.population.node_offset);
    EXPECT_EQ(a.population.salt_history, b.population.salt_history);
    EXPECT_EQ(a.population.columns, b.population.columns);
    EXPECT_EQ(a.banned_nodes, b.banned_nodes);
    ASSERT_EQ(a.rounds.size(), b.rounds.size());
    for (std::size_t i = 0; i < a.rounds.size(); ++i) {
        const fl::RoundMetrics& x = a.rounds[i];
        const fl::RoundMetrics& y = b.rounds[i];
        EXPECT_EQ(x.round, y.round);
        EXPECT_EQ(x.test_accuracy, y.test_accuracy);
        EXPECT_EQ(x.test_loss, y.test_loss);
        EXPECT_EQ(x.train_loss, y.train_loss);
        EXPECT_EQ(x.mean_winner_payment, y.mean_winner_payment);
        EXPECT_EQ(x.mean_winner_score, y.mean_winner_score);
        EXPECT_EQ(x.round_seconds, y.round_seconds);
        EXPECT_EQ(x.aggregated_updates, y.aggregated_updates);
        EXPECT_EQ(x.mean_staleness, y.mean_staleness);
        EXPECT_EQ(x.dropped_shards, y.dropped_shards);
        ASSERT_EQ(x.selection.selected.size(), y.selection.selected.size());
        for (std::size_t j = 0; j < x.selection.selected.size(); ++j) {
            EXPECT_EQ(x.selection.selected[j].client,
                      y.selection.selected[j].client);
            EXPECT_EQ(x.selection.selected[j].payment,
                      y.selection.selected[j].payment);
            EXPECT_EQ(x.selection.selected[j].score,
                      y.selection.selected[j].score);
            EXPECT_EQ(x.selection.selected[j].train_samples,
                      y.selection.selected[j].train_samples);
        }
        EXPECT_EQ(x.selection.all_scores, y.selection.all_scores);
        EXPECT_EQ(x.selection.scores_by_node, y.selection.scores_by_node);
        EXPECT_EQ(x.selection.dropped_shards, y.selection.dropped_shards);
        EXPECT_EQ(x.selection.shard_health.live_shards,
                  y.selection.shard_health.live_shards);
        EXPECT_EQ(x.selection.shard_health.corrupt_frames,
                  y.selection.shard_health.corrupt_frames);
        EXPECT_EQ(x.selection.shard_health.frame_retries,
                  y.selection.shard_health.frame_retries);
        EXPECT_EQ(x.selection.shard_health.evictions,
                  y.selection.shard_health.evictions);
        EXPECT_EQ(x.selection.shard_health.respawns,
                  y.selection.shard_health.respawns);
        EXPECT_EQ(x.selection.close_reason, y.selection.close_reason);
        EXPECT_EQ(x.selection.close_time_s, y.selection.close_time_s);
        EXPECT_EQ(x.selection.arrived_bids, y.selection.arrived_bids);
        EXPECT_EQ(x.selection.bid_quorum, y.selection.bid_quorum);
    }
    ASSERT_EQ(a.flight.size(), b.flight.size());
    for (std::size_t i = 0; i < a.flight.size(); ++i) {
        EXPECT_EQ(a.flight[i].seq, b.flight[i].seq);
        EXPECT_EQ(a.flight[i].base_round, b.flight[i].base_round);
        EXPECT_EQ(a.flight[i].weight, b.flight[i].weight);
        EXPECT_EQ(a.flight[i].arrival, b.flight[i].arrival);
        EXPECT_EQ(a.flight[i].dropped, b.flight[i].dropped);
        EXPECT_EQ(a.flight[i].params, b.flight[i].params);
        EXPECT_EQ(a.flight[i].stats.mean_loss, b.flight[i].stats.mean_loss);
        EXPECT_EQ(a.flight[i].stats.samples, b.flight[i].stats.samples);
    }
    EXPECT_EQ(a.next_seq, b.next_seq);
}

TEST(RunCheckpointIO, SaveLoadRoundTripsBitExactly) {
    TempDir tmp;
    const RunCheckpoint ckpt = sample_checkpoint();
    const std::string path = tmp.path(checkpoint_filename(2));
    save_checkpoint(ckpt, path);
    const RunCheckpoint loaded = load_checkpoint(path);
    expect_checkpoints_equal(ckpt, loaded);
}

TEST(RunCheckpointIO, TapeLengthMismatchIsRejected) {
    TempDir tmp;
    RunCheckpoint ckpt = sample_checkpoint();
    ckpt.completed_rounds = 5; // tape holds 2
    const std::string path = tmp.path(checkpoint_filename(5));
    save_checkpoint(ckpt, path);
    EXPECT_THROW((void)load_checkpoint(path), SnapshotError);
}

TEST(RunCheckpointIO, FindLatestValidSkipsCorruptedNewest) {
    TempDir tmp;
    RunCheckpoint ckpt = sample_checkpoint();
    save_checkpoint(ckpt, tmp.path(checkpoint_filename(2)));

    fl::RoundMetrics extra = ckpt.rounds.back();
    extra.round = 3;
    ckpt.rounds.push_back(extra);
    ckpt.completed_rounds = 3;
    const std::string newest = tmp.path(checkpoint_filename(3));
    save_checkpoint(ckpt, newest);

    // Flip one byte in the newest file: resume must fall back to round 2.
    {
        std::fstream f(newest,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(30);
        char c = 0;
        f.seekg(30);
        f.get(c);
        c = static_cast<char>(c ^ 0x10);
        f.seekp(30);
        f.put(c);
    }
    const auto latest = find_latest_valid(tmp.str());
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->completed_rounds, 2u);
}

TEST(RunCheckpointIO, FindLatestValidOnEmptyOrMissingDirIsEmpty) {
    TempDir tmp;
    EXPECT_FALSE(find_latest_valid(tmp.str()).has_value());
    EXPECT_FALSE(find_latest_valid(tmp.path("missing")).has_value());
}

TEST(RunCheckpointIO, PruneKeepsNewestKAndSweepsTemps) {
    TempDir tmp;
    RunCheckpoint ckpt = sample_checkpoint();
    ckpt.rounds.resize(1);
    for (std::size_t round = 1; round <= 5; ++round) {
        ckpt.rounds[0].round = round;
        ckpt.completed_rounds = 1;
        save_checkpoint(ckpt, tmp.path(checkpoint_filename(round)));
    }
    { std::ofstream leftover(tmp.path("stale.fmsnap.tmp")); }
    prune_checkpoints(tmp.str(), 2);
    EXPECT_FALSE(fs::exists(tmp.path(checkpoint_filename(1))));
    EXPECT_FALSE(fs::exists(tmp.path(checkpoint_filename(2))));
    EXPECT_FALSE(fs::exists(tmp.path(checkpoint_filename(3))));
    EXPECT_TRUE(fs::exists(tmp.path(checkpoint_filename(4))));
    EXPECT_TRUE(fs::exists(tmp.path(checkpoint_filename(5))));
    EXPECT_FALSE(fs::exists(tmp.path("stale.fmsnap.tmp")));
}

TEST(RunCheckpointIO, FilenameAndRunDirAreStable) {
    EXPECT_EQ(checkpoint_filename(7), "ckpt_round_000007.fmsnap");
    EXPECT_EQ(checkpoint_run_dir("/tmp/ck", "fmore", 3), "/tmp/ck/fmore-t3");
}

} // namespace
} // namespace fmore::core
