// Testbed-assembly specifics: IID shards with heterogeneous sizes (see the
// calibration notes in DESIGN.md), scoring/cost scaled by the observed data
// cap, and the wall-clock model wired into every strategy.

#include <gtest/gtest.h>

#include <set>

#include "fmore/core/realworld.hpp"

namespace fmore::core {
namespace {

RealWorldConfig small() {
    RealWorldConfig config;
    config.train_samples = 2000;
    config.test_samples = 400;
    config.num_nodes = 16;
    config.winners = 4;
    config.rounds = 3;
    config.data_lo = 25;
    config.data_hi = 120;
    config.eval_cap = 150;
    return config;
}

TEST(RealWorldAssembly, ShardSizesAreHeterogeneousWithinRange) {
    RealWorldTrial trial(small(), 0);
    // Through the FMore run we can see who holds what via train_samples.
    const fl::RunResult run = trial.run(Strategy::fmore);
    std::set<std::size_t> sizes;
    for (const auto& round : run.rounds) {
        for (const auto& sel : round.selection.selected) {
            ASSERT_TRUE(sel.train_samples.has_value());
            EXPECT_LE(*sel.train_samples, 120u);
            sizes.insert(*sel.train_samples);
        }
    }
    EXPECT_GE(sizes.size(), 2u); // different volumes actually traded
}

TEST(RealWorldAssembly, AllStrategiesReportWallClock) {
    RealWorldTrial trial(small(), 0);
    for (const Strategy s :
         {Strategy::fmore, Strategy::psi_fmore, Strategy::randfl, Strategy::fixfl}) {
        const fl::RunResult run = trial.run(s);
        for (const auto& round : run.rounds) {
            EXPECT_GT(round.round_seconds, 0.0) << to_string(s);
        }
    }
}

TEST(RealWorldAssembly, AuctionRoundsCarryPayments) {
    RealWorldTrial trial(small(), 0);
    const fl::RunResult run = trial.run(Strategy::fmore);
    for (const auto& round : run.rounds) {
        EXPECT_GT(round.mean_winner_payment, 0.0);
        EXPECT_EQ(round.selection.selected.size(), 4u);
    }
}

TEST(RealWorldAssembly, ReproducibleAcrossIdenticalTrials) {
    RealWorldTrial a(small(), 2);
    RealWorldTrial b(small(), 2);
    const auto ra = a.run(Strategy::fmore);
    const auto rb = b.run(Strategy::fmore);
    for (std::size_t r = 0; r < ra.rounds.size(); ++r) {
        EXPECT_DOUBLE_EQ(ra.rounds[r].test_accuracy, rb.rounds[r].test_accuracy);
        EXPECT_DOUBLE_EQ(ra.rounds[r].round_seconds, rb.rounds[r].round_seconds);
    }
}

TEST(RealWorldAssembly, EquilibriumUsesTestbedDimensions) {
    RealWorldTrial trial(small(), 0);
    EXPECT_EQ(trial.equilibrium().dimensions(), 3u); // cpu, bandwidth, data
    EXPECT_EQ(trial.equilibrium().num_bidders(), 16u);
    EXPECT_EQ(trial.equilibrium().num_winners(), 4u);
}

} // namespace
} // namespace fmore::core
