// The O(N log K) partial-ranking path wired through the experiment layer
// (AuctionSpec::full_scoreboard = false): winners, payments and every round
// metric must be bit-identical to the full-sort default; only the recorded
// Fig. 8 score board is allowed to shrink.

#include <gtest/gtest.h>

#include "fmore/core/experiment.hpp"
#include "fmore/core/scenarios.hpp"

namespace fmore::core {
namespace {

ExperimentSpec small_spec(bool full_scoreboard) {
    ExperimentSpec spec = default_experiment(DatasetKind::mnist_o);
    spec.population.num_nodes = 40;
    spec.auction.winners = 8;
    spec.training.rounds = 2;
    spec.training.train_samples = 500;
    spec.training.test_samples = 120;
    spec.training.eval_cap = 120;
    spec.auction.full_scoreboard = full_scoreboard;
    return spec;
}

TEST(ScoreboardTest, PartialRankingKeepsEveryRoundMetricBitIdentical) {
    ExperimentTrial full_trial(small_spec(true), 0);
    const fl::RunResult full = full_trial.run("fmore");
    ExperimentTrial partial_trial(small_spec(false), 0);
    const fl::RunResult partial = partial_trial.run("fmore");

    ASSERT_EQ(full.rounds.size(), partial.rounds.size());
    for (std::size_t r = 0; r < full.rounds.size(); ++r) {
        SCOPED_TRACE("round " + std::to_string(r + 1));
        EXPECT_EQ(full.rounds[r].test_accuracy, partial.rounds[r].test_accuracy);
        EXPECT_EQ(full.rounds[r].test_loss, partial.rounds[r].test_loss);
        EXPECT_EQ(full.rounds[r].train_loss, partial.rounds[r].train_loss);
        EXPECT_EQ(full.rounds[r].mean_winner_payment,
                  partial.rounds[r].mean_winner_payment);
        EXPECT_EQ(full.rounds[r].mean_winner_score,
                  partial.rounds[r].mean_winner_score);

        // Winner sets identical, in identical order, with identical
        // payments.
        const auto& fsel = full.rounds[r].selection.selected;
        const auto& psel = partial.rounds[r].selection.selected;
        ASSERT_EQ(fsel.size(), psel.size());
        for (std::size_t i = 0; i < fsel.size(); ++i) {
            EXPECT_EQ(fsel[i].client, psel[i].client);
            EXPECT_EQ(fsel[i].payment, psel[i].payment);
            EXPECT_EQ(fsel[i].score, psel[i].score);
            EXPECT_EQ(fsel[i].train_samples, psel[i].train_samples);
        }

        // The board itself is the only thing that shrinks: the partial
        // path records exactly the top-K prefix of the full board.
        const auto& fboard = full.rounds[r].selection.all_scores;
        const auto& pboard = partial.rounds[r].selection.all_scores;
        EXPECT_EQ(fboard.size(), 40u - 0u); // every bidder on the full board
        ASSERT_LE(pboard.size(), fboard.size());
        ASSERT_GE(pboard.size(), 8u);
        for (std::size_t i = 0; i < pboard.size(); ++i) {
            EXPECT_EQ(pboard[i], fboard[i]);
        }
    }
}

TEST(ScoreboardTest, FullScoreboardRoundTripsThroughSpecText) {
    ExperimentSpec spec = small_spec(false);
    const ExperimentSpec parsed = parse_experiment_spec(to_text(spec));
    EXPECT_FALSE(parsed.auction.full_scoreboard);
    EXPECT_TRUE(parsed == spec);
}

TEST(ScoreboardTest, DefaultKeepsTheFigureEightContract) {
    EXPECT_TRUE(ExperimentSpec{}.auction.full_scoreboard);
    EXPECT_TRUE(named_scenario("paper/fig08").auction.full_scoreboard);
}

} // namespace
} // namespace fmore::core
