#include <gtest/gtest.h>

#include "fmore/core/scenarios.hpp"
#include "fmore/core/sweep.hpp"

namespace fmore::core {
namespace {

TEST(SweepAxisTest, ParsesKeyAndValues) {
    const SweepAxis axis = parse_sweep_axis("auction.winners=5,10,25");
    EXPECT_EQ(axis.key, "auction.winners");
    ASSERT_EQ(axis.values.size(), 3u);
    EXPECT_EQ(axis.values[0], "5");
    EXPECT_EQ(axis.values[2], "25");
}

TEST(SweepAxisTest, RejectsMalformedAxes) {
    EXPECT_THROW((void)parse_sweep_axis("no-equals"), std::invalid_argument);
    EXPECT_THROW((void)parse_sweep_axis("=1,2"), std::invalid_argument);
    EXPECT_THROW((void)parse_sweep_axis("auction.winners="), std::invalid_argument);
}

TEST(SweepTest, SingleAxisOverridesTheBaseSpec) {
    const ExperimentSpec base = default_experiment(DatasetKind::mnist_o);
    const auto points =
        expand_sweep(base, {parse_sweep_axis("auction.winners=5,25")});
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].label, "auction.winners=5");
    EXPECT_EQ(points[0].spec.auction.winners, 5u);
    EXPECT_EQ(points[1].label, "auction.winners=25");
    EXPECT_EQ(points[1].spec.auction.winners, 25u);
    // Everything else untouched.
    ExperimentSpec expect = base;
    expect.auction.winners = 5;
    EXPECT_TRUE(points[0].spec == expect);
}

TEST(SweepTest, CrossProductIsFirstAxisOutermost) {
    const ExperimentSpec base = default_experiment(DatasetKind::mnist_o);
    const auto points = expand_sweep(base, {parse_sweep_axis("auction.winners=5,10"),
                                            parse_sweep_axis("auction.psi=0.3,0.7")});
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].label, "auction.winners=5, auction.psi=0.3");
    EXPECT_EQ(points[1].label, "auction.winners=5, auction.psi=0.7");
    EXPECT_EQ(points[2].label, "auction.winners=10, auction.psi=0.3");
    EXPECT_EQ(points[3].label, "auction.winners=10, auction.psi=0.7");
    EXPECT_EQ(points[3].spec.auction.winners, 10u);
    EXPECT_DOUBLE_EQ(points[3].spec.auction.psi, 0.7);
}

TEST(SweepTest, NoAxesYieldsTheBaseSpec) {
    const ExperimentSpec base = named_scenario("paper/fig10");
    const auto points = expand_sweep(base, {});
    ASSERT_EQ(points.size(), 1u);
    EXPECT_TRUE(points[0].spec == base);
    EXPECT_TRUE(points[0].label.empty());
}

TEST(SweepTest, UnknownKeysThrowThroughApplyKeyValue) {
    const ExperimentSpec base = default_experiment(DatasetKind::mnist_o);
    EXPECT_THROW((void)expand_sweep(base, {parse_sweep_axis("auction.bogus=1")}),
                 std::invalid_argument);
}

} // namespace
} // namespace fmore::core
