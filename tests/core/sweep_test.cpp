#include <gtest/gtest.h>

#include "fmore/core/scenarios.hpp"
#include "fmore/core/sweep.hpp"

namespace fmore::core {
namespace {

TEST(SweepAxisTest, ParsesKeyAndValues) {
    const SweepAxis axis = parse_sweep_axis("auction.winners=5,10,25");
    EXPECT_EQ(axis.key, "auction.winners");
    ASSERT_EQ(axis.values.size(), 3u);
    EXPECT_EQ(axis.values[0], "5");
    EXPECT_EQ(axis.values[2], "25");
}

TEST(SweepAxisTest, RejectsMalformedAxes) {
    EXPECT_THROW((void)parse_sweep_axis("no-equals"), std::invalid_argument);
    EXPECT_THROW((void)parse_sweep_axis("=1,2"), std::invalid_argument);
    EXPECT_THROW((void)parse_sweep_axis("auction.winners="), std::invalid_argument);
}

TEST(SweepTest, SingleAxisOverridesTheBaseSpec) {
    const ExperimentSpec base = default_experiment(DatasetKind::mnist_o);
    const auto points =
        expand_sweep(base, {parse_sweep_axis("auction.winners=5,25")});
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].label, "auction.winners=5");
    EXPECT_EQ(points[0].spec.auction.winners, 5u);
    EXPECT_EQ(points[1].label, "auction.winners=25");
    EXPECT_EQ(points[1].spec.auction.winners, 25u);
    // Everything else untouched.
    ExperimentSpec expect = base;
    expect.auction.winners = 5;
    EXPECT_TRUE(points[0].spec == expect);
}

TEST(SweepTest, CrossProductIsFirstAxisOutermost) {
    const ExperimentSpec base = default_experiment(DatasetKind::mnist_o);
    const auto points = expand_sweep(base, {parse_sweep_axis("auction.winners=5,10"),
                                            parse_sweep_axis("auction.psi=0.3,0.7")});
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].label, "auction.winners=5, auction.psi=0.3");
    EXPECT_EQ(points[1].label, "auction.winners=5, auction.psi=0.7");
    EXPECT_EQ(points[2].label, "auction.winners=10, auction.psi=0.3");
    EXPECT_EQ(points[3].label, "auction.winners=10, auction.psi=0.7");
    EXPECT_EQ(points[3].spec.auction.winners, 10u);
    EXPECT_DOUBLE_EQ(points[3].spec.auction.psi, 0.7);
}

TEST(SweepTest, NoAxesYieldsTheBaseSpec) {
    const ExperimentSpec base = named_scenario("paper/fig10");
    const auto points = expand_sweep(base, {});
    ASSERT_EQ(points.size(), 1u);
    EXPECT_TRUE(points[0].spec == base);
    EXPECT_TRUE(points[0].label.empty());
}

TEST(SweepTest, UnknownKeysThrowThroughApplyKeyValue) {
    const ExperimentSpec base = default_experiment(DatasetKind::mnist_o);
    EXPECT_THROW((void)expand_sweep(base, {parse_sweep_axis("auction.bogus=1")}),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Zipped (co-varying) sweeps
// ---------------------------------------------------------------------------

TEST(ZipSweepTest, AxesCoVaryPointwise) {
    const ExperimentSpec base = default_experiment(DatasetKind::mnist_f);
    const auto points =
        zip_sweep(base, {parse_sweep_axis("population.num_nodes=50,100"),
                         parse_sweep_axis("training.train_samples=4500,9000")});
    ASSERT_EQ(points.size(), 2u); // zipped, NOT the 4-point cross product
    EXPECT_EQ(points[0].label, "population.num_nodes=50, training.train_samples=4500");
    EXPECT_EQ(points[0].spec.population.num_nodes, 50u);
    EXPECT_EQ(points[0].spec.training.train_samples, 4500u);
    EXPECT_EQ(points[1].spec.population.num_nodes, 100u);
    EXPECT_EQ(points[1].spec.training.train_samples, 9000u);
    // Everything else untouched.
    ExperimentSpec expect = base;
    expect.population.num_nodes = 100;
    expect.training.train_samples = 9000;
    EXPECT_TRUE(points[1].spec == expect);
}

TEST(ZipSweepTest, RejectsMismatchedAndEmptyAxes) {
    const ExperimentSpec base = default_experiment(DatasetKind::mnist_o);
    EXPECT_THROW((void)zip_sweep(base, {}), std::invalid_argument);
    try {
        (void)zip_sweep(base, {parse_sweep_axis("auction.winners=5,10,15"),
                               parse_sweep_axis("auction.psi=0.3,0.7")});
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("auction.psi"), std::string::npos);
        EXPECT_NE(what.find("same length"), std::string::npos);
    }
}

// ---------------------------------------------------------------------------
// Per-point multi-policy summaries
// ---------------------------------------------------------------------------

TEST(SweepSummaryTest, RunsEveryPointUnderEveryPolicy) {
    ExperimentSpec base = default_experiment(DatasetKind::mnist_o);
    base.training.train_samples = 500;
    base.training.test_samples = 150;
    base.training.rounds = 2;
    base.training.eval_cap = 100;
    base.population.num_nodes = 12;
    base.auction.winners = 4;
    base.population.data_lo = 10;
    base.population.data_hi = 40;

    const auto points = expand_sweep(base, {parse_sweep_axis("auction.winners=3,4")});
    const auto summaries = summarize_points(points, {"fmore", "randfl"}, 2);
    ASSERT_EQ(summaries.size(), 2u);
    for (std::size_t p = 0; p < summaries.size(); ++p) {
        const SweepSummary& summary = summaries[p];
        EXPECT_EQ(summary.label, points[p].label);
        EXPECT_TRUE(summary.spec == points[p].spec);
        ASSERT_EQ(summary.series.size(), 2u);
        EXPECT_EQ(summary.series[0].name, "FMore");
        EXPECT_EQ(summary.series[1].name, "RandFL");
        ASSERT_EQ(summary.runs.size(), 2u);
        for (std::size_t i = 0; i < summary.series.size(); ++i) {
            EXPECT_EQ(summary.series[i].series.rounds(), 2u);
            ASSERT_EQ(summary.runs[i].size(), 2u); // trials kept raw
            // The averaged series is exactly average_runs over the raw runs.
            const AveragedSeries again = average_runs(summary.runs[i]);
            EXPECT_EQ(summary.series[i].series.accuracy, again.accuracy);
            EXPECT_EQ(summary.series[i].series.loss, again.loss);
        }
    }
}

TEST(SweepSummaryTest, MatchesAveragedExperimentBitIdentically) {
    // The summary path adds nothing stochastic: per point and policy it is
    // the same parallel trial runner, so the series are bit-identical to a
    // direct averaged_experiment call on the overridden spec.
    ExperimentSpec base = default_experiment(DatasetKind::mnist_o);
    base.training.train_samples = 500;
    base.training.test_samples = 150;
    base.training.rounds = 2;
    base.training.eval_cap = 100;
    base.population.num_nodes = 12;
    base.auction.winners = 4;
    base.population.data_lo = 10;
    base.population.data_hi = 40;

    const auto summaries = summarize_points(
        expand_sweep(base, {parse_sweep_axis("auction.psi=0.5")}), {"psi_fmore"}, 2);
    ASSERT_EQ(summaries.size(), 1u);
    ExperimentSpec direct = base;
    direct.auction.psi = 0.5;
    const AveragedSeries expected = averaged_experiment(direct, "psi_fmore", 2);
    EXPECT_EQ(summaries[0].series[0].series.accuracy, expected.accuracy);
    EXPECT_EQ(summaries[0].series[0].series.loss, expected.loss);
    EXPECT_EQ(summaries[0].series[0].series.payment, expected.payment);
}

TEST(SweepSummaryTest, RejectsEmptyPolicies) {
    const ExperimentSpec base = default_experiment(DatasetKind::mnist_o);
    EXPECT_THROW((void)summarize_points(expand_sweep(base, {}), {}, 1),
                 std::invalid_argument);
}

TEST(SweepSummaryTest, PolicyDisplayNames) {
    EXPECT_EQ(policy_display_name("fmore"), "FMore");
    EXPECT_EQ(policy_display_name("psi_fmore"), "psi-FMore");
    EXPECT_EQ(policy_display_name("randfl"), "RandFL");
    EXPECT_EQ(policy_display_name("fixfl"), "FixFL");
    EXPECT_EQ(policy_display_name("my_custom_policy"), "my_custom_policy");
}

} // namespace
} // namespace fmore::core
