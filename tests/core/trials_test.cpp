#include <gtest/gtest.h>

#include "fmore/core/trials.hpp"

namespace fmore::core {
namespace {

fl::RunResult make_run(std::vector<double> accs, double secs_per_round) {
    fl::RunResult run;
    for (std::size_t i = 0; i < accs.size(); ++i) {
        fl::RoundMetrics m;
        m.round = i + 1;
        m.test_accuracy = accs[i];
        m.test_loss = 1.0 - accs[i];
        m.mean_winner_payment = 2.0;
        m.mean_winner_score = 3.0;
        m.round_seconds = secs_per_round;
        run.rounds.push_back(m);
    }
    return run;
}

TEST(AverageRuns, PointwiseMeans) {
    const auto avg = average_runs({make_run({0.2, 0.4}, 10.0), make_run({0.4, 0.8}, 20.0)});
    ASSERT_EQ(avg.rounds(), 2u);
    EXPECT_DOUBLE_EQ(avg.accuracy[0], 0.3);
    EXPECT_DOUBLE_EQ(avg.accuracy[1], 0.6);
    EXPECT_DOUBLE_EQ(avg.loss[0], 0.7);
    EXPECT_DOUBLE_EQ(avg.seconds[0], 15.0);
    EXPECT_DOUBLE_EQ(avg.cumulative_seconds[1], 30.0);
    EXPECT_DOUBLE_EQ(avg.payment[0], 2.0);
    EXPECT_DOUBLE_EQ(avg.score[1], 3.0);
}

TEST(AverageRuns, RejectsMismatchedOrEmpty) {
    EXPECT_THROW(average_runs({}), std::invalid_argument);
    EXPECT_THROW(average_runs({make_run({0.1}, 1.0), make_run({0.1, 0.2}, 1.0)}),
                 std::invalid_argument);
}

TEST(MeanRoundsToAccuracy, AveragesWithPenalty) {
    // Run A reaches 0.5 at round 2, run B never does (3 rounds -> penalty 3).
    const std::vector<fl::RunResult> runs{make_run({0.3, 0.6, 0.7}, 0.0),
                                          make_run({0.1, 0.2, 0.3}, 0.0)};
    EXPECT_DOUBLE_EQ(mean_rounds_to_accuracy(runs, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(mean_rounds_to_accuracy(runs, 0.5, 10), 6.0);
    EXPECT_THROW(mean_rounds_to_accuracy({}, 0.5), std::invalid_argument);
}

TEST(MeanSecondsToAccuracy, AccumulatesAndPenalizes) {
    const std::vector<fl::RunResult> runs{make_run({0.3, 0.6}, 10.0),
                                          make_run({0.1, 0.2}, 10.0)};
    // Run A: 20 s to 0.5; run B: never -> total 20 s.
    EXPECT_DOUBLE_EQ(mean_seconds_to_accuracy(runs, 0.5), 20.0);
}

} // namespace
} // namespace fmore::core
