// The unified ExperimentSpec surface: serialize -> parse round trips,
// validation messages, compat shims against the legacy configs, named
// scenarios, the ExperimentTrial facade (bit-identical to the engine it
// wraps) and the equilibrium-solve cache.

#include <gtest/gtest.h>

#include <limits>

#include "fmore/auction/mechanism.hpp"
#include "fmore/core/equilibrium_cache.hpp"
#include "fmore/core/experiment.hpp"
#include "fmore/core/scenarios.hpp"
#include "fmore/core/trials.hpp"
#include "fmore/util/fault_injector.hpp"

namespace fmore::core {
namespace {

ExperimentSpec tiny_spec() {
    ExperimentSpec spec = default_experiment(DatasetKind::mnist_o);
    spec.training.train_samples = 400;
    spec.training.test_samples = 120;
    spec.population.num_nodes = 12;
    spec.auction.winners = 4;
    spec.training.rounds = 2;
    spec.population.data_lo = 10;
    spec.population.data_hi = 40;
    spec.training.eval_cap = 100;
    return spec;
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(ExperimentSpecText, SimulationRoundTripIsExact) {
    ExperimentSpec spec = default_experiment(DatasetKind::hpnews);
    spec.seed = 1234567890123ULL;
    spec.auction.mechanism = "psi_fmore";
    spec.auction.psi = 0.37;
    spec.auction.psi_per_node = {0.25, 1.0, 0.625, 1.0 / 3.0};
    spec.auction.budget = 17.25;
    spec.auction.payment_rule = auction::PaymentRule::second_price;
    spec.auction.win_model = auction::WinModel::exact;
    spec.training.learning_rate = 0.123456789012345; // full-precision survivor
    const ExperimentSpec parsed = parse_experiment_spec(to_text(spec));
    EXPECT_TRUE(parsed == spec);
}

TEST(ExperimentSpecText, TestbedRoundTripIsExact) {
    ExperimentSpec spec = default_testbed_experiment();
    spec.timing.model_bytes = 3.14159e7;
    spec.population.bandwidth_lo = 123.5;
    spec.timing.round_mode = fl::RoundMode::semi_sync;
    spec.timing.min_updates = 5;
    spec.timing.round_deadline_s = 17.5;
    spec.timing.staleness_alpha = 0.625;
    spec.timing.max_staleness = 3;
    spec.timing.latency_spread = 0.875;
    spec.timing.dropout_prob = 0.0625;
    const ExperimentSpec parsed = parse_experiment_spec(to_text(spec));
    EXPECT_TRUE(parsed == spec);
}

TEST(ExperimentSpecText, RoundModeParsesAndRejectsTypos) {
    ExperimentSpec spec = default_testbed_experiment();
    apply_key_value(spec, "timing.round_mode", "async");
    EXPECT_EQ(spec.timing.round_mode, fl::RoundMode::async);
    apply_key_value(spec, "timing.round_mode", "sync");
    EXPECT_EQ(spec.timing.round_mode, fl::RoundMode::sync);
    try {
        apply_key_value(spec, "timing.round_mode", "assync");
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("assync"), std::string::npos);
        EXPECT_NE(what.find("semi_sync"), std::string::npos);
    }
}

TEST(ExperimentSpecText, ParserHandlesCommentsAndBlankLines) {
    const ExperimentSpec parsed = parse_experiment_spec(
        "# a scenario file\n"
        "\n"
        "kind = testbed   # switches scoring family\n"
        "  population.num_nodes = 31  \n"
        "auction.winners=8\n");
    EXPECT_EQ(parsed.kind, ExperimentKind::testbed);
    EXPECT_EQ(parsed.population.num_nodes, 31u);
    EXPECT_EQ(parsed.auction.winners, 8u);
}

TEST(ExperimentSpecText, ParserReportsLineAndUnknownKeys) {
    try {
        (void)parse_experiment_spec("population.num_nodes = 10\nnot_a_key = 3\n");
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("line 2"), std::string::npos);
        EXPECT_NE(what.find("not_a_key"), std::string::npos);
        EXPECT_NE(what.find("auction.winners"), std::string::npos); // suggests keys
    }
    EXPECT_THROW((void)parse_experiment_spec("just some words\n"), std::invalid_argument);
    EXPECT_THROW((void)parse_experiment_spec("auction.psi = high\n"),
                 std::invalid_argument);
}

TEST(ExperimentSpecText, ApplyKeyValueOverridesOneField) {
    ExperimentSpec spec = default_experiment(DatasetKind::mnist_o);
    apply_key_value(spec, "auction.mechanism", "second_score");
    apply_key_value(spec, "auction.psi_per_node", "0.5,0.75,1");
    apply_key_value(spec, "training.dataset", "cifar10");
    EXPECT_EQ(spec.auction.mechanism, "second_score");
    EXPECT_EQ(spec.auction.psi_per_node, (std::vector<double>{0.5, 0.75, 1.0}));
    EXPECT_EQ(spec.training.dataset, DatasetKind::cifar10);
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

TEST(ExperimentSpecValidate, DefaultsAreValid) {
    EXPECT_TRUE(validate(default_experiment(DatasetKind::mnist_o)).empty());
    EXPECT_TRUE(validate(default_testbed_experiment()).empty());
}

TEST(ExperimentSpecValidate, MessagesNameTheOffendingKey) {
    ExperimentSpec spec = default_experiment(DatasetKind::mnist_o);
    spec.auction.psi = std::numeric_limits<double>::quiet_NaN();
    spec.auction.winners = 200; // >= num_nodes
    spec.auction.mechanism = "wireless_cellular"; // not registered
    spec.auction.psi_per_node = {0.5, -2.0};
    const std::vector<std::string> problems = validate(spec);
    ASSERT_EQ(problems.size(), 5u); // psi, winners, mechanism, entry, length
    auto mentions = [&problems](const std::string& token) {
        for (const std::string& p : problems)
            if (p.find(token) != std::string::npos) return true;
        return false;
    };
    EXPECT_TRUE(mentions("auction.psi "));
    EXPECT_TRUE(mentions("auction.winners"));
    EXPECT_TRUE(mentions("wireless_cellular"));
    EXPECT_TRUE(mentions("psi_per_node[1]"));
    EXPECT_TRUE(mentions("must cover every node"));
    EXPECT_THROW(validate_or_throw(spec), std::invalid_argument);
}

TEST(ExperimentSpecValidate, AsyncRoundRulesAreEnforced) {
    // async/semi-sync needs the wall-clock model (testbed kind).
    ExperimentSpec sim = default_experiment(DatasetKind::mnist_o);
    sim.timing.round_mode = fl::RoundMode::async;
    auto mentions = [](const std::vector<std::string>& problems,
                       const std::string& token) {
        for (const std::string& p : problems)
            if (p.find(token) != std::string::npos) return true;
        return false;
    };
    EXPECT_TRUE(mentions(validate(sim), "kind = testbed"));

    ExperimentSpec spec = default_testbed_experiment();
    spec.timing.round_mode = fl::RoundMode::semi_sync;
    spec.timing.min_updates = 4;
    spec.timing.round_deadline_s = 30.0;
    spec.timing.latency_spread = 0.8;
    spec.timing.dropout_prob = 0.1;
    EXPECT_TRUE(validate(spec).empty());

    spec.timing.min_updates = 9; // > K = 8
    EXPECT_TRUE(mentions(validate(spec), "timing.min_updates"));
    spec.timing.min_updates = 4;

    // Like min_updates, the deadline stays valid (and ignored) under the
    // other modes so `--sweep timing.round_mode=...` works from a
    // deadline-carrying base spec.
    spec.timing.round_mode = fl::RoundMode::async;
    EXPECT_TRUE(validate(spec).empty());
    spec.timing.round_deadline_s = -1.0;
    EXPECT_TRUE(mentions(validate(spec), "timing.round_deadline_s"));
    spec.timing.round_deadline_s = 0.0;
    EXPECT_TRUE(validate(spec).empty());

    spec.timing.dropout_prob = 1.0;
    EXPECT_TRUE(mentions(validate(spec), "timing.dropout_prob"));
    spec.timing.dropout_prob = 0.0;
    spec.timing.latency_spread = -0.5;
    EXPECT_TRUE(mentions(validate(spec), "timing.latency_spread"));
    spec.timing.latency_spread = 0.0;
    spec.timing.staleness_alpha = -1.0;
    EXPECT_TRUE(mentions(validate(spec), "timing.staleness_alpha"));
}

TEST(ExperimentSpecValidate, SyncDeadlineWithQuorumIsRejectedWithGuidance) {
    // A sync round waits for every winner: a deadline plus a quorum can
    // never fire, and silently ignoring them hides a misconfigured sweep.
    ExperimentSpec spec = default_testbed_experiment();
    spec.timing.round_mode = fl::RoundMode::sync;
    spec.timing.round_deadline_s = 30.0;
    spec.timing.min_updates = 4;
    const std::vector<std::string> problems = validate(spec);
    ASSERT_EQ(problems.size(), 1u);
    // Actionable: names BOTH offending keys and every way out.
    EXPECT_NE(problems[0].find("timing.round_deadline_s"), std::string::npos);
    EXPECT_NE(problems[0].find("timing.min_updates"), std::string::npos);
    EXPECT_NE(problems[0].find("semi_sync"), std::string::npos);
    EXPECT_NE(problems[0].find("timing.streaming"), std::string::npos);

    // ... and each suggested fix actually validates.
    ExperimentSpec semi = spec;
    semi.timing.round_mode = fl::RoundMode::semi_sync;
    EXPECT_TRUE(validate(semi).empty());
    ExperimentSpec streaming = spec;
    streaming.timing.streaming = true;
    EXPECT_TRUE(validate(streaming).empty());
    // A deadline alone (deadline-closed streaming sweep base) stays valid.
    spec.timing.min_updates = 0;
    EXPECT_TRUE(validate(spec).empty());
}

TEST(ExperimentSpecValidate, StreamingRulesAreEnforced) {
    auto mentions = [](const std::vector<std::string>& problems,
                       const std::string& token) {
        for (const std::string& p : problems)
            if (p.find(token) != std::string::npos) return true;
        return false;
    };
    // The streaming market runs on the testbed's virtual clock.
    ExperimentSpec sim = default_experiment(DatasetKind::mnist_o);
    sim.timing.streaming = true;
    EXPECT_TRUE(mentions(validate(sim), "kind = testbed"));

    ExperimentSpec spec = default_testbed_experiment();
    spec.timing.streaming = true;
    EXPECT_TRUE(validate(spec).empty());

    // Streaming re-reads min_updates as a BID quorum: more than K = 8 is
    // legitimate (it counts arrivals, not winners)...
    spec.timing.min_updates = 20;
    EXPECT_TRUE(validate(spec).empty());
    // ...but a quorum beyond the population can never fill.
    spec.timing.min_updates = 40; // > num_nodes = 31
    EXPECT_TRUE(mentions(validate(spec), "population.num_nodes"));
    spec.timing.min_updates = 0;

    // Poisson arrivals need a rate; the latency process does not.
    spec.timing.arrival_process = mec::ArrivalProcess::poisson;
    EXPECT_TRUE(mentions(validate(spec), "timing.arrival_rate_hz"));
    spec.timing.arrival_rate_hz = 500.0;
    EXPECT_TRUE(validate(spec).empty());
    spec.timing.arrival_rate_hz = -1.0;
    EXPECT_TRUE(mentions(validate(spec), "timing.arrival_rate_hz"));
    spec.timing.arrival_rate_hz = 0.0;
    spec.timing.arrival_process = mec::ArrivalProcess::latency;

    // Sharded streaming is a supported composition (the round closes
    // through the sharded head merge, bit-identical to the monolithic
    // close) — but the batch shard-SUPERVISION knobs do not apply to it.
    spec.auction.shards = 8;
    EXPECT_TRUE(validate(spec).empty());
    spec.auction.shard_timeout_s = 0.5;
    EXPECT_TRUE(mentions(validate(spec), "timing.round_deadline_s"));
    spec.auction.shard_timeout_s = 0.0;
    spec.auction.fault_plan = "seed=7,crash=0.05";
    EXPECT_TRUE(mentions(validate(spec), "auction.fault_plan"));
    spec.auction.fault_plan.clear();
    spec.auction.shard_quorum = 4;
    EXPECT_TRUE(mentions(validate(spec), "auction.shard_quorum"));
    spec.auction.shard_quorum = 0;
    spec.auction.shards = 1;

    // Adaptive quorum needs the full streaming close policy to tune.
    spec.timing.adaptive_quorum = true;
    EXPECT_TRUE(mentions(validate(spec), "timing.min_updates"));
    spec.timing.min_updates = 12;
    EXPECT_TRUE(mentions(validate(spec), "timing.round_deadline_s"));
    spec.timing.round_deadline_s = 2.0;
    EXPECT_TRUE(validate(spec).empty());
    spec.timing.streaming = false;
    EXPECT_TRUE(mentions(validate(spec), "timing.streaming"));
    spec.timing.streaming = true;
    spec.timing.adaptive_quorum = false;
    spec.timing.min_updates = 0;
    spec.timing.round_deadline_s = 0.0;

    // The pricing knob is validated whether or not streaming is on.
    spec.auction.latency_discount = -0.5;
    EXPECT_TRUE(mentions(validate(spec), "auction.latency_discount"));
    spec.auction.latency_discount = 0.8;
    EXPECT_TRUE(validate(spec).empty());
}

TEST(ExperimentSpecText, StreamingKnobsRoundTripAndRejectTypos) {
    ExperimentSpec spec = default_testbed_experiment();
    spec.timing.streaming = true;
    spec.timing.arrival_process = mec::ArrivalProcess::poisson;
    spec.timing.arrival_rate_hz = 123.25;
    spec.auction.latency_discount = 0.375;
    spec.timing.adaptive_quorum = true;
    spec.timing.min_updates = 9;
    spec.timing.round_deadline_s = 1.5;
    spec.auction.shards = 4;
    const ExperimentSpec parsed = parse_experiment_spec(to_text(spec));
    EXPECT_TRUE(parsed == spec);

    try {
        apply_key_value(spec, "timing.arrival_process", "uniform");
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("uniform"), std::string::npos);
        EXPECT_NE(what.find("poisson"), std::string::npos);
    }
}

TEST(ExperimentSpecText, FaultKnobsRoundTripExactly) {
    ExperimentSpec spec = default_experiment(DatasetKind::mnist_o);
    spec.auction.shards = 4;
    spec.auction.shard_timeout_s = 0.5;
    spec.auction.fault_plan = "seed=9,crash=0.05,delay=0.1,delay_s=0.02";
    spec.auction.shard_respawn_backoff_s = 0.25;
    spec.auction.shard_max_respawns = 3;
    spec.auction.shard_quorum = 2;
    ASSERT_TRUE(validate(spec).empty());
    const ExperimentSpec parsed = parse_experiment_spec(to_text(spec));
    EXPECT_TRUE(parsed == spec);

    // Single-key overrides reach the supervision knobs too.
    apply_key_value(spec, "auction.fault_plan", "seed=3,corrupt=0.2");
    apply_key_value(spec, "auction.shard_max_respawns", "5");
    apply_key_value(spec, "auction.shard_respawn_backoff_s", "0.125");
    apply_key_value(spec, "auction.shard_quorum", "3");
    EXPECT_EQ(spec.auction.fault_plan, "seed=3,corrupt=0.2");
    EXPECT_EQ(spec.auction.shard_max_respawns, 5u);
    EXPECT_EQ(spec.auction.shard_respawn_backoff_s, 0.125);
    EXPECT_EQ(spec.auction.shard_quorum, 3u);

    // And the legacy-config shims carry them losslessly both ways.
    const SimulationConfig config = to_simulation_config(spec);
    EXPECT_EQ(config.fault_plan, spec.auction.fault_plan);
    EXPECT_EQ(config.shard_respawn_backoff_s, 0.125);
    EXPECT_EQ(config.shard_max_respawns, 5u);
    EXPECT_EQ(config.shard_quorum, 3u);
    EXPECT_TRUE(from_simulation_config(config) == spec);
}

TEST(ExperimentSpecValidate, FaultKnobRulesAreEnforced) {
    auto mentions = [](const std::vector<std::string>& problems,
                       const std::string& token) {
        for (const std::string& p : problems)
            if (p.find(token) != std::string::npos) return true;
        return false;
    };
    // Every supervision knob requires a sharded market.
    ExperimentSpec spec = default_experiment(DatasetKind::mnist_o);
    spec.auction.fault_plan = "seed=1,crash=0.1";
    EXPECT_TRUE(mentions(validate(spec), "auction.shards"));
    spec.auction.fault_plan.clear();
    spec.auction.shard_quorum = 2;
    EXPECT_TRUE(mentions(validate(spec), "auction.shards"));
    spec.auction.shard_quorum = 0;
    spec.auction.shard_max_respawns = 1;
    EXPECT_TRUE(mentions(validate(spec), "auction.shards"));

    // An unparsable plan is rejected with the parser's message.
    spec = default_experiment(DatasetKind::mnist_o);
    spec.auction.shards = 4;
    spec.auction.shard_timeout_s = 0.5;
    spec.auction.fault_plan = "crash=2.0";
    EXPECT_TRUE(mentions(validate(spec), "auction.fault_plan"));
    spec.auction.fault_plan = "seed=1,warp=0.5";
    EXPECT_TRUE(mentions(validate(spec), "auction.fault_plan"));
    spec.auction.fault_plan.clear();

    // Quorum cannot exceed the shard count; backoff must be finite, >= 0.
    spec.auction.shard_quorum = 5;
    EXPECT_TRUE(mentions(validate(spec), "auction.shard_quorum"));
    spec.auction.shard_quorum = 0;
    spec.auction.shard_respawn_backoff_s = -0.5;
    EXPECT_TRUE(mentions(validate(spec), "auction.shard_respawn_backoff_s"));
    spec.auction.shard_respawn_backoff_s = 0.0;
    EXPECT_TRUE(validate(spec).empty());
}

TEST(Scenarios, FaultPresetsAreRegisteredAndValid) {
    auto& registry = ScenarioRegistry::instance();
    for (const char* name : {"faults/churn", "faults/corrupt", "faults/flaky"}) {
        ASSERT_TRUE(registry.contains(name)) << name;
        const ExperimentSpec spec = registry.get(name);
        EXPECT_TRUE(validate(spec).empty()) << name;
        EXPECT_GT(spec.auction.shards, 1u) << name;
        EXPECT_GT(spec.auction.shard_timeout_s, 0.0) << name;
        // The plan must parse and actually schedule faults.
        EXPECT_FALSE(
            util::FaultInjector::from_spec(spec.auction.fault_plan).empty())
            << name;
    }
    const ExperimentSpec churn = named_scenario("faults/churn");
    EXPECT_GT(churn.auction.shard_max_respawns, 0u);
    EXPECT_GT(churn.auction.shard_quorum, 0u);
}

TEST(ExperimentSpecValidate, RegisteredCustomMechanismPassesValidation) {
    auto& registry = auction::MechanismRegistry::instance();
    registry.replace("test/spec_mechanism", [](const auction::MechanismSpec& ms) {
        return std::make_unique<auction::ScoreAuctionMechanism>(ms,
                                                                "test/spec_mechanism");
    });
    ExperimentSpec spec = default_experiment(DatasetKind::mnist_o);
    spec.auction.mechanism = "test/spec_mechanism";
    EXPECT_TRUE(validate(spec).empty());
    registry.remove("test/spec_mechanism");
    EXPECT_FALSE(validate(spec).empty());
}

// ---------------------------------------------------------------------------
// Compat shims
// ---------------------------------------------------------------------------

TEST(ExperimentSpecCompat, SimulationShimsAreLossless) {
    SimulationConfig config = default_simulation(DatasetKind::hpnews);
    config.psi = 0.6;
    config.budget = 12.0;
    config.mechanism = "psi_fmore";
    config.psi_per_node = {0.5, 0.75};
    const ExperimentSpec spec = from_simulation_config(config);
    const SimulationConfig back = to_simulation_config(spec);
    EXPECT_EQ(back.dataset, config.dataset);
    EXPECT_EQ(back.num_nodes, config.num_nodes);
    EXPECT_EQ(back.winners, config.winners);
    EXPECT_EQ(back.learning_rate, config.learning_rate);
    EXPECT_EQ(back.local_epochs, config.local_epochs);
    EXPECT_EQ(back.psi, config.psi);
    EXPECT_EQ(back.psi_per_node, config.psi_per_node);
    EXPECT_EQ(back.budget, config.budget);
    EXPECT_EQ(back.mechanism, config.mechanism);
    EXPECT_EQ(back.seed, config.seed);
    // And the spec-level defaults agree with the config-level defaults.
    EXPECT_TRUE(from_simulation_config(default_simulation(DatasetKind::mnist_f))
                == default_experiment(DatasetKind::mnist_f));
}

TEST(ExperimentSpecCompat, TestbedShimsAreLossless) {
    const RealWorldConfig config;
    const ExperimentSpec spec = from_realworld_config(config);
    EXPECT_TRUE(spec == default_testbed_experiment());
    const RealWorldConfig back = to_realworld_config(spec);
    EXPECT_EQ(back.num_nodes, config.num_nodes);
    EXPECT_EQ(back.winners, config.winners);
    EXPECT_EQ(back.cpu_hi, config.cpu_hi);
    EXPECT_EQ(back.model_bytes, config.model_bytes);
    EXPECT_EQ(back.seed, config.seed);
}

TEST(ExperimentSpecCompat, KindMismatchThrowsWithGuidance) {
    EXPECT_THROW((void)to_realworld_config(default_experiment(DatasetKind::mnist_o)),
                 std::invalid_argument);
    EXPECT_THROW((void)to_simulation_config(default_testbed_experiment()),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

TEST(Scenarios, PaperPresetsAreRegisteredAndValid) {
    auto& registry = ScenarioRegistry::instance();
    for (const char* name :
         {"paper/fig04", "paper/fig05", "paper/fig06", "paper/fig07", "paper/fig08",
          "paper/fig09", "paper/fig10", "paper/fig11", "paper/fig12", "paper/fig13",
          "sim/default", "testbed/default", "straggler/mild", "straggler/heavy",
          "straggler/async_vs_sync"}) {
        ASSERT_TRUE(registry.contains(name)) << name;
        const ExperimentSpec spec = registry.get(name);
        EXPECT_TRUE(validate(spec).empty()) << name;
    }
    EXPECT_EQ(named_scenario("paper/fig04").training.dataset, DatasetKind::mnist_o);
    EXPECT_EQ(named_scenario("paper/fig12").kind, ExperimentKind::testbed);
    EXPECT_TRUE(named_scenario("paper/fig12").timing.enabled);
    EXPECT_EQ(named_scenario("straggler/heavy").timing.round_mode,
              fl::RoundMode::async);
    EXPECT_GT(named_scenario("straggler/heavy").timing.latency_spread, 0.0);
    // The comparison base stays sync so `--sweep timing.round_mode=...`
    // covers all three modes from one preset.
    EXPECT_EQ(named_scenario("straggler/async_vs_sync").timing.round_mode,
              fl::RoundMode::sync);
}

TEST(Scenarios, StreamPresetsAreRegisteredAndValid) {
    auto& registry = ScenarioRegistry::instance();
    for (const char* name : {"stream/light", "stream/heavy", "stream/quorum"}) {
        ASSERT_TRUE(registry.contains(name)) << name;
        const ExperimentSpec spec = registry.get(name);
        EXPECT_TRUE(validate(spec).empty()) << name;
        EXPECT_TRUE(spec.timing.streaming) << name;
        EXPECT_EQ(spec.kind, ExperimentKind::testbed) << name;
    }
    const ExperimentSpec heavy = named_scenario("stream/heavy");
    EXPECT_EQ(heavy.timing.arrival_process, mec::ArrivalProcess::poisson);
    EXPECT_GT(heavy.timing.arrival_rate_hz, 0.0);
    // The bid quorum legitimately exceeds K: it counts arrivals.
    EXPECT_GT(heavy.timing.min_updates, heavy.auction.winners);
    EXPECT_EQ(named_scenario("stream/quorum").timing.arrival_process,
              mec::ArrivalProcess::latency);
}

TEST(Scenarios, UnknownScenarioErrorListsWhatExists) {
    try {
        (void)named_scenario("paper/fig99");
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("paper/fig99"), std::string::npos);
        EXPECT_NE(what.find("paper/fig04"), std::string::npos);
    }
}

TEST(Scenarios, DownstreamRegistrationWorks) {
    auto& registry = ScenarioRegistry::instance();
    registry.replace("test/custom", "a test scenario", [] {
        ExperimentSpec spec = default_experiment(DatasetKind::mnist_f);
        spec.auction.winners = 7;
        return spec;
    });
    EXPECT_EQ(named_scenario("test/custom").auction.winners, 7u);
    registry.remove("test/custom");
    EXPECT_FALSE(registry.contains("test/custom"));
}

// ---------------------------------------------------------------------------
// ExperimentTrial facade + the runner
// ---------------------------------------------------------------------------

TEST(ExperimentTrialTest, MatchesTheUnderlyingSimulationEngineBitForBit) {
    const ExperimentSpec spec = tiny_spec();
    ExperimentTrial facade(spec, /*trial_index=*/0);
    SimulationTrial engine(to_simulation_config(spec), /*trial_index=*/0);
    const fl::RunResult a = facade.run("fmore");
    const fl::RunResult b = engine.run(Strategy::fmore);
    ASSERT_EQ(a.rounds.size(), b.rounds.size());
    for (std::size_t r = 0; r < a.rounds.size(); ++r) {
        EXPECT_EQ(a.rounds[r].test_accuracy, b.rounds[r].test_accuracy);
        EXPECT_EQ(a.rounds[r].test_loss, b.rounds[r].test_loss);
        EXPECT_EQ(a.rounds[r].mean_winner_payment, b.rounds[r].mean_winner_payment);
    }
    EXPECT_EQ(facade.last_all_scores(), engine.last_all_scores());
    EXPECT_EQ(facade.shards().size(), engine.shards().size());
}

TEST(ExperimentTrialTest, LegacyStrategyOverloadEqualsPolicyName) {
    const ExperimentSpec spec = tiny_spec();
    ExperimentTrial a(spec, 0);
    ExperimentTrial b(spec, 0);
    const fl::RunResult by_name = a.run("fixfl");
    const fl::RunResult by_enum = b.run(Strategy::fixfl);
    ASSERT_EQ(by_name.rounds.size(), by_enum.rounds.size());
    for (std::size_t r = 0; r < by_name.rounds.size(); ++r) {
        EXPECT_EQ(by_name.rounds[r].test_accuracy, by_enum.rounds[r].test_accuracy);
    }
}

TEST(ExperimentTrialTest, ConstructionRejectsInvalidSpecs) {
    ExperimentSpec spec = tiny_spec();
    spec.auction.psi = -1.0;
    EXPECT_THROW(ExperimentTrial(spec, 0), std::invalid_argument);
}

TEST(ExperimentTrialTest, RunnerDrivesSpecsAcrossTrials) {
    const ExperimentSpec spec = tiny_spec();
    const auto runs = run_experiment_trials(spec, "randfl", 2);
    ASSERT_EQ(runs.size(), 2u);
    for (const auto& run : runs) EXPECT_EQ(run.rounds.size(), spec.training.rounds);
    const AveragedSeries series = averaged_experiment(spec, "randfl", 2);
    EXPECT_EQ(series.rounds(), spec.training.rounds);
}

// ---------------------------------------------------------------------------
// Equilibrium cache
// ---------------------------------------------------------------------------

TEST(EquilibriumCacheTest, SecondTrialOfASweepHitsTheCache) {
    EquilibriumCache::instance().clear();
    const ExperimentSpec spec = tiny_spec();
    ExperimentTrial first(spec, 0);
    const auto after_first = EquilibriumCache::instance().stats();
    EXPECT_EQ(after_first.misses, 1u);
    EXPECT_EQ(after_first.entries, 1u);
    ExperimentTrial second(spec, 1);
    const auto after_second = EquilibriumCache::instance().stats();
    EXPECT_EQ(after_second.misses, 1u); // same game -> no re-solve
    EXPECT_GE(after_second.hits, 1u);
    // Different K -> different game -> a genuine miss.
    ExperimentSpec other = spec;
    other.auction.winners = 3;
    ExperimentTrial third(other, 0);
    EXPECT_EQ(EquilibriumCache::instance().stats().misses, 2u);
}

TEST(EquilibriumCacheTest, CachedTrialsStayDeterministic) {
    EquilibriumCache::instance().clear();
    const ExperimentSpec spec = tiny_spec();
    ExperimentTrial cold(spec, 0); // pays the solve
    ExperimentTrial warm(spec, 0); // shares the tabulation
    const fl::RunResult a = cold.run("fmore");
    const fl::RunResult b = warm.run("fmore");
    ASSERT_EQ(a.rounds.size(), b.rounds.size());
    for (std::size_t r = 0; r < a.rounds.size(); ++r) {
        EXPECT_EQ(a.rounds[r].test_accuracy, b.rounds[r].test_accuracy);
        EXPECT_EQ(a.rounds[r].mean_winner_payment, b.rounds[r].mean_winner_payment);
    }
}

} // namespace
} // namespace fmore::core
