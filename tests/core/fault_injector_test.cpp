// util::FaultInjector: the deterministic fault-plan engine. The contract
// under test is purity — event(shard, round) depends only on the plan and
// the arguments, never on call order — because a forked worker and the
// aggregator consult the SAME plan without communicating.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "fmore/util/fault_injector.hpp"

namespace fmore::util {
namespace {

TEST(FaultInjector, EmptyPlanNeverFires) {
    const FaultInjector plan;
    EXPECT_TRUE(plan.empty());
    for (std::size_t s = 0; s < 4; ++s)
        for (std::size_t r = 1; r <= 8; ++r)
            EXPECT_EQ(plan.event(s, r).kind, FaultKind::none);
}

TEST(FaultInjector, EventPlanFiresExactlyTheListedEvents) {
    const FaultInjector plan = FaultInjector::from_events(
        {{/*shard=*/1, /*round=*/2, FaultKind::stall, 3.0},
         {/*shard=*/0, /*round=*/4, FaultKind::bit_flip, 0.0},
         // Duplicate (shard, round): first match wins.
         {/*shard=*/1, /*round=*/2, FaultKind::crash_before_reply, 0.0}});
    EXPECT_FALSE(plan.empty());
    EXPECT_EQ(plan.event(1, 2).kind, FaultKind::stall);
    EXPECT_DOUBLE_EQ(plan.event(1, 2).seconds, 3.0);
    EXPECT_EQ(plan.event(0, 4).kind, FaultKind::bit_flip);
    EXPECT_EQ(plan.event(0, 2).kind, FaultKind::none);
    EXPECT_EQ(plan.event(1, 3).kind, FaultKind::none);
}

TEST(FaultInjector, SpecParsesNormalizesAndRoundTrips) {
    const FaultInjector plan =
        FaultInjector::from_spec("seed=7, crash=0.25, stall=0.1, stall_s=2");
    EXPECT_FALSE(plan.empty());
    EXPECT_FALSE(plan.spec().empty());
    // The normalized spec string reproduces the plan bit for bit.
    const FaultInjector replay = FaultInjector::from_spec(plan.spec());
    EXPECT_EQ(replay.spec(), plan.spec());
    for (std::size_t s = 0; s < 8; ++s) {
        for (std::size_t r = 1; r <= 32; ++r) {
            const FaultEvent a = plan.event(s, r);
            const FaultEvent b = replay.event(s, r);
            EXPECT_EQ(a.kind, b.kind) << "shard " << s << " round " << r;
            EXPECT_EQ(a.seconds, b.seconds);
        }
    }
}

TEST(FaultInjector, SeededDrawsArePureAndOrderIndependent) {
    // Two instances of the same plan, queried in opposite orders, must
    // agree on every (shard, round) — there is no hidden stream state.
    const FaultInjector forward = FaultInjector::from_spec("seed=11,crash=0.3");
    const FaultInjector backward = FaultInjector::from_spec("seed=11,crash=0.3");
    std::vector<FaultKind> fwd;
    for (std::size_t s = 0; s < 4; ++s)
        for (std::size_t r = 1; r <= 16; ++r)
            fwd.push_back(forward.event(s, r).kind);
    std::size_t i = fwd.size();
    for (std::size_t s = 4; s-- > 0;)
        for (std::size_t r = 16; r >= 1; --r)
            EXPECT_EQ(backward.event(s, r).kind, fwd[--i])
                << "shard " << s << " round " << r;
}

TEST(FaultInjector, SeededRatesRoughlyMatchProbabilities) {
    const FaultInjector plan =
        FaultInjector::from_spec("seed=3,crash=0.2,corrupt=0.3");
    std::map<FaultKind, std::size_t> counts;
    const std::size_t shards = 64;
    const std::size_t rounds = 64;
    for (std::size_t s = 0; s < shards; ++s)
        for (std::size_t r = 1; r <= rounds; ++r) ++counts[plan.event(s, r).kind];
    const double total = static_cast<double>(shards * rounds);
    EXPECT_NEAR(static_cast<double>(counts[FaultKind::crash_before_reply]) / total,
                0.2, 0.03);
    EXPECT_NEAR(static_cast<double>(counts[FaultKind::bit_flip]) / total, 0.3,
                0.03);
    EXPECT_NEAR(static_cast<double>(counts[FaultKind::none]) / total, 0.5, 0.03);
}

TEST(FaultInjector, DifferentSeedsGiveDifferentSchedules) {
    const FaultInjector a = FaultInjector::from_spec("seed=1,crash=0.5");
    const FaultInjector b = FaultInjector::from_spec("seed=2,crash=0.5");
    std::size_t disagreements = 0;
    for (std::size_t s = 0; s < 16; ++s)
        for (std::size_t r = 1; r <= 16; ++r)
            if (a.event(s, r).kind != b.event(s, r).kind) ++disagreements;
    EXPECT_GT(disagreements, 0u);
}

TEST(FaultInjector, InvalidSpecsThrowWithContext) {
    EXPECT_THROW((void)FaultInjector::from_spec("crash=1.5"),
                 std::invalid_argument);
    EXPECT_THROW((void)FaultInjector::from_spec("crash=-0.1"),
                 std::invalid_argument);
    // Probabilities must leave room for a clean draw partition.
    EXPECT_THROW((void)FaultInjector::from_spec("crash=0.6,stall=0.6"),
                 std::invalid_argument);
    EXPECT_THROW((void)FaultInjector::from_spec("warp=0.1"),
                 std::invalid_argument);
    EXPECT_THROW((void)FaultInjector::from_spec("stall_s=-2"),
                 std::invalid_argument);
    EXPECT_THROW((void)FaultInjector::from_spec("seed=notanumber"),
                 std::invalid_argument);
}

TEST(FaultInjector, LatencyModelMapsFaultsToVirtualClock) {
    const FaultInjector plan = FaultInjector::from_events(
        {{0, 1, FaultKind::crash_before_reply, 0.0},
         {1, 1, FaultKind::stall, 4.0},
         {2, 1, FaultKind::delayed_reply, 0.5},
         {3, 1, FaultKind::bit_flip, 0.0}});
    const auto latency = plan.latency_model(/*base_latency_s=*/0.01);
    EXPECT_TRUE(std::isinf(latency(0, 1)));  // crash: never answers
    EXPECT_DOUBLE_EQ(latency(1, 1), 4.01);
    EXPECT_DOUBLE_EQ(latency(2, 1), 0.51);
    // Wire-only faults have no in-process analogue.
    EXPECT_DOUBLE_EQ(latency(3, 1), 0.01);
    EXPECT_DOUBLE_EQ(latency(0, 2), 0.01);  // clean shard-round
}

// ---------------------------------------------------------------------------
// Coordinator-kill fault class (the crash-recovery harness)
// ---------------------------------------------------------------------------

TEST(FaultInjector, CoordinatorKillParsesAndRoundTrips) {
    const FaultInjector plan = FaultInjector::from_spec("ckill=4,ckill_mid=7");
    EXPECT_EQ(plan.coordinator_kill_round(), 4u);
    EXPECT_EQ(plan.coordinator_kill_mid_write_round(), 7u);
    const FaultInjector again = FaultInjector::from_spec(plan.spec());
    EXPECT_EQ(again.coordinator_kill_round(), 4u);
    EXPECT_EQ(again.coordinator_kill_mid_write_round(), 7u);
}

TEST(FaultInjector, CoordinatorKillIsNotAShardFault) {
    // A ckill-only plan must not arm the shard-level injector — the resumed
    // run and its uninterrupted twin would otherwise disagree on whether
    // the shard market sees a plan at all.
    const FaultInjector plan = FaultInjector::from_spec("ckill=3");
    EXPECT_FALSE(plan.empty());
    EXPECT_FALSE(plan.has_shard_faults());
    const FaultInjector mixed = FaultInjector::from_spec("ckill=3,crash=0.1");
    EXPECT_TRUE(mixed.has_shard_faults());
}

TEST(FaultInjector, CoordinatorKillRejectsRoundZero) {
    EXPECT_THROW((void)FaultInjector::from_spec("ckill=0"),
                 std::invalid_argument);
    EXPECT_THROW((void)FaultInjector::from_spec("ckill_mid=banana"),
                 std::invalid_argument);
}

} // namespace
} // namespace fmore::util
