// The acceptance contract of the SoA/fused round path: experiments driven
// through the structure-of-arrays population store and the fused
// BidFrame collect+rank pipeline reproduce the classic per-bid reference
// path (FMORE_BID_PATH=legacy) bit-identically — winners, payments,
// scores, accuracy and wall-clock metrics — on both the simulator and the
// testbed engine.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "fmore/core/scenarios.hpp"
#include "fmore/core/trials.hpp"

namespace fmore::core {
namespace {

ExperimentSpec tiny(const std::string& scenario) {
    ExperimentSpec spec = named_scenario(scenario);
    spec.training.train_samples = 900;
    spec.training.test_samples = 200;
    spec.training.rounds = 3;
    spec.training.eval_cap = 120;
    return spec;
}

std::vector<fl::RunResult> run_with_path(const ExperimentSpec& spec,
                                         const std::string& policy, const char* path) {
    const char* previous = std::getenv("FMORE_BID_PATH");
    const std::string saved = previous ? previous : "";
    if (path != nullptr) ::setenv("FMORE_BID_PATH", path, 1);
    else ::unsetenv("FMORE_BID_PATH");
    std::vector<fl::RunResult> runs;
    try {
        runs = run_experiment_trials(spec, policy, 2);
    } catch (...) {
        if (previous) ::setenv("FMORE_BID_PATH", saved.c_str(), 1);
        else ::unsetenv("FMORE_BID_PATH");
        throw;
    }
    if (previous) ::setenv("FMORE_BID_PATH", saved.c_str(), 1);
    else ::unsetenv("FMORE_BID_PATH");
    return runs;
}

void expect_runs_equal(const std::vector<fl::RunResult>& legacy,
                       const std::vector<fl::RunResult>& fused,
                       const std::string& label) {
    ASSERT_EQ(legacy.size(), fused.size()) << label;
    for (std::size_t t = 0; t < legacy.size(); ++t) {
        ASSERT_EQ(legacy[t].rounds.size(), fused[t].rounds.size()) << label;
        for (std::size_t r = 0; r < legacy[t].rounds.size(); ++r) {
            SCOPED_TRACE(label + ", trial " + std::to_string(t) + ", round "
                         + std::to_string(r + 1));
            const fl::RoundMetrics& a = legacy[t].rounds[r];
            const fl::RoundMetrics& b = fused[t].rounds[r];
            EXPECT_EQ(a.test_accuracy, b.test_accuracy);
            EXPECT_EQ(a.test_loss, b.test_loss);
            EXPECT_EQ(a.train_loss, b.train_loss);
            EXPECT_EQ(a.mean_winner_payment, b.mean_winner_payment);
            EXPECT_EQ(a.mean_winner_score, b.mean_winner_score);
            EXPECT_EQ(a.round_seconds, b.round_seconds);
            // Same winners in the same order, with the same contracted
            // volumes (promised data is read off the bid either way).
            const fl::SelectionRecord& sa = a.selection;
            const fl::SelectionRecord& sb = b.selection;
            ASSERT_EQ(sa.selected.size(), sb.selected.size());
            for (std::size_t w = 0; w < sa.selected.size(); ++w) {
                EXPECT_EQ(sa.selected[w].client, sb.selected[w].client);
                EXPECT_EQ(sa.selected[w].payment, sb.selected[w].payment);
                EXPECT_EQ(sa.selected[w].score, sb.selected[w].score);
                EXPECT_EQ(sa.selected[w].train_samples, sb.selected[w].train_samples);
            }
            EXPECT_EQ(sa.all_scores, sb.all_scores);
            EXPECT_EQ(sa.scores_by_node, sb.scores_by_node);
        }
    }
}

TEST(SoaBitIdentity, SimulatorTrialMatchesLegacyPath) {
    const ExperimentSpec spec = tiny("paper/fig04");
    expect_runs_equal(run_with_path(spec, "fmore", "legacy"),
                      run_with_path(spec, "fmore", nullptr), "sim fmore");
}

TEST(SoaBitIdentity, SimulatorPartialScoreboardMatchesLegacyPath) {
    ExperimentSpec spec = tiny("paper/fig04");
    spec.auction.full_scoreboard = false;  // the fused O(N log K) top-K path
    expect_runs_equal(run_with_path(spec, "fmore", "legacy"),
                      run_with_path(spec, "fmore", nullptr), "sim fmore partial");
}

TEST(SoaBitIdentity, SimulatorPsiFMoreMatchesLegacyPath) {
    ExperimentSpec spec = tiny("paper/fig04");
    spec.auction.psi = 0.5;
    expect_runs_equal(run_with_path(spec, "psi_fmore", "legacy"),
                      run_with_path(spec, "psi_fmore", nullptr), "sim psi_fmore");
}

TEST(SoaBitIdentity, TestbedTrialMatchesLegacyPath) {
    ExperimentSpec spec = tiny("testbed/default");
    spec.auction.full_scoreboard = false;
    expect_runs_equal(run_with_path(spec, "fmore", "legacy"),
                      run_with_path(spec, "fmore", nullptr), "testbed fmore");
}

TEST(SoaBitIdentity, SecondScoreMechanismMatchesLegacyPath) {
    ExperimentSpec spec = tiny("paper/fig04");
    spec.auction.mechanism = "second_score";
    spec.auction.full_scoreboard = false;  // exercises the top-(K+1) cut
    expect_runs_equal(run_with_path(spec, "fmore", "legacy"),
                      run_with_path(spec, "fmore", nullptr), "sim second_score");
}

} // namespace
} // namespace fmore::core
