// Section-bounded ledger splicing (util/json_ledger.hpp): the contract
// that lets scale_round, fault_matrix and streaming_market co-own
// BENCH_scale.json. The historical failure modes pinned here:
//
//  - fault_matrix located its section with a raw text search, so a key
//    name inside a nested string value (a row's "name", a fault-plan
//    string) could hijack the brace match;
//  - streaming_market rewrote everything from its key to EOF, so any
//    section that happened to sit AFTER "streaming" was destroyed —
//    splice order across benches was load-bearing;
//  - scale_round truncated the whole file, dropping every other bench's
//    section on a rerun.
//
// The helpers must therefore be string-aware, match only root-level
// members, replace exactly the member's span, and leave every other byte
// verbatim — for ANY ordering of the sections.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fmore/stats/rng.hpp"
#include "fmore/util/json_ledger.hpp"

namespace {

using fmore::util::extract_ledger_section;
using fmore::util::find_ledger_section;
using fmore::util::remove_ledger_section;
using fmore::util::splice_ledger_section;

/// A ledger whose `sections` appear in the given order, members joined
/// with ",\n  " inside a root object — the shape the benches emit.
std::string ledger_with(const std::vector<std::string>& sections) {
    std::string text = "{\n  ";
    for (std::size_t i = 0; i < sections.size(); ++i) {
        if (i > 0) text += ",\n  ";
        text += sections[i];
    }
    return text + "\n}\n";
}

const std::string kScale =
    "\"scale\": [\n    {\"n\": 10000, \"speedup\": 3.8},\n"
    "    {\"n\": 1000000, \"speedup\": 5.9}\n  ]";
// The faults rows carry every other section's key inside STRING VALUES —
// a raw text search would anchor on these.
const std::string kFaults =
    "\"faults\": {\n    \"rows\": [\n"
    "      {\"name\": \"streaming\", \"plan\": \"seed=17,crash=0.05\"},\n"
    "      {\"name\": \"scale\", \"plan\": \"brace {\\\" in \\\\ a string}\"}\n"
    "    ]\n  }";
const std::string kStreaming =
    "\"streaming\": {\n    \"rows\": [{\"n\": 10000, \"note\": \"faults\"}]\n  }";

} // namespace

TEST(LedgerSplice, FindsRootSectionsInAnyOrder) {
    std::vector<std::string> sections{kScale, kFaults, kStreaming};
    std::sort(sections.begin(), sections.end());
    do {
        const std::string text = ledger_with(sections);
        EXPECT_EQ(extract_ledger_section(text, "scale"), kScale) << text;
        EXPECT_EQ(extract_ledger_section(text, "faults"), kFaults) << text;
        EXPECT_EQ(extract_ledger_section(text, "streaming"), kStreaming) << text;
    } while (std::next_permutation(sections.begin(), sections.end()));
}

TEST(LedgerSplice, KeyInsideAStringValueNeverMatches) {
    // Only nested occurrences: "streaming" and "scale" exist solely as
    // string VALUES inside the faults rows.
    const std::string text = ledger_with({kFaults});
    EXPECT_EQ(extract_ledger_section(text, "streaming"), "");
    EXPECT_EQ(extract_ledger_section(text, "scale"), "");
    EXPECT_EQ(extract_ledger_section(text, "faults"), kFaults);
    // Nested member keys (depth > 1) are not root sections either.
    EXPECT_EQ(extract_ledger_section(text, "rows"), "");
    EXPECT_EQ(extract_ledger_section(text, "name"), "");
}

TEST(LedgerSplice, FindSpansPrimitiveAndArrayValues) {
    const std::string text =
        "{\n  \"smoke\": false,\n  \"k\": 32,\n  " + kScale + "\n}\n";
    EXPECT_EQ(extract_ledger_section(text, "smoke"), "\"smoke\": false");
    EXPECT_EQ(extract_ledger_section(text, "k"), "\"k\": 32");
    EXPECT_EQ(extract_ledger_section(text, "scale"), kScale);
    std::size_t begin = 0;
    std::size_t end = 0;
    EXPECT_FALSE(find_ledger_section(text, "shards", begin, end));
}

TEST(LedgerSplice, SpliceReplacesInPlaceAndPreservesNeighborsByteForByte) {
    const std::string fresh = "\"faults\": {\n    \"rows\": []\n  }";
    std::vector<std::string> sections{kScale, kFaults, kStreaming};
    std::sort(sections.begin(), sections.end());
    do {
        const std::string before = ledger_with(sections);
        const std::string after = splice_ledger_section(before, "faults", fresh);
        // The replaced section reads back as spliced; the others are
        // untouched, still in their original order.
        EXPECT_EQ(extract_ledger_section(after, "faults"), fresh);
        EXPECT_EQ(extract_ledger_section(after, "scale"), kScale);
        EXPECT_EQ(extract_ledger_section(after, "streaming"), kStreaming);
        std::vector<std::string> replaced = sections;
        for (std::string& s : replaced)
            if (s == kFaults) s = fresh;
        EXPECT_EQ(after, ledger_with(replaced));
    } while (std::next_permutation(sections.begin(), sections.end()));
}

TEST(LedgerSplice, SpliceAppendsWhenAbsentAndBootstrapsEmptyDocuments) {
    // Absent key: appended before the root close, neighbours intact.
    const std::string base = ledger_with({kScale});
    const std::string merged = splice_ledger_section(base, "streaming", kStreaming);
    EXPECT_EQ(extract_ledger_section(merged, "scale"), kScale);
    EXPECT_EQ(extract_ledger_section(merged, "streaming"), kStreaming);

    // No document at all, and an empty root object.
    const std::string fresh = splice_ledger_section("", "scale", kScale);
    EXPECT_EQ(extract_ledger_section(fresh, "scale"), kScale);
    const std::string from_empty = splice_ledger_section("{}\n", "scale", kScale);
    EXPECT_EQ(extract_ledger_section(from_empty, "scale"), kScale);
    // No separator before the first member of a previously empty object.
    EXPECT_EQ(from_empty.rfind("{\n  \"scale\"", 0), 0u) << from_empty;
}

TEST(LedgerSplice, RemoveStitchesTheJoiningComma) {
    std::vector<std::string> sections{kScale, kFaults, kStreaming};
    std::sort(sections.begin(), sections.end());
    do {
        for (const auto& [key, body] :
             {std::pair<std::string, std::string>{"scale", kScale},
              {"faults", kFaults},
              {"streaming", kStreaming}}) {
            const std::string after =
                remove_ledger_section(ledger_with(sections), key);
            EXPECT_EQ(extract_ledger_section(after, key), "") << after;
            std::vector<std::string> kept;
            for (const std::string& s : sections)
                if (s != body) kept.push_back(s);
            for (const std::string& s : kept)
                EXPECT_NE(after.find(s), std::string::npos) << after;
            // No dangling separator: the survivors re-render cleanly.
            EXPECT_EQ(after.find(",,"), std::string::npos) << after;
            EXPECT_EQ(after.find(",\n}"), std::string::npos) << after;
        }
    } while (std::next_permutation(sections.begin(), sections.end()));
    // Removing an absent or nested-only key is a no-op.
    const std::string text = ledger_with({kFaults});
    EXPECT_EQ(remove_ledger_section(text, "streaming"), text);
    EXPECT_EQ(remove_ledger_section(text, "rows"), text);
}

/// The end-to-end shuffle: three "benches" splice their sections into one
/// ledger in every possible run order, starting from a ledger whose
/// committed sections are themselves shuffled. Whatever the order, the
/// final ledger holds all three sections with the fresh content.
TEST(LedgerSplice, BenchRunOrderOverAShuffledLedgerIsIrrelevant) {
    const std::vector<std::pair<std::string, std::string>> benches = {
        {"scale", "\"scale\": [\n    {\"n\": 10000, \"speedup\": 4.1}\n  ]"},
        {"faults", "\"faults\": {\n    \"rows\": []\n  }"},
        {"streaming", "\"streaming\": {\n    \"rows\": []\n  }"},
    };
    fmore::stats::Rng rng(41);
    const std::vector<std::string> sections{kScale, kFaults, kStreaming};
    std::vector<std::size_t> shuffle{0, 1, 2};
    std::vector<std::size_t> order{0, 1, 2};
    std::sort(order.begin(), order.end());
    do {
        rng.shuffle(shuffle);
        std::vector<std::string> committed;
        for (const std::size_t s : shuffle) committed.push_back(sections[s]);
        std::string text = ledger_with(committed);
        for (const std::size_t b : order)
            text = splice_ledger_section(std::move(text), benches[b].first,
                                         benches[b].second);
        for (const auto& [key, body] : benches)
            EXPECT_EQ(extract_ledger_section(text, key), body) << text;
    } while (std::next_permutation(order.begin(), order.end()));
}
