#include <gtest/gtest.h>

#include "fmore/core/realworld.hpp"
#include "fmore/core/simulation.hpp"

namespace fmore::core {
namespace {

/// Tiny configuration so the whole trial runs in well under a second.
SimulationConfig tiny_config() {
    SimulationConfig config;
    config.train_samples = 900;
    config.test_samples = 300;
    config.num_nodes = 20;
    config.winners = 5;
    config.rounds = 3;
    config.data_lo = 10;
    config.data_hi = 40;
    config.eval_cap = 200;
    return config;
}

TEST(SimulationTrial, BuildsConsistentWorld) {
    const SimulationTrial trial(tiny_config(), 0);
    EXPECT_EQ(trial.shards().size(), 20u);
    EXPECT_EQ(trial.train_set().size(), 900u);
    EXPECT_EQ(trial.test_set().size(), 300u);
    EXPECT_EQ(trial.equilibrium().num_bidders(), 20u);
    EXPECT_EQ(trial.equilibrium().num_winners(), 5u);
}

TEST(SimulationTrial, AllStrategiesRun) {
    SimulationTrial trial(tiny_config(), 0);
    for (const Strategy s : {Strategy::fmore, Strategy::psi_fmore, Strategy::randfl,
                             Strategy::fixfl}) {
        const fl::RunResult result = trial.run(s);
        ASSERT_EQ(result.rounds.size(), 3u) << to_string(s);
        for (const auto& round : result.rounds) {
            EXPECT_EQ(round.selection.selected.size(), 5u);
            EXPECT_GE(round.test_accuracy, 0.0);
            EXPECT_LE(round.test_accuracy, 1.0);
        }
    }
}

TEST(SimulationTrial, FMoreRecordsAuctionArtifacts) {
    SimulationTrial trial(tiny_config(), 0);
    const fl::RunResult result = trial.run(Strategy::fmore);
    EXPECT_GT(result.rounds.back().mean_winner_payment, 0.0);
    EXPECT_EQ(trial.last_all_scores().size(), 20u);
    for (const auto& sel : result.rounds.back().selection.selected) {
        EXPECT_TRUE(sel.train_samples.has_value());
    }
}

TEST(SimulationTrial, BaselinesHaveNoPayments) {
    SimulationTrial trial(tiny_config(), 0);
    const fl::RunResult result = trial.run(Strategy::randfl);
    EXPECT_DOUBLE_EQ(result.rounds.back().mean_winner_payment, 0.0);
    EXPECT_TRUE(result.rounds.back().selection.all_scores.empty());
}

TEST(SimulationTrial, TrialsAreReproducible) {
    SimulationTrial a(tiny_config(), 1);
    SimulationTrial b(tiny_config(), 1);
    const auto ra = a.run(Strategy::fmore);
    const auto rb = b.run(Strategy::fmore);
    ASSERT_EQ(ra.rounds.size(), rb.rounds.size());
    for (std::size_t r = 0; r < ra.rounds.size(); ++r) {
        EXPECT_DOUBLE_EQ(ra.rounds[r].test_accuracy, rb.rounds[r].test_accuracy);
    }
}

TEST(SimulationTrial, DifferentTrialsDiffer) {
    SimulationTrial a(tiny_config(), 0);
    SimulationTrial b(tiny_config(), 1);
    const auto ra = a.run(Strategy::fmore);
    const auto rb = b.run(Strategy::fmore);
    bool any_diff = false;
    for (std::size_t r = 0; r < ra.rounds.size(); ++r) {
        if (ra.rounds[r].test_accuracy != rb.rounds[r].test_accuracy) any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(DefaultSimulation, AdjustsLstmHyperparameters) {
    const SimulationConfig img = default_simulation(DatasetKind::mnist_o);
    const SimulationConfig txt = default_simulation(DatasetKind::hpnews);
    EXPECT_GT(txt.learning_rate, img.learning_rate);
    EXPECT_GT(txt.local_epochs, img.local_epochs);
    EXPECT_EQ(txt.dataset, DatasetKind::hpnews);
}

TEST(Names, ToStringCoversAllEnumerators) {
    EXPECT_EQ(to_string(DatasetKind::mnist_o), "MNIST-O");
    EXPECT_EQ(to_string(DatasetKind::mnist_f), "MNIST-F");
    EXPECT_EQ(to_string(DatasetKind::cifar10), "CIFAR-10");
    EXPECT_EQ(to_string(DatasetKind::hpnews), "HPNews");
    EXPECT_EQ(to_string(Strategy::fmore), "FMore");
    EXPECT_EQ(to_string(Strategy::psi_fmore), "psi-FMore");
    EXPECT_EQ(to_string(Strategy::randfl), "RandFL");
    EXPECT_EQ(to_string(Strategy::fixfl), "FixFL");
}

TEST(RealWorldTrial, RunsWithWallClock) {
    RealWorldConfig config;
    config.train_samples = 900;
    config.test_samples = 300;
    config.num_nodes = 12;
    config.winners = 4;
    config.rounds = 2;
    config.data_lo = 20;
    config.data_hi = 60;
    config.eval_cap = 150;
    RealWorldTrial trial(config, 0);
    const fl::RunResult fmore = trial.run(Strategy::fmore);
    ASSERT_EQ(fmore.rounds.size(), 2u);
    for (const auto& round : fmore.rounds) {
        EXPECT_GT(round.round_seconds, 0.0);
    }
    const fl::RunResult rand = trial.run(Strategy::randfl);
    EXPECT_GT(rand.total_seconds(), 0.0);
}

} // namespace
} // namespace fmore::core
