#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "fmore/core/report.hpp"

namespace fmore::core {
namespace {

TEST(TablePrinter, HeaderAndRows) {
    std::ostringstream out;
    TablePrinter table(out, {"a", "b"}, 8);
    table.row({1.0, 2.5}, 1);
    const std::string text = out.str();
    EXPECT_NE(text.find("a"), std::string::npos);
    EXPECT_NE(text.find("b"), std::string::npos);
    EXPECT_NE(text.find("1.0"), std::string::npos);
    EXPECT_NE(text.find("2.5"), std::string::npos);
}

TEST(TablePrinter, RejectsWrongCellCount) {
    std::ostringstream out;
    TablePrinter table(out, {"a", "b"});
    EXPECT_THROW(table.row(std::vector<double>{1.0}), std::invalid_argument);
    EXPECT_THROW(TablePrinter(out, {}), std::invalid_argument);
}

TEST(Format, FixedAndPercent) {
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(1.0, 0), "1");
    EXPECT_EQ(percent(0.513), "51.3%");
    EXPECT_EQ(percent(0.5, 0), "50%");
}

TEST(WriteCsv, RoundTrip) {
    const std::string path = "/tmp/fmore_report_test.csv";
    write_csv(path, {"x", "y"}, {{1.0, 2.0}, {3.0, 4.0}});
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "x,y");
    std::getline(in, line);
    EXPECT_EQ(line, "1,3");
    std::getline(in, line);
    EXPECT_EQ(line, "2,4");
    std::remove(path.c_str());
}

TEST(WriteCsv, RaggedColumnsPadded) {
    const std::string path = "/tmp/fmore_report_ragged.csv";
    write_csv(path, {"x", "y"}, {{1.0}, {3.0, 4.0}});
    std::ifstream in(path);
    std::string line;
    std::getline(in, line); // header
    std::getline(in, line);
    EXPECT_EQ(line, "1,3");
    std::getline(in, line);
    EXPECT_EQ(line, ",4");
    std::remove(path.c_str());
}

TEST(WriteCsv, RejectsMismatch) {
    EXPECT_THROW(write_csv("/tmp/x.csv", {"a"}, {{1.0}, {2.0}}), std::invalid_argument);
}

} // namespace
} // namespace fmore::core
