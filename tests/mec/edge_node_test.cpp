#include <gtest/gtest.h>

#include "fmore/mec/edge_node.hpp"

namespace fmore::mec {
namespace {

ResourceState caps() {
    ResourceState r;
    r.data_size = 100.0;
    r.category_proportion = 0.8;
    r.bandwidth_mbps = 500.0;
    r.cpu_cores = 8.0;
    return r;
}

TEST(EdgeNode, InitialStateClampedToCaps) {
    ResourceState initial = caps();
    initial.bandwidth_mbps = 900.0; // above cap
    const EdgeNode node(3, 1.0, initial, caps());
    EXPECT_EQ(node.id(), 3u);
    EXPECT_DOUBLE_EQ(node.theta(), 1.0);
    EXPECT_DOUBLE_EQ(node.resources().bandwidth_mbps, 500.0);
}

TEST(EdgeNode, EvolveKeepsResourcesInsideEnvelope) {
    EdgeNode node(0, 1.0, caps(), caps());
    ResourceDynamics dyn;
    dyn.resource_jitter = 0.2;
    dyn.theta_jitter = 0.1;
    stats::Rng rng(1);
    for (int r = 0; r < 200; ++r) {
        node.evolve(dyn, 0.5, 1.5, rng);
        EXPECT_LE(node.resources().bandwidth_mbps, caps().bandwidth_mbps + 1e-9);
        EXPECT_GE(node.resources().bandwidth_mbps, 0.0);
        EXPECT_LE(node.resources().cpu_cores, caps().cpu_cores + 1e-9);
        EXPECT_LE(node.resources().data_size, caps().data_size + 1e-9);
        EXPECT_GE(node.theta(), 0.5);
        EXPECT_LE(node.theta(), 1.5);
    }
}

TEST(EdgeNode, ZeroJitterFreezesResources) {
    EdgeNode node(0, 1.0, caps(), caps());
    ResourceDynamics dyn;
    dyn.resource_jitter = 0.0;
    dyn.theta_jitter = 0.0;
    stats::Rng rng(2);
    const ResourceState before = node.resources();
    node.evolve(dyn, 0.5, 1.5, rng);
    EXPECT_DOUBLE_EQ(node.resources().bandwidth_mbps, before.bandwidth_mbps);
    EXPECT_DOUBLE_EQ(node.resources().cpu_cores, before.cpu_cores);
    EXPECT_DOUBLE_EQ(node.theta(), 1.0);
}

TEST(EdgeNode, ResourcesActuallyDrift) {
    EdgeNode node(0, 1.0, caps(), caps());
    ResourceDynamics dyn;
    dyn.resource_jitter = 0.15;
    stats::Rng rng(3);
    const double before = node.resources().bandwidth_mbps;
    bool moved = false;
    for (int r = 0; r < 10 && !moved; ++r) {
        node.evolve(dyn, 0.5, 1.5, rng);
        moved = node.resources().bandwidth_mbps != before;
    }
    EXPECT_TRUE(moved);
}

TEST(EdgeNode, ThetaJitterRequiresValidBounds) {
    EdgeNode node(0, 1.0, caps(), caps());
    ResourceDynamics dyn;
    dyn.theta_jitter = 0.1;
    stats::Rng rng(4);
    EXPECT_THROW(node.evolve(dyn, 1.5, 0.5, rng), std::invalid_argument);
}

} // namespace
} // namespace fmore::mec
