// Failure semantics of the sharded market, both engines:
//  - in-process ShardedAuctionSelector: a deterministic virtual clock
//    (set_virtual_latency / set_fault_injector) drives shard drops — no
//    wall time, so degraded rounds replay bit-identically, and the
//    degradation is surfaced in SelectionRecord::dropped_shards and
//    RoundMetrics::dropped_shards;
//  - multi-process ProcessShardAggregator: un-degraded rounds are
//    bit-identical to the monolithic salted market; a worker that stalls
//    past shard_timeout_s or dies mid-round is evicted, the round
//    completes over the survivors, and — with a respawn budget — the
//    supervisor re-forks and re-syncs the worker so later rounds are
//    bit-identical to a run that never failed. Corrupt frames (flipped
//    bits, self-described-short writes) are caught by the payload CRC,
//    re-requested once, and never consumed.
// Fault margins are generous on purpose (10 s stalls against 0.25 s
// deadlines) so the tests assert semantics, not scheduler luck.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <memory>
#include <vector>

#include "fmore/auction/cost.hpp"
#include "fmore/auction/equilibrium.hpp"
#include "fmore/auction/mechanism.hpp"
#include "fmore/auction/scoring.hpp"
#include "fmore/fl/coordinator.hpp"
#include "fmore/mec/auction_selector.hpp"
#include "fmore/mec/population.hpp"
#include "fmore/mec/shard_aggregator.hpp"
#include "fmore/mec/sharded_selector.hpp"
#include "fmore/mec/wire_format.hpp"
#include "fmore/ml/model_zoo.hpp"
#include "fmore/ml/synthetic.hpp"
#include "fmore/stats/normalizer.hpp"
#include "fmore/util/fault_injector.hpp"

namespace fmore::mec {
namespace {

constexpr double kDataHi = 150.0;

struct Market {
    std::vector<stats::MinMaxNormalizer> norms;
    std::unique_ptr<auction::ScaledProductScoring> scoring;
    std::unique_ptr<auction::AdditiveCost> cost;
    std::unique_ptr<stats::UniformDistribution> theta;
    std::unique_ptr<auction::EquilibriumStrategy> strategy;

    Market() {
        norms.emplace_back(0.0, kDataHi);
        norms.emplace_back(0.0, 1.0);
        scoring = std::make_unique<auction::ScaledProductScoring>(25.0, 2, norms);
        cost = std::make_unique<auction::AdditiveCost>(
            std::vector<double>{6.0 / kDataHi, 2.0});
        theta = std::make_unique<stats::UniformDistribution>(0.5, 1.5);
        auction::EquilibriumConfig eq;
        eq.num_bidders = 100;
        eq.num_winners = 8;
        strategy = std::make_unique<auction::EquilibriumStrategy>(
            auction::EquilibriumSolver(*scoring, *cost, *theta, {1.0, 0.05},
                                       {kDataHi, 1.0}, eq)
                .solve());
    }
};

const Market& market() {
    static const Market m;
    return m;
}

PopulationStore make_store(std::size_t n, std::uint64_t seed) {
    PopulationSpec spec;
    spec.dynamics.resource_jitter = 0.08;
    spec.dynamics.theta_jitter = 0.02;
    SyntheticDataSpec data;
    data.data_lo = 20.0;
    data.data_hi = kDataHi;
    stats::Rng rng(seed);
    return PopulationStore(n, data, *market().theta, spec, rng);
}

QualityLayout layout() {
    return {ResourceDim::data_size, ResourceDim::category_proportion};
}

/// Global node range [lo, hi) of shard `s` under an even split of n.
std::pair<std::size_t, std::size_t> shard_range(std::size_t n, std::size_t shards,
                                                std::size_t s) {
    std::vector<std::size_t> cuts = PopulationStore::even_boundaries(n, shards);
    cuts.insert(cuts.begin(), 0);
    return {cuts[s], s + 1 < shards ? cuts[s + 1] : n};
}

bool any_winner_in(const std::vector<auction::Winner>& winners, std::size_t lo,
                   std::size_t hi) {
    return std::any_of(winners.begin(), winners.end(), [&](const auction::Winner& w) {
        return w.node >= lo && w.node < hi;
    });
}

// ---------------------------------------------------------------------------
// In-process: deterministic virtual-clock degradation
// ---------------------------------------------------------------------------

ShardedAuctionSelector make_sharded(std::vector<PopulationStore> shards) {
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = 8;
    return ShardedAuctionSelector(std::move(shards), *market().scoring,
                                  *market().strategy, wd, layout(),
                                  /*data_dimension=*/0);
}

TEST(ShardFault, VirtualLatencyDropsShardsDeterministically) {
    const std::size_t n = 60;
    const std::size_t shards = 4;
    // Shard 2 misses the 1-second deadline from round 2 on; everyone else
    // answers instantly. Two independent selectors must replay the
    // degraded rounds bit-identically — the clock is virtual.
    auto latency = [](std::size_t shard, std::size_t round) {
        return shard == 2 && round >= 2 ? 5.0 : 0.01;
    };
    auto run = [&](std::vector<std::vector<auction::Winner>>& winners_out) {
        ShardedAuctionSelector sharded = make_sharded(make_store(n, 5).split_even(shards));
        sharded.set_shard_timeout(1.0);
        sharded.set_virtual_latency(latency);
        stats::Rng rng(77);
        for (std::size_t round = 1; round <= 3; ++round) {
            const auction::AuctionOutcome& o = sharded.run_auction_round(round, 8, rng);
            winners_out.push_back(o.winners);
            if (round == 1) {
                EXPECT_TRUE(sharded.last_dropped_shards().empty());
            } else {
                EXPECT_EQ(sharded.last_dropped_shards(),
                          (std::vector<std::size_t>{2}));
            }
            // The round still fills its K slots — from responsive shards.
            EXPECT_EQ(o.winners.size(), 8u);
            const auto [lo, hi] = shard_range(n, shards, 2);
            if (round >= 2) {
                EXPECT_FALSE(any_winner_in(o.winners, lo, hi))
                    << "a dropped shard contributed a winner in round " << round;
            }
        }
    };
    std::vector<std::vector<auction::Winner>> first, second;
    run(first);
    run(second);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t r = 0; r < first.size(); ++r) {
        ASSERT_EQ(first[r].size(), second[r].size()) << "round " << r + 1;
        for (std::size_t w = 0; w < first[r].size(); ++w) {
            EXPECT_EQ(first[r][w].node, second[r][w].node);
            EXPECT_EQ(first[r][w].payment, second[r][w].payment);
            EXPECT_EQ(first[r][w].score, second[r][w].score);
        }
    }
}

TEST(ShardFault, DroppedShardsSurfaceInSelectionRecord) {
    ShardedAuctionSelector sharded = make_sharded(make_store(40, 9).split_even(4));
    sharded.set_shard_timeout(0.5);
    sharded.set_virtual_latency(
        [](std::size_t shard, std::size_t) { return shard == 1 ? 2.0 : 0.0; });
    stats::Rng rng(3);
    const fl::SelectionRecord record = sharded.select(1, 6, rng);
    EXPECT_EQ(record.dropped_shards, (std::vector<std::size_t>{1}));
    EXPECT_EQ(record.selected.size(), 6u);
}

TEST(ShardFault, ZeroTimeoutDisablesDropping) {
    ShardedAuctionSelector sharded = make_sharded(make_store(40, 9).split_even(4));
    sharded.set_virtual_latency([](std::size_t, std::size_t) { return 1e9; });
    // No timeout installed: even absurd latencies drop nothing.
    stats::Rng rng(4);
    (void)sharded.run_auction_round(1, 6, rng);
    EXPECT_TRUE(sharded.last_dropped_shards().empty());
    EXPECT_THROW(sharded.set_shard_timeout(-1.0), std::invalid_argument);
}

TEST(ShardFault, DegradationSurfacesInRoundMetrics) {
    // End to end through a real federated run: the coordinator must carry
    // the per-round drop count into RoundMetrics.
    stats::Rng rng(1);
    ml::ImageDatasetSpec image_spec;
    image_spec.samples = 700;
    const ml::Dataset data = ml::make_synthetic_images(image_spec, rng);
    stats::Rng prng(2);
    std::vector<ml::ClientShard> shards = ml::partition_non_iid_variable(data, 12, 1, 4, prng);
    ml::resize_shards(shards, data, 10, 40, prng);

    std::vector<stats::MinMaxNormalizer> norms{{0.0, 40.0}, {0.0, 1.0}};
    auction::ScaledProductScoring scoring(25.0, 2, norms);
    auction::AdditiveCost cost(std::vector<double>{6.0 / 40.0, 2.0});
    stats::UniformDistribution theta(0.5, 1.5);
    auction::EquilibriumConfig eq;
    eq.num_bidders = 12;
    eq.num_winners = 4;
    const auction::EquilibriumStrategy strategy =
        auction::EquilibriumSolver(scoring, cost, theta, {1.0, 0.05}, {40.0, 1.0}, eq)
            .solve();

    PopulationSpec pop_spec;
    stats::Rng pop_rng(3);
    MecPopulation population(shards, 10, theta, pop_spec, pop_rng);
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = 4;
    ShardedAuctionSelector selector(population, scoring, strategy, wd, layout(),
                                    /*data_dimension=*/0, /*num_shards=*/3);
    selector.set_shard_timeout(0.5);
    selector.set_virtual_latency(
        [](std::size_t shard, std::size_t round) { return shard == 0 && round >= 2 ? 9.0 : 0.0; });

    ml::Model model = ml::make_mlp(ml::ImageSpec{1, 12, 12, 10}, 3);
    fl::CoordinatorConfig cc;
    cc.rounds = 3;
    cc.winners_per_round = 4;
    cc.local_epochs = 1;
    cc.batch_size = 16;
    cc.learning_rate = 0.08;
    fl::Coordinator coordinator(model, data, data, shards, cc);
    stats::Rng run_rng(11);
    const fl::RunResult result = coordinator.run(selector, run_rng);
    ASSERT_EQ(result.rounds.size(), 3u);
    EXPECT_EQ(result.rounds[0].dropped_shards, 0u);
    EXPECT_EQ(result.rounds[1].dropped_shards, 1u);
    EXPECT_EQ(result.rounds[2].dropped_shards, 1u);
    EXPECT_EQ(result.rounds[1].selection.dropped_shards,
              (std::vector<std::size_t>{0}));
}

// ---------------------------------------------------------------------------
// In-process: fault-injector-driven rejoin, every registered mechanism
// ---------------------------------------------------------------------------

TEST(ShardFault, EveryMechanismRejoinsBitIdenticalInProcess) {
    // Crash shard 1 in round 2 only. The virtual clock drops it for that
    // round; from round 3 it answers again, and because shards evolve by
    // (salt, global id) streams whether or not they made the deadline, the
    // rounds after the fault must be bit-identical to a run that never
    // failed — for EVERY registered mechanism (psi pinned to 1 so the
    // degraded round consumes the same generator draws as the clean one).
    const std::size_t n = 60;
    const std::size_t k = 6;
    const util::FaultInjector plan = util::FaultInjector::from_events(
        {{/*shard=*/1, /*round=*/2, util::FaultKind::crash_before_reply, 0.0}});
    for (const std::string& name : auction::MechanismRegistry::instance().names()) {
        SCOPED_TRACE(name);
        auction::WinnerDeterminationConfig wd;
        wd.mechanism = name;
        wd.num_winners = k;
        wd.tie_break = auction::TieBreak::salted;
        wd.full_ranking = false;
        if (name == "budget_feasible") wd.budget = 500.0;
        auto run = [&](bool faulty) {
            ShardedAuctionSelector sharded(make_store(n, 31).split_even(4),
                                           *market().scoring, *market().strategy,
                                           wd, layout(), /*data_dimension=*/0);
            if (faulty) {
                sharded.set_shard_timeout(1.0);
                sharded.set_fault_injector(plan);
            }
            std::vector<std::vector<auction::Winner>> winners;
            stats::Rng rng(31);
            for (std::size_t round = 1; round <= 4; ++round) {
                winners.push_back(sharded.run_auction_round(round, k, rng).winners);
                if (faulty && round == 2) {
                    EXPECT_EQ(sharded.last_dropped_shards(),
                              (std::vector<std::size_t>{1}));
                } else {
                    EXPECT_TRUE(sharded.last_dropped_shards().empty())
                        << "round " << round;
                }
            }
            return winners;
        };
        const auto clean = run(false);
        const auto faulty = run(true);
        const auto [lo, hi] = shard_range(n, 4, 1);
        for (std::size_t r = 0; r < 4; ++r) {
            SCOPED_TRACE("round " + std::to_string(r + 1));
            if (r == 1) {
                // The degraded round fills K from the live shards only.
                EXPECT_FALSE(any_winner_in(faulty[r], lo, hi));
                continue;
            }
            ASSERT_EQ(clean[r].size(), faulty[r].size());
            for (std::size_t w = 0; w < clean[r].size(); ++w) {
                EXPECT_EQ(clean[r][w].node, faulty[r][w].node);
                EXPECT_EQ(clean[r][w].payment, faulty[r][w].payment);
                EXPECT_EQ(clean[r][w].score, faulty[r][w].score);
            }
        }
    }
}

TEST(ShardFault, InProcessQuorumFailsFast) {
    ShardedAuctionSelector sharded = make_sharded(make_store(40, 9).split_even(4));
    sharded.set_shard_timeout(0.5);
    sharded.set_fault_injector(util::FaultInjector::from_events(
        {{0, 2, util::FaultKind::stall, 9.0}, {1, 2, util::FaultKind::stall, 9.0},
         {2, 2, util::FaultKind::stall, 9.0}}));
    sharded.set_min_live_shards(2);
    stats::Rng rng(12);
    (void)sharded.run_auction_round(1, 6, rng);  // all four answer
    EXPECT_THROW((void)sharded.run_auction_round(2, 6, rng), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Multi-process: the pipe-protocol aggregator
// ---------------------------------------------------------------------------

auction::WinnerDeterminationConfig wire_config(std::size_t k) {
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = k;
    wd.tie_break = auction::TieBreak::salted;
    wd.full_ranking = false;
    return wd;
}

ShardSupervisorConfig faults_only(std::vector<util::FaultEvent> events) {
    ShardSupervisorConfig sup;
    sup.faults = util::FaultInjector::from_events(std::move(events));
    return sup;
}

void expect_outcomes_equal(const auction::AuctionOutcome& a,
                           const auction::AuctionOutcome& b) {
    ASSERT_EQ(a.winners.size(), b.winners.size());
    for (std::size_t w = 0; w < a.winners.size(); ++w) {
        EXPECT_EQ(a.winners[w].node, b.winners[w].node);
        EXPECT_EQ(a.winners[w].score, b.winners[w].score);
        EXPECT_EQ(a.winners[w].payment, b.winners[w].payment);
    }
    ASSERT_EQ(a.ranking.size(), b.ranking.size());
    for (std::size_t r = 0; r < a.ranking.size(); ++r) {
        EXPECT_EQ(a.ranking[r].bid.node, b.ranking[r].bid.node);
        EXPECT_EQ(a.ranking[r].score, b.ranking[r].score);
        EXPECT_EQ(a.ranking[r].bid.payment, b.ranking[r].bid.payment);
    }
}

TEST(ShardFault, WorkerFdTableIsBoundedAndUniform) {
    // Fork/pipe hygiene regression: each worker must hold exactly its OWN
    // two pipe ends beyond stdio — no sibling pipe ends (the worker-side
    // closes) and nothing else leaked from the coordinator. Without the
    // hygiene, worker i would show 2 + 2*i pipes and the fd table would
    // grow with the shard count.
    const Market& m = market();
    ProcessShardAggregator aggregator(make_store(60, 0x77ULL), *m.scoring,
                                      *m.strategy, wire_config(6), layout(),
                                      /*num_shards=*/4,
                                      /*shard_timeout_s=*/30.0);
    // One full round before scanning: a worker that replied has certainly
    // finished its post-fork close() pass, so the /proc walk below cannot
    // race the worker's own setup.
    stats::Rng rng(0x77ULL);
    (void)aggregator.run_round(1, 6, rng);

    namespace fs = std::filesystem;
    std::vector<std::size_t> pipe_counts;
    std::vector<std::string> inherited; // non-pipe fds beyond stdio
    for (std::size_t s = 0; s < aggregator.num_shards(); ++s) {
        const int pid = aggregator.worker_pid(s);
        ASSERT_GT(pid, 0) << "worker " << s;
        std::size_t pipes = 0;
        std::string others;
        const fs::path fd_dir = "/proc/" + std::to_string(pid) + "/fd";
        for (const fs::directory_entry& entry : fs::directory_iterator(fd_dir)) {
            const int fd = std::stoi(entry.path().filename().string());
            if (fd <= 2) continue; // stdio, whatever the harness made it
            std::error_code ec;
            const std::string target = fs::read_symlink(entry.path(), ec).string();
            if (ec) continue;
            if (target.rfind("pipe:", 0) == 0) ++pipes;
            else others += " " + std::to_string(fd) + "->" + target;
        }
        pipe_counts.push_back(pipes);
        inherited.push_back(others);
    }
    for (std::size_t s = 0; s < pipe_counts.size(); ++s) {
        SCOPED_TRACE("worker " + std::to_string(s));
        // Exactly its OWN two pipe ends; without the sibling-close hygiene
        // worker s would hold 2 + 2*s pipe fds.
        EXPECT_EQ(pipe_counts[s], 2u) << "sibling pipe ends leaked";
        // Whatever the harness leaves open (ctest log fds etc.) is fork-
        // uniform; anything beyond worker 0's set leaked from the market.
        EXPECT_EQ(inherited[s], inherited[0]) << "descriptors leaked";
    }
}

TEST(ShardFault, ProcessAggregatorMatchesMonolithicSaltedMarket) {
    const Market& m = market();
    const std::size_t n = 80;
    const std::size_t k = 8;
    const std::uint64_t seed = 0x9a9aULL;
    const auction::WinnerDeterminationConfig wd = wire_config(k);

    MecPopulation population(make_store(n, seed));
    AuctionSelector mono(population, *m.scoring, *m.strategy, wd,
                         data_category_extractor(), /*data_dimension=*/0);
    ProcessShardAggregator aggregator(make_store(n, seed), *m.scoring, *m.strategy, wd,
                                      layout(), /*num_shards=*/4,
                                      /*shard_timeout_s=*/30.0);
    ASSERT_EQ(aggregator.num_shards(), 4u);
    ASSERT_EQ(aggregator.population_size(), n);

    stats::Rng mono_rng(seed);
    stats::Rng agg_rng(seed);
    for (std::size_t round = 1; round <= 4; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        const auction::AuctionOutcome& a = mono.run_auction_round(round, k, mono_rng);
        const auction::AuctionOutcome& b = aggregator.run_round(round, k, agg_rng);
        EXPECT_TRUE(aggregator.last_dropped_shards().empty());
        ASSERT_EQ(a.winners.size(), b.winners.size());
        for (std::size_t w = 0; w < a.winners.size(); ++w) {
            EXPECT_EQ(a.winners[w].node, b.winners[w].node);
            EXPECT_EQ(a.winners[w].score, b.winners[w].score);
            EXPECT_EQ(a.winners[w].payment, b.winners[w].payment);
        }
        ASSERT_EQ(a.ranking.size(), b.ranking.size());
        for (std::size_t r = 0; r < a.ranking.size(); ++r) {
            EXPECT_EQ(a.ranking[r].bid.node, b.ranking[r].bid.node);
            EXPECT_EQ(a.ranking[r].score, b.ranking[r].score);
            EXPECT_EQ(a.ranking[r].bid.payment, b.ranking[r].bid.payment);
        }
    }
    EXPECT_EQ(aggregator.dead_shards(), 0u);
}

TEST(ShardFault, StalledWorkerIsEvictedAndRoundCompletes) {
    const std::size_t n = 60;
    const std::size_t shards = 3;
    // Shard 1 stalls 10 s in round 2 against a 0.25 s deadline. No respawn
    // budget: eviction is permanent (the legacy mode).
    ProcessShardAggregator aggregator(
        make_store(n, 21), *market().scoring, *market().strategy, wire_config(6),
        layout(), shards, /*shard_timeout_s=*/0.25,
        faults_only({{/*shard=*/1, /*round=*/2, util::FaultKind::stall, 10.0}}));
    stats::Rng rng(21);
    const auto [lo, hi] = shard_range(n, shards, 1);

    (void)aggregator.run_round(1, 6, rng);
    EXPECT_TRUE(aggregator.last_dropped_shards().empty());

    const auction::AuctionOutcome& degraded = aggregator.run_round(2, 6, rng);
    EXPECT_EQ(aggregator.last_dropped_shards(), (std::vector<std::size_t>{1}));
    EXPECT_EQ(aggregator.dead_shards(), 1u);
    EXPECT_EQ(aggregator.last_health().evictions, 1u);
    EXPECT_EQ(aggregator.last_health().live_shards, 2u);
    EXPECT_EQ(degraded.winners.size(), 6u);
    EXPECT_FALSE(any_winner_in(degraded.winners, lo, hi));

    // Eviction is permanent: the shard stays out, the market keeps going.
    const auction::AuctionOutcome& later = aggregator.run_round(3, 6, rng);
    EXPECT_EQ(aggregator.dead_shards(), 1u);
    EXPECT_EQ(aggregator.last_health().evictions, 0u);
    EXPECT_EQ(aggregator.lifetime_health().evictions, 1u);
    EXPECT_EQ(later.winners.size(), 6u);
    EXPECT_FALSE(any_winner_in(later.winners, lo, hi));
}

TEST(ShardFault, DyingWorkerIsEvictedAndRoundCompletes) {
    const std::size_t n = 60;
    const std::size_t shards = 3;
    ProcessShardAggregator aggregator(
        make_store(n, 22), *market().scoring, *market().strategy, wire_config(6),
        layout(), shards, /*shard_timeout_s=*/5.0,
        faults_only({{/*shard=*/2, /*round=*/2,
                      util::FaultKind::crash_before_reply, 0.0}}));
    stats::Rng rng(22);
    (void)aggregator.run_round(1, 6, rng);
    EXPECT_TRUE(aggregator.last_dropped_shards().empty());
    const auction::AuctionOutcome& degraded = aggregator.run_round(2, 6, rng);
    EXPECT_EQ(aggregator.last_dropped_shards(), (std::vector<std::size_t>{2}));
    EXPECT_EQ(aggregator.dead_shards(), 1u);
    EXPECT_EQ(degraded.winners.size(), 6u);
    const auto [lo, hi] = shard_range(n, shards, 2);
    EXPECT_FALSE(any_winner_in(degraded.winners, lo, hi));
}

TEST(ShardFault, DelayedReplyWithinDeadlineIsAbsorbed) {
    // A 50 ms delayed reply against a 10 s deadline degrades nothing and
    // changes no outcome: compare against an un-faulted twin.
    const std::size_t n = 40;
    ProcessShardAggregator clean(make_store(n, 25), *market().scoring,
                                 *market().strategy, wire_config(5), layout(),
                                 /*num_shards=*/2, /*shard_timeout_s=*/10.0);
    ProcessShardAggregator slow(
        make_store(n, 25), *market().scoring, *market().strategy, wire_config(5),
        layout(), /*num_shards=*/2, /*shard_timeout_s=*/10.0,
        faults_only({{/*shard=*/0, /*round=*/1,
                      util::FaultKind::delayed_reply, 0.05}}));
    stats::Rng rng_clean(25);
    stats::Rng rng_slow(25);
    for (std::size_t round = 1; round <= 2; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        const auction::AuctionOutcome& a = clean.run_round(round, 5, rng_clean);
        const auction::AuctionOutcome& b = slow.run_round(round, 5, rng_slow);
        EXPECT_TRUE(slow.last_dropped_shards().empty());
        EXPECT_EQ(slow.last_health().evictions, 0u);
        expect_outcomes_equal(a, b);
    }
}

TEST(ShardFault, CrashedWorkerRespawnsBitIdenticalEveryMechanism) {
    // THE tentpole acceptance: kill a worker mid-run, let the supervisor
    // re-fork and re-sync it, and every subsequent round must be
    // bit-identical to a run that never failed — for every registered
    // mechanism the wire supports (the exact score-auction engine under
    // its four registered names; psi pinned to 1 per the wire contract).
    const std::size_t n = 80;
    const std::size_t k = 8;
    const std::size_t shards = 4;
    for (const std::string& name :
         {std::string("first_score"), std::string("second_score"),
          std::string("psi_fmore"), std::string("budget_feasible")}) {
        SCOPED_TRACE(name);
        auction::WinnerDeterminationConfig wd = wire_config(k);
        wd.mechanism = name;
        if (name == "budget_feasible") wd.budget = 500.0;
        ShardSupervisorConfig sup;
        sup.faults = util::FaultInjector::from_events(
            {{/*shard=*/1, /*round=*/2, util::FaultKind::crash_before_reply, 0.0}});
        sup.max_respawns = 2;
        sup.respawn_backoff_s = 0.0;  // eligible again at the next round
        ProcessShardAggregator clean(make_store(n, 33), *market().scoring,
                                     *market().strategy, wd, layout(), shards,
                                     /*shard_timeout_s=*/30.0);
        ProcessShardAggregator faulty(make_store(n, 33), *market().scoring,
                                      *market().strategy, wd, layout(), shards,
                                      /*shard_timeout_s=*/30.0, sup);
        stats::Rng rng_clean(33);
        stats::Rng rng_faulty(33);
        const auto [lo, hi] = shard_range(n, shards, 1);
        for (std::size_t round = 1; round <= 5; ++round) {
            SCOPED_TRACE("round " + std::to_string(round));
            const auction::AuctionOutcome& a = clean.run_round(round, k, rng_clean);
            const auction::AuctionOutcome& b = faulty.run_round(round, k, rng_faulty);
            if (round == 2) {
                // The crash round degrades to the live shards.
                EXPECT_EQ(faulty.last_dropped_shards(),
                          (std::vector<std::size_t>{1}));
                EXPECT_EQ(faulty.last_health().evictions, 1u);
                EXPECT_FALSE(any_winner_in(b.winners, lo, hi));
                continue;
            }
            EXPECT_TRUE(faulty.last_dropped_shards().empty());
            if (round == 3) {
                EXPECT_EQ(faulty.last_health().respawns, 1u);
                EXPECT_EQ(faulty.live_shards(), shards);
            }
            expect_outcomes_equal(a, b);
        }
        EXPECT_EQ(faulty.lifetime_health().evictions, 1u);
        EXPECT_EQ(faulty.lifetime_health().respawns, 1u);
    }
}

TEST(ShardFault, CorruptFrameIsRetriedOnceNeverConsumed) {
    // A bit-flipped head frame fails the payload CRC; the aggregator must
    // re-request it ONCE and consume only the clean resend — every round
    // identical to an un-faulted twin, zero evictions.
    const std::size_t n = 60;
    ProcessShardAggregator clean(make_store(n, 41), *market().scoring,
                                 *market().strategy, wire_config(6), layout(),
                                 /*num_shards=*/3, /*shard_timeout_s=*/30.0);
    ProcessShardAggregator corrupt(
        make_store(n, 41), *market().scoring, *market().strategy, wire_config(6),
        layout(), /*num_shards=*/3, /*shard_timeout_s=*/30.0,
        faults_only({{/*shard=*/0, /*round=*/2, util::FaultKind::bit_flip, 0.0}}));
    stats::Rng rng_clean(41);
    stats::Rng rng_corrupt(41);
    for (std::size_t round = 1; round <= 3; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        const auction::AuctionOutcome& a = clean.run_round(round, 6, rng_clean);
        const auction::AuctionOutcome& b = corrupt.run_round(round, 6, rng_corrupt);
        EXPECT_TRUE(corrupt.last_dropped_shards().empty());
        EXPECT_EQ(corrupt.last_health().corrupt_frames, round == 2 ? 1u : 0u);
        EXPECT_EQ(corrupt.last_health().frame_retries, round == 2 ? 1u : 0u);
        EXPECT_EQ(corrupt.last_health().evictions, 0u);
        expect_outcomes_equal(a, b);
    }
    EXPECT_EQ(corrupt.lifetime_health().corrupt_frames, 1u);
    EXPECT_EQ(corrupt.lifetime_health().frame_retries, 1u);
    EXPECT_EQ(corrupt.dead_shards(), 0u);
}

TEST(ShardFault, TruncatedFrameIsRetriedOnceNeverConsumed) {
    // A self-described-short frame (claims and carries half the bytes
    // under the full payload's CRC) is the torn-write model: still framed,
    // caught by the CRC, recovered by one resend.
    const std::size_t n = 60;
    ProcessShardAggregator clean(make_store(n, 42), *market().scoring,
                                 *market().strategy, wire_config(6), layout(),
                                 /*num_shards=*/3, /*shard_timeout_s=*/30.0);
    ProcessShardAggregator torn(
        make_store(n, 42), *market().scoring, *market().strategy, wire_config(6),
        layout(), /*num_shards=*/3, /*shard_timeout_s=*/30.0,
        faults_only(
            {{/*shard=*/2, /*round=*/1, util::FaultKind::truncated_write, 0.0}}));
    stats::Rng rng_clean(42);
    stats::Rng rng_torn(42);
    for (std::size_t round = 1; round <= 2; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        const auction::AuctionOutcome& a = clean.run_round(round, 6, rng_clean);
        const auction::AuctionOutcome& b = torn.run_round(round, 6, rng_torn);
        EXPECT_TRUE(torn.last_dropped_shards().empty());
        EXPECT_EQ(torn.last_health().corrupt_frames, round == 1 ? 1u : 0u);
        EXPECT_EQ(torn.last_health().frame_retries, round == 1 ? 1u : 0u);
        expect_outcomes_equal(a, b);
    }
    EXPECT_EQ(torn.dead_shards(), 0u);
}

TEST(ShardFault, QuorumFailsFastWithActionableError) {
    const std::size_t n = 60;
    ShardSupervisorConfig sup = faults_only(
        {{0, 2, util::FaultKind::crash_before_reply, 0.0},
         {1, 2, util::FaultKind::crash_before_reply, 0.0}});
    sup.min_live_shards = 2;
    ProcessShardAggregator aggregator(make_store(n, 43), *market().scoring,
                                      *market().strategy, wire_config(6), layout(),
                                      /*num_shards=*/3, /*shard_timeout_s=*/5.0, sup);
    stats::Rng rng(43);
    (void)aggregator.run_round(1, 6, rng);
    try {
        (void)aggregator.run_round(2, 6, rng);
        FAIL() << "expected the quorum check to throw";
    } catch (const std::runtime_error& error) {
        // The message must tell the operator which knobs to turn.
        EXPECT_NE(std::string(error.what()).find("auction.shard_quorum"),
                  std::string::npos)
            << error.what();
    }
}

TEST(ShardFault, RespawnBudgetExhaustionRetiresWorker) {
    // Shard 0 crashes in rounds 2 and 3. With a budget of one respawn it
    // is re-forked for round 3, crashes again, and is retired: round 4
    // runs degraded with no further respawn attempts.
    const std::size_t n = 60;
    ShardSupervisorConfig sup = faults_only(
        {{0, 2, util::FaultKind::crash_before_reply, 0.0},
         {0, 3, util::FaultKind::crash_before_reply, 0.0}});
    sup.max_respawns = 1;
    sup.respawn_backoff_s = 0.0;
    ProcessShardAggregator aggregator(make_store(n, 44), *market().scoring,
                                      *market().strategy, wire_config(6), layout(),
                                      /*num_shards=*/3, /*shard_timeout_s=*/5.0, sup);
    stats::Rng rng(44);
    (void)aggregator.run_round(1, 6, rng);
    EXPECT_EQ(aggregator.live_shards(), 3u);

    (void)aggregator.run_round(2, 6, rng);
    EXPECT_EQ(aggregator.last_dropped_shards(), (std::vector<std::size_t>{0}));
    EXPECT_EQ(aggregator.last_health().evictions, 1u);

    (void)aggregator.run_round(3, 6, rng);
    EXPECT_EQ(aggregator.last_health().respawns, 1u);
    EXPECT_EQ(aggregator.last_health().evictions, 1u);
    EXPECT_EQ(aggregator.last_dropped_shards(), (std::vector<std::size_t>{0}));

    (void)aggregator.run_round(4, 6, rng);
    EXPECT_EQ(aggregator.last_health().respawns, 0u);  // budget spent: retired
    EXPECT_EQ(aggregator.last_dropped_shards(), (std::vector<std::size_t>{0}));
    EXPECT_EQ(aggregator.live_shards(), 2u);
    EXPECT_EQ(aggregator.lifetime_health().evictions, 2u);
    EXPECT_EQ(aggregator.lifetime_health().respawns, 1u);
}

TEST(ShardFault, ZeroRowShardHeadFrameIsHandled) {
    // Ban every node of shard 0: its worker still answers, with a zero-row
    // head — an edge frame the protocol must carry (the shard is NOT
    // dropped; it just has nothing to sell).
    const std::size_t n = 20;
    ProcessShardAggregator aggregator(make_store(n, 45), *market().scoring,
                                      *market().strategy, wire_config(5), layout(),
                                      /*num_shards=*/2, /*shard_timeout_s=*/30.0);
    stats::Rng rng(45);
    (void)aggregator.run_round(1, 5, rng);
    const auto [lo, hi] = shard_range(n, 2, 0);
    for (std::size_t node = lo; node < hi; ++node)
        aggregator.ban(static_cast<auction::NodeId>(node));
    const auction::AuctionOutcome& o = aggregator.run_round(2, 5, rng);
    EXPECT_TRUE(aggregator.last_dropped_shards().empty());
    EXPECT_EQ(aggregator.dead_shards(), 0u);
    EXPECT_EQ(o.winners.size(), 5u);
    EXPECT_FALSE(any_winner_in(o.winners, lo, hi));
}

TEST(ShardFault, MaxKHeadFramesMatchMonolithic) {
    // K = N: every shard ships its entire population as the head — the
    // largest frame the protocol ever carries — and the outcome must still
    // match the monolithic salted market bit for bit.
    const Market& m = market();
    const std::size_t n = 16;
    const std::size_t k = 16;
    const auction::WinnerDeterminationConfig wd = wire_config(k);
    MecPopulation population(make_store(n, 46));
    AuctionSelector mono(population, *m.scoring, *m.strategy, wd,
                         data_category_extractor(), /*data_dimension=*/0);
    ProcessShardAggregator aggregator(make_store(n, 46), *m.scoring, *m.strategy,
                                      wd, layout(), /*num_shards=*/2,
                                      /*shard_timeout_s=*/30.0);
    stats::Rng mono_rng(46);
    stats::Rng agg_rng(46);
    for (std::size_t round = 1; round <= 2; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        const auction::AuctionOutcome& a = mono.run_auction_round(round, k, mono_rng);
        const auction::AuctionOutcome& b = aggregator.run_round(round, k, agg_rng);
        EXPECT_EQ(b.winners.size(), n);
        expect_outcomes_equal(a, b);
    }
}

TEST(ShardFault, BansReachWorkersNextRound) {
    ProcessShardAggregator aggregator(make_store(50, 23), *market().scoring,
                                      *market().strategy, wire_config(5), layout(),
                                      /*num_shards=*/2, /*shard_timeout_s=*/30.0);
    stats::Rng rng(23);
    const auction::AuctionOutcome& first = aggregator.run_round(1, 5, rng);
    ASSERT_FALSE(first.winners.empty());
    const auction::NodeId banned = first.winners.front().node;
    aggregator.ban(banned);
    aggregator.ban(banned);  // dedup: shipping it twice must not skew counts
    for (std::size_t round = 2; round <= 3; ++round) {
        const auction::AuctionOutcome& o = aggregator.run_round(round, 5, rng);
        for (const auction::Winner& w : o.winners) EXPECT_NE(w.node, banned);
        for (const auction::ScoredBid& sb : o.ranking) EXPECT_NE(sb.bid.node, banned);
    }
}

TEST(ShardFault, AggregatorRejectsNonWireFriendlySpecs) {
    const Market& m = market();
    const PopulationStore store = make_store(30, 24);
    auto build = [&](auction::WinnerDeterminationConfig wd, double timeout = 1.0) {
        ProcessShardAggregator probe(store, *m.scoring, *m.strategy, std::move(wd),
                                     layout(), 2, timeout);
    };
    auction::WinnerDeterminationConfig shuffle = wire_config(5);
    shuffle.tie_break = auction::TieBreak::shuffle;
    EXPECT_THROW(build(shuffle), std::invalid_argument);

    auction::WinnerDeterminationConfig psi = wire_config(5);
    psi.psi = 0.5;
    EXPECT_THROW(build(psi), std::invalid_argument);

    auction::WinnerDeterminationConfig full = wire_config(5);
    full.full_ranking = true;
    EXPECT_THROW(build(full), std::invalid_argument);

    EXPECT_THROW(build(wire_config(5), /*timeout=*/0.0), std::invalid_argument);

    // Supervisor config is validated up front too.
    auto build_sup = [&](ShardSupervisorConfig sup) {
        ProcessShardAggregator probe(store, *m.scoring, *m.strategy, wire_config(5),
                                     layout(), 2, 1.0, std::move(sup));
    };
    ShardSupervisorConfig over_quorum;
    over_quorum.min_live_shards = 3;  // only 2 shards exist
    EXPECT_THROW(build_sup(over_quorum), std::invalid_argument);
    ShardSupervisorConfig bad_backoff;
    bad_backoff.respawn_backoff_s = -1.0;
    EXPECT_THROW(build_sup(bad_backoff), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Wire protocol: frame-level edge cases on raw pipes
// ---------------------------------------------------------------------------

struct Pipe {
    int fds[2] = {-1, -1};
    Pipe() { EXPECT_EQ(::pipe(fds), 0); }
    ~Pipe() {
        if (fds[0] >= 0) ::close(fds[0]);
        if (fds[1] >= 0) ::close(fds[1]);
    }
};

TEST(ShardFault, WireCrc32MatchesKnownVector) {
    // The IEEE 802.3 check value: CRC32("123456789") — a wrong polynomial,
    // reflection, or init/final XOR all fail this.
    EXPECT_EQ(wire::crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(wire::crc32("", 0), 0u);
}

TEST(ShardFault, WireTruncatedLengthPrefixReadsAsEof) {
    // A peer that dies 10 bytes into the 24-byte header must surface as
    // eof, not as a garbage frame.
    Pipe p;
    const std::uint8_t junk[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    ASSERT_TRUE(wire::write_all(p.fds[1], junk, sizeof(junk)));
    ::close(p.fds[1]);
    p.fds[1] = -1;
    wire::FrameHeader header;
    std::vector<std::uint8_t> payload;
    EXPECT_EQ(wire::read_frame(p.fds[0], header, payload), wire::ReadStatus::eof);
}

TEST(ShardFault, WireBadMagicOrHeaderCrcIsBadHeader) {
    Pipe p;
    wire::FrameHeader h;
    h.type = static_cast<std::uint32_t>(wire::FrameType::head);
    h.magic = 0xdeadbeefu;
    h.header_crc =
        wire::crc32(&h, sizeof(wire::FrameHeader) - sizeof(std::uint32_t));
    ASSERT_TRUE(wire::write_all(p.fds[1], &h, sizeof(h)));
    wire::FrameHeader header;
    std::vector<std::uint8_t> payload;
    EXPECT_EQ(wire::read_frame(p.fds[0], header, payload),
              wire::ReadStatus::bad_header);

    // A flipped bit in the length field is caught by the header CRC before
    // it can desynchronize the stream.
    wire::FrameHeader sized;
    sized.type = static_cast<std::uint32_t>(wire::FrameType::head);
    sized.payload_size = 8;
    sized.header_crc =
        wire::crc32(&sized, sizeof(wire::FrameHeader) - sizeof(std::uint32_t));
    sized.payload_size = 1ull << 40;  // corrupt AFTER hashing
    ASSERT_TRUE(wire::write_all(p.fds[1], &sized, sizeof(sized)));
    EXPECT_EQ(wire::read_frame(p.fds[0], header, payload),
              wire::ReadStatus::bad_header);
}

TEST(ShardFault, WireChecksumMismatchDrainsFrameAndStaysFramed) {
    // bad_payload is the RECOVERABLE verdict: the advertised bytes are
    // drained, so the very next frame on the stream parses clean.
    Pipe p;
    const char garbled[] = "garbled-payload";
    ASSERT_TRUE(wire::write_frame_raw(p.fds[1], wire::FrameType::head, garbled,
                                      sizeof(garbled), /*payload_crc=*/0x1234));
    const char clean[] = "clean-payload";
    ASSERT_TRUE(
        wire::write_frame(p.fds[1], wire::FrameType::head, clean, sizeof(clean)));
    wire::FrameHeader header;
    std::vector<std::uint8_t> payload;
    EXPECT_EQ(wire::read_frame(p.fds[0], header, payload),
              wire::ReadStatus::bad_payload);
    ASSERT_EQ(wire::read_frame(p.fds[0], header, payload), wire::ReadStatus::ok);
    ASSERT_EQ(payload.size(), sizeof(clean));
    EXPECT_EQ(std::memcmp(payload.data(), clean, sizeof(clean)), 0);
    // Zero-length frames are checksummed too (crc must be 0).
    ASSERT_TRUE(wire::write_frame_raw(p.fds[1], wire::FrameType::nack, nullptr, 0,
                                      /*payload_crc=*/7));
    EXPECT_EQ(wire::read_frame(p.fds[0], header, payload),
              wire::ReadStatus::bad_payload);
}

TEST(ShardFault, WireDeadlineExpiresAsTimeout) {
    Pipe p;
    wire::FrameHeader header;
    std::vector<std::uint8_t> payload;
    EXPECT_EQ(wire::read_frame_deadline(
                  p.fds[0], header, payload,
                  std::chrono::steady_clock::now() + std::chrono::milliseconds(30)),
              wire::ReadStatus::timeout);
}

TEST(ShardFault, WireWriteToClosedPipeFailsWithoutSignal) {
    // With SIGPIPE ignored (the aggregator and workers both install this)
    // writing to a dead peer must report failure, not kill the process —
    // that is what turns a dead worker into an eviction.
    using SigHandler = void (*)(int);
    const SigHandler previous = std::signal(SIGPIPE, SIG_IGN);
    Pipe p;
    ::close(p.fds[0]);
    p.fds[0] = -1;
    const char data[] = "to-nobody";
    EXPECT_FALSE(wire::write_frame(p.fds[1], wire::FrameType::request, data,
                                   sizeof(data)));
    std::signal(SIGPIPE, previous);
}

} // namespace
} // namespace fmore::mec
