// Failure semantics of the sharded market, both engines:
//  - in-process ShardedAuctionSelector: a deterministic virtual clock
//    (set_virtual_latency) drives shard drops — no wall time, so degraded
//    rounds replay bit-identically, and the degradation is surfaced in
//    SelectionRecord::dropped_shards and RoundMetrics::dropped_shards;
//  - multi-process ProcessShardAggregator: un-degraded rounds are
//    bit-identical to the monolithic salted market; a worker that stalls
//    past shard_timeout_s or dies mid-round is permanently evicted and the
//    round completes over the survivors.
// Fault margins are generous on purpose (10 s stalls against 0.25 s
// deadlines) so the tests assert semantics, not scheduler luck.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "fmore/auction/cost.hpp"
#include "fmore/auction/equilibrium.hpp"
#include "fmore/auction/scoring.hpp"
#include "fmore/fl/coordinator.hpp"
#include "fmore/mec/auction_selector.hpp"
#include "fmore/mec/population.hpp"
#include "fmore/mec/shard_aggregator.hpp"
#include "fmore/mec/sharded_selector.hpp"
#include "fmore/ml/model_zoo.hpp"
#include "fmore/ml/synthetic.hpp"
#include "fmore/stats/normalizer.hpp"

namespace fmore::mec {
namespace {

constexpr double kDataHi = 150.0;

struct Market {
    std::vector<stats::MinMaxNormalizer> norms;
    std::unique_ptr<auction::ScaledProductScoring> scoring;
    std::unique_ptr<auction::AdditiveCost> cost;
    std::unique_ptr<stats::UniformDistribution> theta;
    std::unique_ptr<auction::EquilibriumStrategy> strategy;

    Market() {
        norms.emplace_back(0.0, kDataHi);
        norms.emplace_back(0.0, 1.0);
        scoring = std::make_unique<auction::ScaledProductScoring>(25.0, 2, norms);
        cost = std::make_unique<auction::AdditiveCost>(
            std::vector<double>{6.0 / kDataHi, 2.0});
        theta = std::make_unique<stats::UniformDistribution>(0.5, 1.5);
        auction::EquilibriumConfig eq;
        eq.num_bidders = 100;
        eq.num_winners = 8;
        strategy = std::make_unique<auction::EquilibriumStrategy>(
            auction::EquilibriumSolver(*scoring, *cost, *theta, {1.0, 0.05},
                                       {kDataHi, 1.0}, eq)
                .solve());
    }
};

const Market& market() {
    static const Market m;
    return m;
}

PopulationStore make_store(std::size_t n, std::uint64_t seed) {
    PopulationSpec spec;
    spec.dynamics.resource_jitter = 0.08;
    spec.dynamics.theta_jitter = 0.02;
    SyntheticDataSpec data;
    data.data_lo = 20.0;
    data.data_hi = kDataHi;
    stats::Rng rng(seed);
    return PopulationStore(n, data, *market().theta, spec, rng);
}

QualityLayout layout() {
    return {ResourceDim::data_size, ResourceDim::category_proportion};
}

/// Global node range [lo, hi) of shard `s` under an even split of n.
std::pair<std::size_t, std::size_t> shard_range(std::size_t n, std::size_t shards,
                                                std::size_t s) {
    std::vector<std::size_t> cuts = PopulationStore::even_boundaries(n, shards);
    cuts.insert(cuts.begin(), 0);
    return {cuts[s], s + 1 < shards ? cuts[s + 1] : n};
}

bool any_winner_in(const std::vector<auction::Winner>& winners, std::size_t lo,
                   std::size_t hi) {
    return std::any_of(winners.begin(), winners.end(), [&](const auction::Winner& w) {
        return w.node >= lo && w.node < hi;
    });
}

// ---------------------------------------------------------------------------
// In-process: deterministic virtual-clock degradation
// ---------------------------------------------------------------------------

ShardedAuctionSelector make_sharded(std::vector<PopulationStore> shards) {
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = 8;
    return ShardedAuctionSelector(std::move(shards), *market().scoring,
                                  *market().strategy, wd, layout(),
                                  /*data_dimension=*/0);
}

TEST(ShardFault, VirtualLatencyDropsShardsDeterministically) {
    const std::size_t n = 60;
    const std::size_t shards = 4;
    // Shard 2 misses the 1-second deadline from round 2 on; everyone else
    // answers instantly. Two independent selectors must replay the
    // degraded rounds bit-identically — the clock is virtual.
    auto latency = [](std::size_t shard, std::size_t round) {
        return shard == 2 && round >= 2 ? 5.0 : 0.01;
    };
    auto run = [&](std::vector<std::vector<auction::Winner>>& winners_out) {
        ShardedAuctionSelector sharded = make_sharded(make_store(n, 5).split_even(shards));
        sharded.set_shard_timeout(1.0);
        sharded.set_virtual_latency(latency);
        stats::Rng rng(77);
        for (std::size_t round = 1; round <= 3; ++round) {
            const auction::AuctionOutcome& o = sharded.run_auction_round(round, 8, rng);
            winners_out.push_back(o.winners);
            if (round == 1) {
                EXPECT_TRUE(sharded.last_dropped_shards().empty());
            } else {
                EXPECT_EQ(sharded.last_dropped_shards(),
                          (std::vector<std::size_t>{2}));
            }
            // The round still fills its K slots — from responsive shards.
            EXPECT_EQ(o.winners.size(), 8u);
            const auto [lo, hi] = shard_range(n, shards, 2);
            if (round >= 2) {
                EXPECT_FALSE(any_winner_in(o.winners, lo, hi))
                    << "a dropped shard contributed a winner in round " << round;
            }
        }
    };
    std::vector<std::vector<auction::Winner>> first, second;
    run(first);
    run(second);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t r = 0; r < first.size(); ++r) {
        ASSERT_EQ(first[r].size(), second[r].size()) << "round " << r + 1;
        for (std::size_t w = 0; w < first[r].size(); ++w) {
            EXPECT_EQ(first[r][w].node, second[r][w].node);
            EXPECT_EQ(first[r][w].payment, second[r][w].payment);
            EXPECT_EQ(first[r][w].score, second[r][w].score);
        }
    }
}

TEST(ShardFault, DroppedShardsSurfaceInSelectionRecord) {
    ShardedAuctionSelector sharded = make_sharded(make_store(40, 9).split_even(4));
    sharded.set_shard_timeout(0.5);
    sharded.set_virtual_latency(
        [](std::size_t shard, std::size_t) { return shard == 1 ? 2.0 : 0.0; });
    stats::Rng rng(3);
    const fl::SelectionRecord record = sharded.select(1, 6, rng);
    EXPECT_EQ(record.dropped_shards, (std::vector<std::size_t>{1}));
    EXPECT_EQ(record.selected.size(), 6u);
}

TEST(ShardFault, ZeroTimeoutDisablesDropping) {
    ShardedAuctionSelector sharded = make_sharded(make_store(40, 9).split_even(4));
    sharded.set_virtual_latency([](std::size_t, std::size_t) { return 1e9; });
    // No timeout installed: even absurd latencies drop nothing.
    stats::Rng rng(4);
    (void)sharded.run_auction_round(1, 6, rng);
    EXPECT_TRUE(sharded.last_dropped_shards().empty());
    EXPECT_THROW(sharded.set_shard_timeout(-1.0), std::invalid_argument);
}

TEST(ShardFault, DegradationSurfacesInRoundMetrics) {
    // End to end through a real federated run: the coordinator must carry
    // the per-round drop count into RoundMetrics.
    stats::Rng rng(1);
    ml::ImageDatasetSpec image_spec;
    image_spec.samples = 700;
    const ml::Dataset data = ml::make_synthetic_images(image_spec, rng);
    stats::Rng prng(2);
    std::vector<ml::ClientShard> shards = ml::partition_non_iid_variable(data, 12, 1, 4, prng);
    ml::resize_shards(shards, data, 10, 40, prng);

    std::vector<stats::MinMaxNormalizer> norms{{0.0, 40.0}, {0.0, 1.0}};
    auction::ScaledProductScoring scoring(25.0, 2, norms);
    auction::AdditiveCost cost(std::vector<double>{6.0 / 40.0, 2.0});
    stats::UniformDistribution theta(0.5, 1.5);
    auction::EquilibriumConfig eq;
    eq.num_bidders = 12;
    eq.num_winners = 4;
    const auction::EquilibriumStrategy strategy =
        auction::EquilibriumSolver(scoring, cost, theta, {1.0, 0.05}, {40.0, 1.0}, eq)
            .solve();

    PopulationSpec pop_spec;
    stats::Rng pop_rng(3);
    MecPopulation population(shards, 10, theta, pop_spec, pop_rng);
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = 4;
    ShardedAuctionSelector selector(population, scoring, strategy, wd, layout(),
                                    /*data_dimension=*/0, /*num_shards=*/3);
    selector.set_shard_timeout(0.5);
    selector.set_virtual_latency(
        [](std::size_t shard, std::size_t round) { return shard == 0 && round >= 2 ? 9.0 : 0.0; });

    ml::Model model = ml::make_mlp(ml::ImageSpec{1, 12, 12, 10}, 3);
    fl::CoordinatorConfig cc;
    cc.rounds = 3;
    cc.winners_per_round = 4;
    cc.local_epochs = 1;
    cc.batch_size = 16;
    cc.learning_rate = 0.08;
    fl::Coordinator coordinator(model, data, data, shards, cc);
    stats::Rng run_rng(11);
    const fl::RunResult result = coordinator.run(selector, run_rng);
    ASSERT_EQ(result.rounds.size(), 3u);
    EXPECT_EQ(result.rounds[0].dropped_shards, 0u);
    EXPECT_EQ(result.rounds[1].dropped_shards, 1u);
    EXPECT_EQ(result.rounds[2].dropped_shards, 1u);
    EXPECT_EQ(result.rounds[1].selection.dropped_shards,
              (std::vector<std::size_t>{0}));
}

// ---------------------------------------------------------------------------
// Multi-process: the pipe-protocol aggregator
// ---------------------------------------------------------------------------

auction::WinnerDeterminationConfig wire_config(std::size_t k) {
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = k;
    wd.tie_break = auction::TieBreak::salted;
    wd.full_ranking = false;
    return wd;
}

TEST(ShardFault, ProcessAggregatorMatchesMonolithicSaltedMarket) {
    const Market& m = market();
    const std::size_t n = 80;
    const std::size_t k = 8;
    const std::uint64_t seed = 0x9a9aULL;
    const auction::WinnerDeterminationConfig wd = wire_config(k);

    MecPopulation population(make_store(n, seed));
    AuctionSelector mono(population, *m.scoring, *m.strategy, wd,
                         data_category_extractor(), /*data_dimension=*/0);
    ProcessShardAggregator aggregator(make_store(n, seed), *m.scoring, *m.strategy, wd,
                                      layout(), /*num_shards=*/4,
                                      /*shard_timeout_s=*/30.0);
    ASSERT_EQ(aggregator.num_shards(), 4u);
    ASSERT_EQ(aggregator.population_size(), n);

    stats::Rng mono_rng(seed);
    stats::Rng agg_rng(seed);
    for (std::size_t round = 1; round <= 4; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        const auction::AuctionOutcome& a = mono.run_auction_round(round, k, mono_rng);
        const auction::AuctionOutcome& b = aggregator.run_round(round, k, agg_rng);
        EXPECT_TRUE(aggregator.last_dropped_shards().empty());
        ASSERT_EQ(a.winners.size(), b.winners.size());
        for (std::size_t w = 0; w < a.winners.size(); ++w) {
            EXPECT_EQ(a.winners[w].node, b.winners[w].node);
            EXPECT_EQ(a.winners[w].score, b.winners[w].score);
            EXPECT_EQ(a.winners[w].payment, b.winners[w].payment);
        }
        ASSERT_EQ(a.ranking.size(), b.ranking.size());
        for (std::size_t r = 0; r < a.ranking.size(); ++r) {
            EXPECT_EQ(a.ranking[r].bid.node, b.ranking[r].bid.node);
            EXPECT_EQ(a.ranking[r].score, b.ranking[r].score);
            EXPECT_EQ(a.ranking[r].bid.payment, b.ranking[r].bid.payment);
        }
    }
    EXPECT_EQ(aggregator.dead_shards(), 0u);
}

TEST(ShardFault, StalledWorkerIsEvictedAndRoundCompletes) {
    const std::size_t n = 60;
    const std::size_t shards = 3;
    // Shard 1 stalls 10 s in round 2 against a 0.25 s deadline.
    std::vector<ShardFault> faults{{/*shard=*/1, /*round=*/2, /*stall_s=*/10.0, false}};
    ProcessShardAggregator aggregator(make_store(n, 21), *market().scoring,
                                      *market().strategy, wire_config(6), layout(),
                                      shards, /*shard_timeout_s=*/0.25, faults);
    stats::Rng rng(21);
    const auto [lo, hi] = shard_range(n, shards, 1);

    (void)aggregator.run_round(1, 6, rng);
    EXPECT_TRUE(aggregator.last_dropped_shards().empty());

    const auction::AuctionOutcome& degraded = aggregator.run_round(2, 6, rng);
    EXPECT_EQ(aggregator.last_dropped_shards(), (std::vector<std::size_t>{1}));
    EXPECT_EQ(aggregator.dead_shards(), 1u);
    EXPECT_EQ(degraded.winners.size(), 6u);
    EXPECT_FALSE(any_winner_in(degraded.winners, lo, hi));

    // Eviction is permanent: the shard stays out, the market keeps going.
    const auction::AuctionOutcome& later = aggregator.run_round(3, 6, rng);
    EXPECT_EQ(aggregator.dead_shards(), 1u);
    EXPECT_EQ(later.winners.size(), 6u);
    EXPECT_FALSE(any_winner_in(later.winners, lo, hi));
}

TEST(ShardFault, DyingWorkerIsEvictedAndRoundCompletes) {
    const std::size_t n = 60;
    const std::size_t shards = 3;
    std::vector<ShardFault> faults{{/*shard=*/2, /*round=*/2, 0.0, /*die=*/true}};
    ProcessShardAggregator aggregator(make_store(n, 22), *market().scoring,
                                      *market().strategy, wire_config(6), layout(),
                                      shards, /*shard_timeout_s=*/5.0, faults);
    stats::Rng rng(22);
    (void)aggregator.run_round(1, 6, rng);
    EXPECT_TRUE(aggregator.last_dropped_shards().empty());
    const auction::AuctionOutcome& degraded = aggregator.run_round(2, 6, rng);
    EXPECT_EQ(aggregator.last_dropped_shards(), (std::vector<std::size_t>{2}));
    EXPECT_EQ(aggregator.dead_shards(), 1u);
    EXPECT_EQ(degraded.winners.size(), 6u);
    const auto [lo, hi] = shard_range(n, shards, 2);
    EXPECT_FALSE(any_winner_in(degraded.winners, lo, hi));
}

TEST(ShardFault, BansReachWorkersNextRound) {
    ProcessShardAggregator aggregator(make_store(50, 23), *market().scoring,
                                      *market().strategy, wire_config(5), layout(),
                                      /*num_shards=*/2, /*shard_timeout_s=*/30.0);
    stats::Rng rng(23);
    const auction::AuctionOutcome& first = aggregator.run_round(1, 5, rng);
    ASSERT_FALSE(first.winners.empty());
    const auction::NodeId banned = first.winners.front().node;
    aggregator.ban(banned);
    aggregator.ban(banned);  // dedup: shipping it twice must not skew counts
    for (std::size_t round = 2; round <= 3; ++round) {
        const auction::AuctionOutcome& o = aggregator.run_round(round, 5, rng);
        for (const auction::Winner& w : o.winners) EXPECT_NE(w.node, banned);
        for (const auction::ScoredBid& sb : o.ranking) EXPECT_NE(sb.bid.node, banned);
    }
}

TEST(ShardFault, AggregatorRejectsNonWireFriendlySpecs) {
    const Market& m = market();
    const PopulationStore store = make_store(30, 24);
    auto build = [&](auction::WinnerDeterminationConfig wd, double timeout = 1.0) {
        ProcessShardAggregator probe(store, *m.scoring, *m.strategy, std::move(wd),
                                     layout(), 2, timeout);
    };
    auction::WinnerDeterminationConfig shuffle = wire_config(5);
    shuffle.tie_break = auction::TieBreak::shuffle;
    EXPECT_THROW(build(shuffle), std::invalid_argument);

    auction::WinnerDeterminationConfig psi = wire_config(5);
    psi.psi = 0.5;
    EXPECT_THROW(build(psi), std::invalid_argument);

    auction::WinnerDeterminationConfig full = wire_config(5);
    full.full_ranking = true;
    EXPECT_THROW(build(full), std::invalid_argument);

    EXPECT_THROW(build(wire_config(5), /*timeout=*/0.0), std::invalid_argument);
}

} // namespace
} // namespace fmore::mec
