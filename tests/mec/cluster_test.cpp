#include <gtest/gtest.h>

#include "fmore/mec/cluster.hpp"
#include "fmore/ml/synthetic.hpp"

namespace fmore::mec {
namespace {

class ClusterTest : public ::testing::Test {
protected:
    ClusterTest() : theta_(0.5, 1.5) {
        stats::Rng rng(1);
        ml::ImageDatasetSpec spec;
        spec.samples = 300;
        const ml::Dataset data = ml::make_synthetic_images(spec, rng);
        stats::Rng prng(2);
        shards_ = ml::partition_iid(data, 6, prng);
        PopulationSpec pop_spec;
        pop_spec.bandwidth_lo = 100.0;
        pop_spec.bandwidth_hi = 100.0001; // pin bandwidth for determinism
        pop_spec.cpu_lo = 4.0;
        pop_spec.cpu_hi = 4.0001;
        stats::Rng pop_rng(3);
        population_ = std::make_unique<MecPopulation>(shards_, 10, theta_, pop_spec, pop_rng);
    }

    fl::SelectionRecord select(std::initializer_list<std::size_t> ids) const {
        fl::SelectionRecord record;
        for (const std::size_t id : ids) {
            record.selected.push_back(fl::SelectedClient{id, 0.0, 0.0, std::nullopt});
        }
        return record;
    }

    stats::UniformDistribution theta_;
    std::vector<ml::ClientShard> shards_;
    std::unique_ptr<MecPopulation> population_;
};

TEST_F(ClusterTest, RoundTimeIsMaxOverWinnersPlusOverhead) {
    ClusterTimeConfig cfg;
    cfg.model_bytes = 1.25e6; // 10 Mbit -> 0.1 s each way at 100 Mbps (x2)
    cfg.seconds_per_sample_core = 0.004;
    cfg.round_overhead_s = 1.0;
    cfg.auction_overhead_s = 0.0;
    const ClusterTimeModel model(*population_, cfg, /*auction_round=*/false);

    // One winner: transfer + compute from its *current* resources (nodes
    // start somewhere inside their envelope) + overhead.
    const ResourceState& r0 = population_->node(0).resources();
    const double expected = 1.0 + 2.0 * cfg.model_bytes / (r0.bandwidth_mbps * 1.0e6 / 8.0)
                            + 100.0 * cfg.seconds_per_sample_core / r0.cpu_cores;
    const double t1 = model.round_seconds(select({0}), {100});
    EXPECT_NEAR(t1, expected, 0.01);

    // Adding a second, lighter winner must not increase the round beyond
    // the slower one.
    const double t2 = model.round_seconds(select({0, 1}), {100, 10});
    EXPECT_NEAR(t2, t1, 0.01);

    // A heavier second winner dominates.
    const double t3 = model.round_seconds(select({0, 1}), {100, 400});
    EXPECT_GT(t3, t1);
}

TEST_F(ClusterTest, AuctionOverheadAppliesOnlyToAuctionRounds) {
    ClusterTimeConfig cfg;
    cfg.auction_overhead_s = 0.5;
    const ClusterTimeModel plain(*population_, cfg, false);
    const ClusterTimeModel auction(*population_, cfg, true);
    const double tp = plain.round_seconds(select({0}), {50});
    const double ta = auction.round_seconds(select({0}), {50});
    EXPECT_NEAR(ta - tp, 0.5, 1e-9);
}

TEST_F(ClusterTest, AsTimeModelAdapterMatchesDirectCall) {
    ClusterTimeConfig cfg;
    const ClusterTimeModel model(*population_, cfg, false);
    const auto adapter = model.as_time_model();
    const auto record = select({2, 3});
    const std::vector<std::size_t> samples{40, 60};
    EXPECT_DOUBLE_EQ(adapter(record, samples), model.round_seconds(record, samples));
}

TEST_F(ClusterTest, SlowerBandwidthMeansLongerRounds) {
    // Rebuild a population with low bandwidth and compare.
    PopulationSpec slow_spec;
    slow_spec.bandwidth_lo = 10.0;
    slow_spec.bandwidth_hi = 10.0001;
    slow_spec.cpu_lo = 4.0;
    slow_spec.cpu_hi = 4.0001;
    stats::Rng rng(5);
    const MecPopulation slow_pop(shards_, 10, theta_, slow_spec, rng);
    ClusterTimeConfig cfg;
    cfg.model_bytes = 1.25e7;
    const ClusterTimeModel fast(*population_, cfg, false);
    const ClusterTimeModel slow(slow_pop, cfg, false);
    EXPECT_GT(slow.round_seconds(select({0}), {50}),
              fast.round_seconds(select({0}), {50}));
}

TEST_F(ClusterTest, RejectsNonPositiveModelBytes) {
    ClusterTimeConfig cfg;
    cfg.model_bytes = 0.0;
    EXPECT_THROW(ClusterTimeModel(*population_, cfg, false), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Straggler model (latency factors, per-client clock, dropouts)
// ---------------------------------------------------------------------------

TEST_F(ClusterTest, ZeroLatencySpreadKeepsFactorsExactlyOne) {
    ClusterTimeConfig cfg;
    stats::Rng factor_rng(9);
    const ClusterTimeModel model(*population_, cfg, false, factor_rng);
    const std::uint64_t untouched = stats::Rng(9).engine()();
    EXPECT_EQ(factor_rng.engine()(), untouched) << "spread 0 must not consume RNG";
    for (std::size_t i = 0; i < population_->size(); ++i) {
        EXPECT_EQ(model.latency_factor(i), 1.0);
    }
}

TEST_F(ClusterTest, LatencyFactorsAreDeterministicAndHeterogeneous) {
    ClusterTimeConfig cfg;
    cfg.latency_spread = 1.0;
    stats::Rng rng_a(9);
    stats::Rng rng_b(9);
    const ClusterTimeModel a(*population_, cfg, false, rng_a);
    const ClusterTimeModel b(*population_, cfg, false, rng_b);
    bool heterogeneous = false;
    for (std::size_t i = 0; i < population_->size(); ++i) {
        EXPECT_EQ(a.latency_factor(i), b.latency_factor(i));
        EXPECT_GT(a.latency_factor(i), 0.0);
        if (a.latency_factor(i) != a.latency_factor(0)) heterogeneous = true;
    }
    EXPECT_TRUE(heterogeneous);
}

TEST_F(ClusterTest, ClientSecondsScaleWithTheStragglerFactor) {
    ClusterTimeConfig cfg;
    cfg.latency_spread = 0.8;
    stats::Rng factor_rng(11);
    const ClusterTimeModel straggly(*population_, cfg, false, factor_rng);
    const ClusterTimeModel flat(*population_, ClusterTimeConfig{}, false);
    for (std::size_t i = 0; i < population_->size(); ++i) {
        EXPECT_DOUBLE_EQ(straggly.client_seconds(i, 80),
                         straggly.latency_factor(i) * flat.client_seconds(i, 80));
    }
}

TEST_F(ClusterTest, SyncRoundSecondsHonourStragglerFactors) {
    // The synchronous barrier pays the straggler tail: the round equals the
    // slowest factor-scaled client, not the raw slowest.
    ClusterTimeConfig cfg;
    cfg.latency_spread = 1.5;
    cfg.round_overhead_s = 0.0;
    stats::Rng factor_rng(13);
    const ClusterTimeModel model(*population_, cfg, false, factor_rng);
    const auto record = select({0, 1, 2, 3, 4, 5});
    const std::vector<std::size_t> samples(6, 50);
    double slowest = 0.0;
    for (std::size_t i = 0; i < 6; ++i) {
        slowest = std::max(slowest, model.client_seconds(i, 50));
    }
    EXPECT_DOUBLE_EQ(model.round_seconds(record, samples), slowest);
}

TEST_F(ClusterTest, ClientTimeModelAdapterDrawsDropoutsOnlyWhenEnabled) {
    ClusterTimeConfig cfg;
    const ClusterTimeModel reliable(*population_, cfg, false);
    stats::Rng rng(21);
    const auto clock = reliable.as_client_time_model();
    const fl::DispatchTiming t = clock(0, 50, rng);
    EXPECT_FALSE(t.dropped);
    EXPECT_DOUBLE_EQ(t.seconds, reliable.client_seconds(0, 50));
    EXPECT_EQ(rng.engine()(), stats::Rng(21).engine()())
        << "dropout_prob 0 must not consume the round RNG";

    cfg.dropout_prob = 0.9999; // not 1.0 — that is rejected outright
    const ClusterTimeModel flaky(*population_, cfg, false);
    const auto flaky_clock = flaky.as_client_time_model();
    stats::Rng drop_rng(22);
    std::size_t drops = 0;
    for (int i = 0; i < 50; ++i) {
        if (flaky_clock(0, 50, drop_rng).dropped) ++drops;
    }
    EXPECT_GT(drops, 40u);
}

TEST_F(ClusterTest, RejectsBadStragglerKnobs) {
    ClusterTimeConfig cfg;
    cfg.latency_spread = -0.1;
    EXPECT_THROW(ClusterTimeModel(*population_, cfg, false), std::invalid_argument);
    cfg.latency_spread = 0.0;
    cfg.dropout_prob = 1.0;
    EXPECT_THROW(ClusterTimeModel(*population_, cfg, false), std::invalid_argument);
}

} // namespace
} // namespace fmore::mec
