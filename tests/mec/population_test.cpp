#include <gtest/gtest.h>

#include "fmore/mec/population.hpp"
#include "fmore/ml/synthetic.hpp"

namespace fmore::mec {
namespace {

std::vector<ml::ClientShard> make_shards(std::size_t clients) {
    stats::Rng rng(1);
    ml::ImageDatasetSpec spec;
    spec.samples = clients * 40;
    const ml::Dataset data = ml::make_synthetic_images(spec, rng);
    stats::Rng prng(2);
    return ml::partition_non_iid_variable(data, clients, 1, 4, prng);
}

TEST(MecPopulation, NodesMirrorShardData) {
    const auto shards = make_shards(20);
    const stats::UniformDistribution theta(0.5, 1.5);
    PopulationSpec spec;
    stats::Rng rng(3);
    const MecPopulation pop(shards, 10, theta, spec, rng);
    ASSERT_EQ(pop.size(), 20u);
    for (std::size_t i = 0; i < 20; ++i) {
        EXPECT_EQ(pop.node(i).id(), i);
        EXPECT_DOUBLE_EQ(pop.node(i).caps().data_size,
                         static_cast<double>(shards[i].indices.size()));
        EXPECT_NEAR(pop.node(i).caps().category_proportion,
                    shards[i].category_proportion(10), 1e-12);
        EXPECT_GE(pop.node(i).theta(), 0.5);
        EXPECT_LE(pop.node(i).theta(), 1.5);
    }
}

TEST(MecPopulation, ResourceRangesRespected) {
    const auto shards = make_shards(30);
    const stats::UniformDistribution theta(0.5, 1.5);
    PopulationSpec spec;
    spec.bandwidth_lo = 50.0;
    spec.bandwidth_hi = 100.0;
    spec.cpu_lo = 2.0;
    spec.cpu_hi = 4.0;
    stats::Rng rng(4);
    const MecPopulation pop(shards, 10, theta, spec, rng);
    for (const EdgeNode& node : pop.nodes()) {
        EXPECT_GE(node.caps().bandwidth_mbps, 50.0);
        EXPECT_LE(node.caps().bandwidth_mbps, 100.0);
        EXPECT_GE(node.caps().cpu_cores, 2.0);
        EXPECT_LE(node.caps().cpu_cores, 4.0);
        EXPECT_LE(node.resources().bandwidth_mbps, node.caps().bandwidth_mbps);
    }
}

TEST(MecPopulation, EvolveAdvancesAllNodes) {
    const auto shards = make_shards(10);
    const stats::UniformDistribution theta(0.5, 1.5);
    PopulationSpec spec;
    spec.dynamics.resource_jitter = 0.2;
    stats::Rng rng(5);
    MecPopulation pop(shards, 10, theta, spec, rng);
    std::vector<double> before;
    for (const EdgeNode& node : pop.nodes()) before.push_back(node.resources().bandwidth_mbps);
    stats::Rng ev(6);
    pop.evolve(ev);
    int moved = 0;
    for (std::size_t i = 0; i < pop.size(); ++i) {
        if (pop.node(i).resources().bandwidth_mbps != before[i]) ++moved;
    }
    EXPECT_GT(moved, 5);
}

TEST(MecPopulation, RejectsEmptyShards) {
    const stats::UniformDistribution theta(0.5, 1.5);
    PopulationSpec spec;
    stats::Rng rng(7);
    EXPECT_THROW(MecPopulation({}, 10, theta, spec, rng), std::invalid_argument);
}

} // namespace
} // namespace fmore::mec
