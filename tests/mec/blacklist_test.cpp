#include <gtest/gtest.h>

#include "fmore/mec/auction_selector.hpp"
#include "fmore/mec/blacklist.hpp"
#include "fmore/ml/synthetic.hpp"

namespace fmore::mec {
namespace {

TEST(Blacklist, BasicSetSemantics) {
    Blacklist list;
    EXPECT_EQ(list.size(), 0u);
    EXPECT_FALSE(list.contains(3));
    list.ban(3);
    list.ban(3);
    EXPECT_TRUE(list.contains(3));
    EXPECT_EQ(list.size(), 1u);
    list.clear();
    EXPECT_FALSE(list.contains(3));
}

TEST(Compliance, ZeroProbabilityAlwaysDelivers) {
    ComplianceSpec spec;
    spec.defect_probability = 0.0;
    stats::Rng rng(1);
    for (int t = 0; t < 100; ++t) {
        const auto out = roll_compliance(spec, 80, rng);
        EXPECT_FALSE(out.defected);
        EXPECT_EQ(out.delivered_samples, 80u);
    }
}

TEST(Compliance, DefectorsDeliverTheFactor) {
    ComplianceSpec spec;
    spec.defect_probability = 1.0;
    spec.under_delivery_factor = 0.25;
    stats::Rng rng(2);
    const auto out = roll_compliance(spec, 100, rng);
    EXPECT_TRUE(out.defected);
    EXPECT_EQ(out.delivered_samples, 25u);
}

TEST(Compliance, DefectRateMatchesProbability) {
    ComplianceSpec spec;
    spec.defect_probability = 0.3;
    stats::Rng rng(3);
    int defects = 0;
    constexpr int trials = 5000;
    for (int t = 0; t < trials; ++t) {
        if (roll_compliance(spec, 50, rng).defected) ++defects;
    }
    EXPECT_NEAR(static_cast<double>(defects) / trials, 0.3, 0.03);
}

TEST(Compliance, AtLeastOneSampleDelivered) {
    ComplianceSpec spec;
    spec.defect_probability = 1.0;
    spec.under_delivery_factor = 0.0;
    stats::Rng rng(4);
    EXPECT_EQ(roll_compliance(spec, 10, rng).delivered_samples, 1u);
}

TEST(Compliance, RejectsBadSpec) {
    stats::Rng rng(5);
    ComplianceSpec bad;
    bad.defect_probability = 1.5;
    EXPECT_THROW(roll_compliance(bad, 10, rng), std::invalid_argument);
    bad.defect_probability = 0.5;
    bad.under_delivery_factor = 1.0;
    EXPECT_THROW(roll_compliance(bad, 10, rng), std::invalid_argument);
}

// Integration with the auction selector: defectors get banned and never bid
// again; the market keeps clearing with the remaining nodes.
class BlacklistIntegration : public ::testing::Test {
protected:
    BlacklistIntegration()
        : theta_(0.5, 1.5),
          scoring_(25.0, 2,
                   {stats::MinMaxNormalizer(0.0, 60.0), stats::MinMaxNormalizer(0.0, 1.0)}),
          cost_({6.0 / 60.0, 2.0}) {
        stats::Rng rng(1);
        ml::ImageDatasetSpec spec;
        spec.samples = 900;
        const ml::Dataset data = ml::make_synthetic_images(spec, rng);
        stats::Rng prng(2);
        shards_ = ml::partition_non_iid_variable(data, 24, 1, 4, prng);
        ml::resize_shards(shards_, data, 10, 60, prng);
        PopulationSpec pop_spec;
        stats::Rng pop_rng(3);
        population_ = std::make_unique<MecPopulation>(shards_, 10, theta_, pop_spec, pop_rng);
        auction::EquilibriumConfig eq;
        eq.num_bidders = 24;
        eq.num_winners = 6;
        strategy_ = std::make_unique<auction::EquilibriumStrategy>(
            auction::EquilibriumSolver(scoring_, cost_, theta_, {1.0, 0.05}, {60.0, 1.0}, eq)
                .solve());
    }

    AuctionSelector make_selector() {
        auction::WinnerDeterminationConfig wd;
        wd.num_winners = 6;
        return AuctionSelector(*population_, scoring_, *strategy_, wd,
                               data_category_extractor(), 0);
    }

    stats::UniformDistribution theta_;
    auction::ScaledProductScoring scoring_;
    auction::AdditiveCost cost_;
    std::vector<ml::ClientShard> shards_;
    std::unique_ptr<MecPopulation> population_;
    std::unique_ptr<auction::EquilibriumStrategy> strategy_;
};

TEST_F(BlacklistIntegration, DefectorsAreBannedAndExcluded) {
    AuctionSelector selector = make_selector();
    ComplianceSpec spec;
    spec.defect_probability = 1.0; // every winner defects once
    selector.set_compliance(spec);
    stats::Rng rng(7);

    const fl::SelectionRecord round1 = selector.select(1, 6, rng);
    EXPECT_EQ(selector.blacklist().size(), 6u);
    // Defectors delivered less than they bid.
    for (const auto& sel : round1.selected) {
        const auto& bid = selector.last_bids()[0]; // any bid: just check shape
        (void)bid;
        ASSERT_TRUE(sel.train_samples.has_value());
    }

    const fl::SelectionRecord round2 = selector.select(2, 6, rng);
    EXPECT_EQ(selector.blacklist().size(), 12u);
    for (const auto& sel2 : round2.selected) {
        for (const auto& sel1 : round1.selected) {
            EXPECT_NE(sel2.client, sel1.client);
        }
    }
    // Bid pool shrinks accordingly.
    EXPECT_EQ(selector.last_bids().size(), 24u - 6u);
}

TEST_F(BlacklistIntegration, NoCompliancePressureMeansNoBans) {
    AuctionSelector selector = make_selector();
    stats::Rng rng(8);
    for (int r = 1; r <= 5; ++r) (void)selector.select(r, 6, rng);
    EXPECT_EQ(selector.blacklist().size(), 0u);
}

TEST_F(BlacklistIntegration, MarketSurvivesHeavyBanning) {
    AuctionSelector selector = make_selector();
    ComplianceSpec spec;
    spec.defect_probability = 0.5;
    selector.set_compliance(spec);
    stats::Rng rng(9);
    for (int r = 1; r <= 3; ++r) {
        const auto record = selector.select(r, 6, rng);
        EXPECT_FALSE(record.selected.empty());
    }
    EXPECT_GT(selector.blacklist().size(), 0u);
    EXPECT_LT(selector.blacklist().size(), 24u);
}

} // namespace
} // namespace fmore::mec
