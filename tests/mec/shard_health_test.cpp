// Round-health telemetry: the per-round ShardHealth counters surfaced by
// the aggregators and the run-level RoundHealth summary RunResult::health()
// distills from them (plus the streaming close-reason mix — the
// adaptive-quorum seed).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fmore/fl/metrics.hpp"
#include "fmore/fl/selection.hpp"

namespace fmore::fl {
namespace {

RoundMetrics streaming_round(const char* reason, double close_s) {
    RoundMetrics metrics;
    metrics.selection.close_reason = reason;
    metrics.selection.close_time_s = close_s;
    return metrics;
}

TEST(ShardHealth, EmptyRunSummarizesToZeros) {
    const RoundHealth health = RunResult{}.health();
    EXPECT_EQ(health.rounds, 0u);
    EXPECT_EQ(health.streaming_rounds, 0u);
    EXPECT_EQ(health.quorum_close_fraction, 0.0);
    // No streaming rounds -> no close times: the percentiles are NaN, NOT
    // 0.0 — a run that never streamed must be distinguishable from one
    // whose rounds all closed at t = 0.
    EXPECT_TRUE(std::isnan(health.close_p50_s));
    EXPECT_TRUE(std::isnan(health.close_p99_s));
    EXPECT_EQ(health.rounds_degraded, 0u);
}

TEST(ShardHealth, BatchOnlyRunKeepsNaNPercentiles) {
    RunResult result;
    result.rounds.push_back(RoundMetrics{});
    result.rounds.push_back(RoundMetrics{});
    const RoundHealth health = result.health();
    EXPECT_EQ(health.streaming_rounds, 0u);
    EXPECT_TRUE(std::isnan(health.close_p50_s));
    EXPECT_TRUE(std::isnan(health.close_p99_s));
}

TEST(ShardHealth, CloseReasonMixAndPercentiles) {
    RunResult result;
    result.rounds.push_back(streaming_round("quorum", 0.1));
    result.rounds.push_back(streaming_round("quorum", 0.2));
    result.rounds.push_back(streaming_round("deadline", 0.3));
    result.rounds.push_back(streaming_round("exhausted", 0.4));
    // A batch round (no close telemetry) must not dilute the fractions.
    result.rounds.push_back(RoundMetrics{});

    const RoundHealth health = result.health();
    EXPECT_EQ(health.rounds, 5u);
    EXPECT_EQ(health.streaming_rounds, 4u);
    EXPECT_DOUBLE_EQ(health.quorum_close_fraction, 0.5);
    EXPECT_DOUBLE_EQ(health.deadline_close_fraction, 0.25);
    // p50 of {0.1, 0.2, 0.3, 0.4} by linear interpolation; p99 hugs the max.
    EXPECT_NEAR(health.close_p50_s, 0.25, 1e-12);
    EXPECT_NEAR(health.close_p99_s, 0.4, 0.01);
    EXPECT_GE(health.close_p99_s, health.close_p50_s);
}

TEST(ShardHealth, SupervisionCountersSumAcrossRounds) {
    RunResult result;
    RoundMetrics degraded;
    degraded.selection.dropped_shards = {1, 3};
    degraded.selection.shard_health.evictions = 2;
    degraded.selection.shard_health.corrupt_frames = 1;
    degraded.selection.shard_health.frame_retries = 1;
    result.rounds.push_back(degraded);

    RoundMetrics recovered;
    recovered.selection.shard_health.respawns = 2;
    result.rounds.push_back(recovered);
    result.rounds.push_back(RoundMetrics{});

    const RoundHealth health = result.health();
    EXPECT_EQ(health.rounds, 3u);
    EXPECT_EQ(health.rounds_degraded, 1u);
    EXPECT_EQ(health.shard_evictions, 2u);
    EXPECT_EQ(health.shard_respawns, 2u);
    EXPECT_EQ(health.corrupt_frames, 1u);
    EXPECT_EQ(health.frame_retries, 1u);
}

} // namespace
} // namespace fmore::fl
