// The cross-process streaming market: the position-independent arrival
// clock (stream_round.hpp), the coordinator-resolved close decision, and
// THE tentpole acceptance — `ProcessShardAggregator::run_streaming_round`
// bit-identical to the in-process StreamingMarket/StreamingHeadMerge
// composition over the same arrivals, for every wire mechanism, including
// under crash/respawn and wire-corruption fault plans.
//
// Deadline-boundary semantics pinned here (both layers): a bid arriving
// EXACTLY at the deadline is counted, a strictly later one misses; a
// quorum that fills on the very last eligible arrival closes as `quorum`,
// not `exhausted`.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fmore/auction/cost.hpp"
#include "fmore/auction/equilibrium.hpp"
#include "fmore/auction/mechanism.hpp"
#include "fmore/auction/scoring.hpp"
#include "fmore/auction/streaming_market.hpp"
#include "fmore/mec/auction_selector.hpp"
#include "fmore/mec/population_store.hpp"
#include "fmore/mec/shard_aggregator.hpp"
#include "fmore/mec/stream_round.hpp"
#include "fmore/stats/normalizer.hpp"
#include "fmore/util/fault_injector.hpp"

namespace fmore::mec {
namespace {

constexpr double kDataHi = 150.0;

struct Market {
    std::vector<stats::MinMaxNormalizer> norms;
    std::unique_ptr<auction::ScaledProductScoring> scoring;
    std::unique_ptr<auction::AdditiveCost> cost;
    std::unique_ptr<stats::UniformDistribution> theta;
    std::unique_ptr<auction::EquilibriumStrategy> strategy;

    Market() {
        norms.emplace_back(0.0, kDataHi);
        norms.emplace_back(0.0, 1.0);
        scoring = std::make_unique<auction::ScaledProductScoring>(25.0, 2, norms);
        cost = std::make_unique<auction::AdditiveCost>(
            std::vector<double>{6.0 / kDataHi, 2.0});
        theta = std::make_unique<stats::UniformDistribution>(0.5, 1.5);
        auction::EquilibriumConfig eq;
        eq.num_bidders = 100;
        eq.num_winners = 8;
        strategy = std::make_unique<auction::EquilibriumStrategy>(
            auction::EquilibriumSolver(*scoring, *cost, *theta, {1.0, 0.05},
                                       {kDataHi, 1.0}, eq)
                .solve());
    }
};

const Market& market() {
    static const Market m;
    return m;
}

PopulationStore make_store(std::size_t n, std::uint64_t seed) {
    PopulationSpec spec;
    spec.dynamics.resource_jitter = 0.08;
    spec.dynamics.theta_jitter = 0.02;
    SyntheticDataSpec data;
    data.data_lo = 20.0;
    data.data_hi = kDataHi;
    stats::Rng rng(seed);
    return PopulationStore(n, data, *market().theta, spec, rng);
}

QualityLayout layout() {
    return {ResourceDim::data_size, ResourceDim::category_proportion};
}

auction::WinnerDeterminationConfig wire_config(std::size_t k) {
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = k;
    wd.tie_break = auction::TieBreak::salted;
    wd.full_ranking = false;
    return wd;
}

void expect_outcomes_equal(const auction::AuctionOutcome& a,
                           const auction::AuctionOutcome& b) {
    ASSERT_EQ(a.winners.size(), b.winners.size());
    for (std::size_t w = 0; w < a.winners.size(); ++w) {
        EXPECT_EQ(a.winners[w].node, b.winners[w].node);
        EXPECT_EQ(a.winners[w].score, b.winners[w].score);
        EXPECT_EQ(a.winners[w].payment, b.winners[w].payment);
    }
    ASSERT_EQ(a.ranking.size(), b.ranking.size());
    for (std::size_t r = 0; r < a.ranking.size(); ++r) {
        EXPECT_EQ(a.ranking[r].bid.node, b.ranking[r].bid.node);
        EXPECT_EQ(a.ranking[r].score, b.ranking[r].score);
        EXPECT_EQ(a.ranking[r].bid.payment, b.ranking[r].bid.payment);
    }
}

/// Sorted eligible arrival times of `[0, n)` minus `banned` under `salt`.
std::vector<std::pair<double, std::uint64_t>> arrival_order(
    std::size_t n, const Blacklist& banned, std::uint64_t salt, double horizon) {
    std::vector<std::pair<double, std::uint64_t>> order;
    for (std::uint64_t node = 0; node < n; ++node) {
        if (banned.contains(static_cast<auction::NodeId>(node))) continue;
        order.emplace_back(stream_arrival_s(salt, node, horizon), node);
    }
    std::sort(order.begin(), order.end());
    return order;
}

// ---------------------------------------------------------------------------
// The arrival clock and the close decision: pure-function semantics
// ---------------------------------------------------------------------------

TEST(StreamRound, ArrivalExactlyAtTheCloseCountsStrictlyLaterMisses) {
    // Time-only cut (deadline/exhaustion): the boundary sentinel admits
    // every node AT the close time.
    EXPECT_TRUE(stream_arrived(0.5, 7, 0.5, kStreamBoundaryAny));
    EXPECT_TRUE(stream_arrived(0.4999, 7, 0.5, kStreamBoundaryAny));
    EXPECT_FALSE(stream_arrived(std::nextafter(0.5, 1.0), 7, 0.5,
                                kStreamBoundaryAny));
    // Quorum cut: at the close time the boundary NODE decides — the
    // lexicographic (seconds, node) order the market replays.
    EXPECT_TRUE(stream_arrived(0.5, 7, 0.5, 7));
    EXPECT_TRUE(stream_arrived(0.5, 6, 0.5, 7));
    EXPECT_FALSE(stream_arrived(0.5, 8, 0.5, 7));
}

TEST(StreamRound, ResolveCloseMatchesTheArrivalScheduleExactly) {
    const std::size_t n = 64;
    const std::uint64_t salt = 0xfeedULL;
    const double horizon = 1.0;
    Blacklist none;
    const auto order = arrival_order(n, none, salt, horizon);

    // No quorum, no deadline: exhaustion at the last arrival.
    const StreamCloseDecision all =
        resolve_stream_close(n, none, salt, horizon, 0.0, 0);
    EXPECT_EQ(all.reason, auction::CloseReason::exhausted);
    EXPECT_EQ(all.arrived, n);
    EXPECT_EQ(all.close_time_s, order.back().first);
    EXPECT_EQ(all.boundary_node, kStreamBoundaryAny);

    // Quorum q: the round closes AT the q-th arrival, whose node is the
    // lexicographic boundary.
    const std::size_t q = 10;
    const StreamCloseDecision quorum =
        resolve_stream_close(n, none, salt, horizon, 0.0, q);
    EXPECT_EQ(quorum.reason, auction::CloseReason::quorum);
    EXPECT_EQ(quorum.arrived, q);
    EXPECT_EQ(quorum.close_time_s, order[q - 1].first);
    EXPECT_EQ(quorum.boundary_node, order[q - 1].second);

    // Deadline between two arrivals: everyone at or before it is in.
    const double deadline = 0.5 * (order[19].first + order[20].first);
    const StreamCloseDecision dl =
        resolve_stream_close(n, none, salt, horizon, deadline, 0);
    EXPECT_EQ(dl.reason, auction::CloseReason::deadline);
    EXPECT_EQ(dl.arrived, 20u);
    EXPECT_EQ(dl.close_time_s, deadline);

    // A deadline EXACTLY on an arrival counts that arrival.
    const StreamCloseDecision at =
        resolve_stream_close(n, none, salt, horizon, order[20].first, 0);
    EXPECT_EQ(at.reason, auction::CloseReason::deadline);
    EXPECT_EQ(at.arrived, 21u);

    // Replays are bit-identical: the decision is pure in its inputs.
    const StreamCloseDecision replay =
        resolve_stream_close(n, none, salt, horizon, deadline, 0);
    EXPECT_EQ(replay.arrived, dl.arrived);
    EXPECT_EQ(replay.close_time_s, dl.close_time_s);
    EXPECT_EQ(replay.boundary_node, dl.boundary_node);
}

TEST(StreamRound, QuorumOnTheFinalArrivalOutranksExhaustion) {
    const std::size_t n = 16;
    const std::uint64_t salt = 0xabcULL;
    Blacklist none;
    const auto order = arrival_order(n, none, salt, 1.0);
    const StreamCloseDecision d =
        resolve_stream_close(n, none, salt, 1.0, 0.0, n);
    EXPECT_EQ(d.reason, auction::CloseReason::quorum);
    EXPECT_EQ(d.arrived, n);
    EXPECT_EQ(d.close_time_s, order.back().first);
    EXPECT_EQ(d.boundary_node, order.back().second);

    // One more than the population can deliver: exhaustion, not a hang.
    const StreamCloseDecision short_of =
        resolve_stream_close(n, none, salt, 1.0, 0.0, n + 1);
    EXPECT_EQ(short_of.reason, auction::CloseReason::exhausted);
    EXPECT_EQ(short_of.arrived, n);
}

TEST(StreamRound, QuorumFillingArrivalPastTheDeadlineClosesAsDeadline) {
    const std::size_t n = 32;
    const std::uint64_t salt = 0x77ULL;
    Blacklist none;
    const auto order = arrival_order(n, none, salt, 1.0);
    // Deadline placed so only 5 bids make it; a quorum of 6 can't fill.
    const double deadline = 0.5 * (order[4].first + order[5].first);
    const StreamCloseDecision d =
        resolve_stream_close(n, none, salt, 1.0, deadline, 6);
    EXPECT_EQ(d.reason, auction::CloseReason::deadline);
    EXPECT_EQ(d.arrived, 5u);
    EXPECT_EQ(d.close_time_s, deadline);
    EXPECT_EQ(d.boundary_node, kStreamBoundaryAny);
}

TEST(StreamRound, BannedNodesNeverArrive) {
    const std::size_t n = 24;
    const std::uint64_t salt = 0x1234ULL;
    Blacklist banned;
    const auto order = arrival_order(n, banned, salt, 1.0);
    // Ban the two earliest arrivals: the quorum must fill from later ones.
    banned.ban(static_cast<auction::NodeId>(order[0].second));
    banned.ban(static_cast<auction::NodeId>(order[1].second));
    const StreamCloseDecision d =
        resolve_stream_close(n, banned, salt, 1.0, 0.0, 3);
    EXPECT_EQ(d.reason, auction::CloseReason::quorum);
    EXPECT_EQ(d.arrived, 3u);
    EXPECT_EQ(d.close_time_s, order[4].first);
    EXPECT_EQ(d.boundary_node, order[4].second);
}

// ---------------------------------------------------------------------------
// The in-process twin: StreamingMarket + close_round_sharded over the same
// store, draws, and arrival clock as the cross-process aggregator
// ---------------------------------------------------------------------------

/// Drives one in-process streaming round per call, consuming exactly the
/// aggregator's generator draws: one drift salt (round > 1), one tie salt
/// (inside open_round), one arrival salt.
class InProcessTwin {
public:
    InProcessTwin(std::size_t n, std::uint64_t store_seed,
                  const auction::WinnerDeterminationConfig& wd,
                  std::size_t num_shards)
        : store_(make_store(n, store_seed)),
          layout_(layout()),
          mechanism_(auction::make_mechanism(wd)),
          market_(mechanism_, *market().scoring),
          shard_starts_{0} {
        for (const std::size_t cut :
             PopulationStore::even_boundaries(n, num_shards))
            shard_starts_.push_back(cut);
    }

    void ban(auction::NodeId node) { banned_.ban(node); }

    const auction::AuctionOutcome& run_round(
        std::size_t round,
        const ProcessShardAggregator::StreamRoundPolicy& policy,
        stats::Rng& rng) {
        const Market& m = market();
        if (round > 1) store_.evolve_with_salt(rng.engine()());

        auction::StreamingRoundSpec spec;
        spec.deadline_s = policy.deadline_s;
        spec.quorum = policy.quorum;
        market_.open_round(store_.size(), layout_.size(), spec, rng);
        const std::uint64_t arrival_salt = rng.engine()();

        frame_.reset(store_.size(), layout_.size());
        collect_bid_rows(store_, 0, store_.size(), layout_, *m.strategy,
                         *m.scoring,
                         m.strategy->scoring_rule() == m.scoring.get(),
                         auction::PaymentMethod::integral, banned_, frame_, 0,
                         columns_, /*parallel=*/false);
        frame_.set_scored(true);

        // Offer the eligible bids in (seconds, node) order — the replay
        // order the close cut is defined over.
        std::vector<std::pair<double, std::uint64_t>> order;
        for (auction::NodeId node = 0; node < frame_.rows(); ++node) {
            if (!frame_.active(node)) continue;
            order.emplace_back(
                stream_arrival_s(arrival_salt, node, policy.arrival_horizon_s),
                node);
        }
        std::sort(order.begin(), order.end());
        for (const auto& [sec, node64] : order) {
            const auction::NodeId node = static_cast<auction::NodeId>(node64);
            if (!market_.offer(node, frame_.quality_row(node),
                               frame_.payment(node), frame_.score(node), sec))
                break;
        }
        return market_.close_round_sharded(rng, shard_starts_);
    }

    [[nodiscard]] const auction::StreamingMarket& market_state() const {
        return market_;
    }

private:
    PopulationStore store_;
    QualityLayout layout_;
    std::shared_ptr<const auction::Mechanism> mechanism_;
    auction::StreamingMarket market_;
    Blacklist banned_;
    auction::BidFrame frame_;
    std::vector<const double*> columns_;
    std::vector<std::size_t> shard_starts_;
};

/// The round policies the equivalence runs cycle through: a deadline
/// close, a quorum close, an exhaustion close (no triggers), and a quorum
/// that fills exactly on the final eligible arrival.
ProcessShardAggregator::StreamRoundPolicy policy_for(std::size_t round,
                                                     std::size_t eligible) {
    ProcessShardAggregator::StreamRoundPolicy policy;
    switch (round % 4) {
    case 1: policy.deadline_s = 0.6; break;
    case 2: policy.quorum = eligible / 4; break;
    case 3: break;  // exhaustion
    default:
        policy.quorum = eligible;  // fills on the final offer
        policy.deadline_s = 0.0;
        break;
    }
    return policy;
}

TEST(StreamRound, CrossProcessRoundMatchesInProcessCompositionEveryMechanism) {
    const Market& m = market();
    const std::size_t n = 80;
    const std::size_t k = 8;
    const std::size_t shards = 4;
    const std::uint64_t seed = 0x57e11aULL;
    for (const std::string& name :
         {std::string("first_score"), std::string("second_score"),
          std::string("psi_fmore"), std::string("budget_feasible")}) {
        SCOPED_TRACE(name);
        auction::WinnerDeterminationConfig wd = wire_config(k);
        wd.mechanism = name;
        if (name == "budget_feasible") wd.budget = 500.0;

        ProcessShardAggregator aggregator(make_store(n, seed), *m.scoring,
                                          *m.strategy, wd, layout(), shards,
                                          /*shard_timeout_s=*/30.0);
        InProcessTwin twin(n, seed, wd, shards);
        stats::Rng agg_rng(seed);
        stats::Rng twin_rng(seed);
        std::size_t eligible = n;
        for (std::size_t round = 1; round <= 5; ++round) {
            SCOPED_TRACE("round " + std::to_string(round));
            const auto policy = policy_for(round, eligible);
            const auction::AuctionOutcome& a =
                aggregator.run_streaming_round(round, k, policy, agg_rng);
            const auction::AuctionOutcome& b =
                twin.run_round(round, policy, twin_rng);
            EXPECT_TRUE(aggregator.last_dropped_shards().empty());
            expect_outcomes_equal(a, b);
            // Close telemetry is part of the bit-identity contract.
            EXPECT_EQ(aggregator.last_close_reason(),
                      twin.market_state().close_reason());
            EXPECT_EQ(aggregator.last_close_time_s(),
                      twin.market_state().close_time_s());
            EXPECT_EQ(aggregator.last_arrived(),
                      twin.market_state().arrived());
            // Bans propagate to the next round on both sides.
            if (round == 2 && !a.winners.empty()) {
                aggregator.ban(a.winners.front().node);
                twin.ban(a.winners.front().node);
                --eligible;
            }
        }
    }
}

TEST(StreamRound, CrossProcessStreamingSurvivesCrashRespawnBitIdentical) {
    // Kill shard 1's worker mid-stream in round 2; with a respawn budget
    // the supervisor re-forks and re-syncs it, and every later streaming
    // round must match both a never-faulted aggregator AND the in-process
    // twin — for every wire mechanism.
    const Market& m = market();
    const std::size_t n = 80;
    const std::size_t k = 8;
    const std::size_t shards = 4;
    const std::uint64_t seed = 0x57e22bULL;
    for (const std::string& name :
         {std::string("first_score"), std::string("second_score"),
          std::string("psi_fmore"), std::string("budget_feasible")}) {
        SCOPED_TRACE(name);
        auction::WinnerDeterminationConfig wd = wire_config(k);
        wd.mechanism = name;
        if (name == "budget_feasible") wd.budget = 500.0;
        ShardSupervisorConfig sup;
        sup.faults = util::FaultInjector::from_events(
            {{/*shard=*/1, /*round=*/2, util::FaultKind::crash_before_reply, 0.0}});
        sup.max_respawns = 2;
        sup.respawn_backoff_s = 0.0;

        ProcessShardAggregator clean(make_store(n, seed), *m.scoring, *m.strategy,
                                     wd, layout(), shards,
                                     /*shard_timeout_s=*/30.0);
        ProcessShardAggregator faulty(make_store(n, seed), *m.scoring,
                                      *m.strategy, wd, layout(), shards,
                                      /*shard_timeout_s=*/30.0, sup);
        InProcessTwin twin(n, seed, wd, shards);
        stats::Rng rng_clean(seed);
        stats::Rng rng_faulty(seed);
        stats::Rng rng_twin(seed);
        for (std::size_t round = 1; round <= 5; ++round) {
            SCOPED_TRACE("round " + std::to_string(round));
            ProcessShardAggregator::StreamRoundPolicy policy;
            policy.quorum = n / 3;
            const auction::AuctionOutcome& a =
                clean.run_streaming_round(round, k, policy, rng_clean);
            const auction::AuctionOutcome& b =
                faulty.run_streaming_round(round, k, policy, rng_faulty);
            const auction::AuctionOutcome& c =
                twin.run_round(round, policy, rng_twin);
            expect_outcomes_equal(a, c);
            if (round == 2) {
                EXPECT_EQ(faulty.last_dropped_shards(),
                          (std::vector<std::size_t>{1}));
                EXPECT_EQ(faulty.last_health().evictions, 1u);
                continue;
            }
            EXPECT_TRUE(faulty.last_dropped_shards().empty());
            if (round == 3) {
                EXPECT_EQ(faulty.last_health().respawns, 1u);
                EXPECT_EQ(faulty.live_shards(), shards);
            }
            expect_outcomes_equal(a, b);
            EXPECT_EQ(faulty.last_close_reason(), clean.last_close_reason());
            EXPECT_EQ(faulty.last_close_time_s(), clean.last_close_time_s());
        }
        EXPECT_EQ(faulty.lifetime_health().evictions, 1u);
        EXPECT_EQ(faulty.lifetime_health().respawns, 1u);
    }
}

TEST(StreamRound, CorruptChunkIsResentOnceAndNeverConsumed) {
    // A bit-flipped head_rows chunk fails the payload CRC; the coordinator
    // re-requests the stream tail from the first missing chunk — outcome
    // identical to an un-faulted twin, zero evictions.
    const Market& m = market();
    const std::size_t n = 60;
    const std::uint64_t seed = 0x57e33cULL;
    const auction::WinnerDeterminationConfig wd = wire_config(6);
    ProcessShardAggregator clean(make_store(n, seed), *m.scoring, *m.strategy,
                                 wd, layout(), /*num_shards=*/3,
                                 /*shard_timeout_s=*/30.0);
    ProcessShardAggregator corrupt(
        make_store(n, seed), *m.scoring, *m.strategy, wd, layout(),
        /*num_shards=*/3, /*shard_timeout_s=*/30.0,
        ShardSupervisorConfig{
            .faults = util::FaultInjector::from_events(
                {{/*shard=*/0, /*round=*/2, util::FaultKind::bit_flip, 0.0}})});
    stats::Rng rng_clean(seed);
    stats::Rng rng_corrupt(seed);
    for (std::size_t round = 1; round <= 3; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        ProcessShardAggregator::StreamRoundPolicy policy;
        policy.deadline_s = 0.7;
        policy.chunk_rows = 4;  // several chunks per shard: only #0 corrupts
        const auction::AuctionOutcome& a =
            clean.run_streaming_round(round, 6, policy, rng_clean);
        const auction::AuctionOutcome& b =
            corrupt.run_streaming_round(round, 6, policy, rng_corrupt);
        EXPECT_TRUE(corrupt.last_dropped_shards().empty());
        EXPECT_EQ(corrupt.last_health().frame_retries, round == 2 ? 1u : 0u);
        EXPECT_EQ(corrupt.last_health().evictions, 0u);
        expect_outcomes_equal(a, b);
    }
    EXPECT_GE(corrupt.lifetime_health().corrupt_frames, 1u);
    EXPECT_EQ(corrupt.dead_shards(), 0u);
}

TEST(StreamRound, StreamingPolicyValidation) {
    const Market& m = market();
    ProcessShardAggregator aggregator(make_store(20, 9), *m.scoring, *m.strategy,
                                      wire_config(4), layout(), /*num_shards=*/2,
                                      /*shard_timeout_s=*/30.0);
    stats::Rng rng(9);
    ProcessShardAggregator::StreamRoundPolicy bad_horizon;
    bad_horizon.arrival_horizon_s = 0.0;
    EXPECT_THROW((void)aggregator.run_streaming_round(1, 4, bad_horizon, rng),
                 std::invalid_argument);
    ProcessShardAggregator::StreamRoundPolicy bad_deadline;
    bad_deadline.deadline_s = -1.0;
    EXPECT_THROW((void)aggregator.run_streaming_round(1, 4, bad_deadline, rng),
                 std::invalid_argument);
    // The aggregator is still usable after a rejected policy.
    ProcessShardAggregator::StreamRoundPolicy ok;
    const auction::AuctionOutcome& o =
        aggregator.run_streaming_round(1, 4, ok, rng);
    EXPECT_EQ(o.winners.size(), 4u);
    EXPECT_EQ(aggregator.last_close_reason(), auction::CloseReason::exhausted);
    EXPECT_EQ(aggregator.last_arrived(), 20u);
}

} // namespace
} // namespace fmore::mec
