// The partitioning invariant under the sharded market: a PopulationStore
// split at ARBITRARY boundaries, with each shard evolved under the same
// round salt, reproduces the unsplit store's drift bit-identically — for
// any worker count, any nesting of splits, over many rounds. Per-node
// streams are keyed by (salt, GLOBAL node id), so a shard is the market,
// restricted — never a different market.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "fmore/mec/population_store.hpp"

namespace fmore::mec {
namespace {

class ScopedEnv {
public:
    ScopedEnv(const char* name, const std::string& value) : name_(name) {
        const char* previous = std::getenv(name);
        had_previous_ = previous != nullptr;
        if (had_previous_) previous_ = previous;
        ::setenv(name, value.c_str(), 1);
    }
    ~ScopedEnv() {
        if (had_previous_) ::setenv(name_, previous_.c_str(), 1);
        else ::unsetenv(name_);
    }

private:
    const char* name_;
    bool had_previous_ = false;
    std::string previous_;
};

PopulationStore make_store(std::size_t nodes, std::uint64_t seed = 7) {
    PopulationSpec spec;
    spec.dynamics.resource_jitter = 0.15;
    spec.dynamics.theta_jitter = 0.05;
    SyntheticDataSpec data;
    const stats::UniformDistribution theta(0.5, 1.5);
    stats::Rng rng(seed);
    return PopulationStore(nodes, data, theta, spec, rng);
}

/// Strictly increasing cuts at arbitrary (uneven) positions.
std::vector<std::size_t> random_boundaries(std::size_t n, std::size_t shards,
                                           stats::Rng& rng) {
    std::vector<std::size_t> all(n - 1);
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i + 1;
    rng.shuffle(all);
    std::vector<std::size_t> cuts(all.begin(),
                                  all.begin() + static_cast<std::ptrdiff_t>(shards - 1));
    std::sort(cuts.begin(), cuts.end());
    return cuts;
}

/// Shard row i must equal whole-store row `shard.node_offset() + i` in
/// every column, bit for bit.
void expect_is_slice(const PopulationStore& whole, const PopulationStore& shard) {
    ASSERT_LE(shard.node_offset() + shard.size(), whole.size());
    for (std::size_t i = 0; i < shard.size(); ++i) {
        const std::size_t g = shard.node_offset() + i;
        EXPECT_EQ(whole.theta(g), shard.theta(i)) << "row " << g;
        EXPECT_EQ(whole.data_size(g), shard.data_size(i)) << "row " << g;
        EXPECT_EQ(whole.category_proportion(g), shard.category_proportion(i))
            << "row " << g;
        EXPECT_EQ(whole.bandwidth_mbps(g), shard.bandwidth_mbps(i)) << "row " << g;
        EXPECT_EQ(whole.cpu_cores(g), shard.cpu_cores(i)) << "row " << g;
    }
}

TEST(StoreSplit, ShardsAreExactSlicesWithGlobalOffsets) {
    const PopulationStore whole = make_store(97);
    const std::vector<PopulationStore> shards = whole.split({13, 14, 60});
    ASSERT_EQ(shards.size(), 4u);
    std::size_t expect_offset = 0;
    for (const PopulationStore& shard : shards) {
        EXPECT_EQ(shard.node_offset(), expect_offset);
        expect_is_slice(whole, shard);
        expect_offset += shard.size();
    }
    EXPECT_EQ(expect_offset, whole.size());
}

TEST(StoreSplit, SaltedShardEvolveMatchesWholeStoreEvolve) {
    // The core property, randomized: arbitrary boundaries, several rounds;
    // shards evolved under the coordinator's salt stay bit-identical
    // slices of the evolved whole.
    stats::Rng meta(0x517ULL);
    for (int trial = 0; trial < 8; ++trial) {
        const std::size_t n = static_cast<std::size_t>(meta.uniform_int(5, 300));
        const std::size_t s = static_cast<std::size_t>(
            meta.uniform_int(2, static_cast<std::int64_t>(std::min<std::size_t>(n, 11))));
        SCOPED_TRACE("trial " + std::to_string(trial) + ": n=" + std::to_string(n)
                     + " s=" + std::to_string(s));
        PopulationStore whole = make_store(n, 100 + static_cast<std::uint64_t>(trial));
        std::vector<PopulationStore> shards = whole.split(random_boundaries(n, s, meta));
        stats::Rng rounds(0xabcULL + static_cast<std::uint64_t>(trial));
        for (int round = 0; round < 3; ++round) {
            const std::uint64_t salt = rounds.engine()();
            whole.evolve_with_salt(salt);
            for (PopulationStore& shard : shards) shard.evolve_with_salt(salt);
            for (const PopulationStore& shard : shards) expect_is_slice(whole, shard);
        }
    }
}

TEST(StoreSplit, ShardEvolveBitIdenticalAcrossWorkerCounts) {
    // Each shard's drift is row-pure, so any FMORE_ROUND_THREADS value —
    // including counts exceeding the shard size — replays the serial
    // reference exactly.
    PopulationStore reference = make_store(120);
    std::vector<PopulationStore> ref_shards = reference.split({7, 40, 41, 90});
    const std::uint64_t salt = 0xfeedULL;
    {
        const ScopedEnv env("FMORE_ROUND_THREADS", "1");
        for (PopulationStore& shard : ref_shards) shard.evolve_with_salt(salt);
    }
    for (const char* threads : {"2", "3", "8", "64"}) {
        SCOPED_TRACE(std::string("FMORE_ROUND_THREADS=") + threads);
        std::vector<PopulationStore> shards = make_store(120).split({7, 40, 41, 90});
        const ScopedEnv env("FMORE_ROUND_THREADS", threads);
        for (std::size_t i = 0; i < shards.size(); ++i) {
            shards[i].evolve_with_salt(salt);
            for (std::size_t row = 0; row < shards[i].size(); ++row) {
                EXPECT_EQ(shards[i].theta(row), ref_shards[i].theta(row));
                EXPECT_EQ(shards[i].data_size(row), ref_shards[i].data_size(row));
                EXPECT_EQ(shards[i].bandwidth_mbps(row),
                          ref_shards[i].bandwidth_mbps(row));
            }
        }
    }
}

TEST(StoreSplit, NestedSplitKeepsGlobalStreams) {
    // Splitting a shard again composes offsets, so a shard-of-a-shard
    // still drifts as its global rows.
    PopulationStore whole = make_store(80);
    std::vector<PopulationStore> outer = whole.split({30});
    std::vector<PopulationStore> inner = outer[1].split({20, 35});
    EXPECT_EQ(inner[0].node_offset(), 30u);
    EXPECT_EQ(inner[1].node_offset(), 50u);
    EXPECT_EQ(inner[2].node_offset(), 65u);
    const std::uint64_t salt = 0x9e1dULL;
    whole.evolve_with_salt(salt);
    for (PopulationStore& shard : inner) {
        shard.evolve_with_salt(salt);
        expect_is_slice(whole, shard);
    }
}

TEST(StoreSplit, SplitEvenBalancesAndTiles) {
    const PopulationStore whole = make_store(103);
    const std::vector<PopulationStore> shards = whole.split_even(8);
    ASSERT_EQ(shards.size(), 8u);
    std::size_t offset = 0;
    for (std::size_t s = 0; s < shards.size(); ++s) {
        EXPECT_EQ(shards[s].node_offset(), offset);
        // 103 = 8*12 + 7: the first 7 shards carry the extra node.
        EXPECT_EQ(shards[s].size(), s < 7 ? 13u : 12u);
        offset += shards[s].size();
    }
    EXPECT_EQ(offset, whole.size());
}

TEST(StoreSplit, RejectsBadBoundaries) {
    const PopulationStore whole = make_store(50);
    EXPECT_THROW((void)whole.split({0}), std::invalid_argument);       // at the edge
    EXPECT_THROW((void)whole.split({50}), std::invalid_argument);      // past the edge
    EXPECT_THROW((void)whole.split({3, 77}), std::invalid_argument);   // out of range
    EXPECT_THROW((void)whole.split({10, 10}), std::invalid_argument);  // duplicate
    EXPECT_THROW((void)whole.split({20, 10}), std::invalid_argument);  // unsorted
    EXPECT_THROW((void)whole.split_even(0), std::invalid_argument);
    EXPECT_THROW((void)whole.split_even(51), std::invalid_argument);
    EXPECT_NO_THROW((void)whole.split({}));        // one shard = the whole store
    EXPECT_NO_THROW((void)whole.split_even(50));   // one node per shard
}

} // namespace
} // namespace fmore::mec
