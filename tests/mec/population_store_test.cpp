// The SoA population store's contracts: evolve is bit-identical for any
// worker count (per-node counter-derived streams), consumes exactly one
// caller-RNG draw per round, and the MecPopulation/EdgeNode views mirror
// the store exactly.

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "fmore/mec/population.hpp"
#include "fmore/ml/synthetic.hpp"

namespace fmore::mec {
namespace {

class ScopedEnv {
public:
    ScopedEnv(const char* name, const std::string& value) : name_(name) {
        const char* previous = std::getenv(name);
        had_previous_ = previous != nullptr;
        if (had_previous_) previous_ = previous;
        ::setenv(name, value.c_str(), 1);
    }
    ~ScopedEnv() {
        if (had_previous_) ::setenv(name_, previous_.c_str(), 1);
        else ::unsetenv(name_);
    }

private:
    const char* name_;
    bool had_previous_ = false;
    std::string previous_;
};

std::vector<ml::ClientShard> make_shards(std::size_t clients) {
    stats::Rng rng(1);
    ml::ImageDatasetSpec spec;
    spec.samples = clients * 12;
    const ml::Dataset data = ml::make_synthetic_images(spec, rng);
    stats::Rng prng(2);
    return ml::partition_non_iid_variable(data, clients, 1, 4, prng);
}

PopulationSpec dynamic_spec() {
    PopulationSpec spec;
    spec.dynamics.resource_jitter = 0.15;
    spec.dynamics.theta_jitter = 0.05;
    return spec;
}

PopulationStore make_store(std::size_t nodes = 200) {
    const stats::UniformDistribution theta(0.5, 1.5);
    stats::Rng rng(7);
    return PopulationStore(make_shards(nodes), 10, theta, dynamic_spec(), rng);
}

void expect_stores_equal(const PopulationStore& a, const PopulationStore& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.theta(i), b.theta(i)) << "node " << i;
        EXPECT_EQ(a.data_size(i), b.data_size(i)) << "node " << i;
        EXPECT_EQ(a.category_proportion(i), b.category_proportion(i)) << "node " << i;
        EXPECT_EQ(a.bandwidth_mbps(i), b.bandwidth_mbps(i)) << "node " << i;
        EXPECT_EQ(a.cpu_cores(i), b.cpu_cores(i)) << "node " << i;
    }
}

TEST(PopulationStore, EvolveBitIdenticalAcrossWorkerCounts) {
    // Serial reference, then the pool path under several explicit round-
    // thread counts — per-node streams make every partition identical.
    PopulationStore reference = make_store();
    stats::Rng ref_rng(11);
    for (int round = 0; round < 5; ++round) reference.evolve_serial(ref_rng);

    for (const char* threads : {"1", "2", "8"}) {
        const ScopedEnv env("FMORE_ROUND_THREADS", threads);
        PopulationStore store = make_store();
        stats::Rng rng(11);
        for (int round = 0; round < 5; ++round) store.evolve(rng);
        SCOPED_TRACE(std::string("FMORE_ROUND_THREADS=") + threads);
        expect_stores_equal(reference, store);
    }
}

TEST(PopulationStore, EvolveConsumesExactlyOneDrawPerRound) {
    // The salt is the only caller-RNG consumption, independent of N — what
    // keeps downstream draws (shuffles, psi flips) aligned between any two
    // populations evolved from the same generator.
    PopulationStore store = make_store(64);
    stats::Rng rng(3);
    stats::Rng twin(3);
    store.evolve(rng);
    (void)twin.engine()();
    EXPECT_EQ(rng.engine()(), twin.engine()());
}

TEST(PopulationStore, EvolveRespectsCapsAndBounds) {
    PopulationStore store = make_store(100);
    stats::Rng rng(5);
    for (int round = 0; round < 30; ++round) store.evolve(rng);
    for (std::size_t i = 0; i < store.size(); ++i) {
        const ResourceState caps = store.caps(i);
        EXPECT_LE(store.bandwidth_mbps(i), caps.bandwidth_mbps + 1e-12);
        EXPECT_GE(store.bandwidth_mbps(i), 0.05 * caps.bandwidth_mbps - 1e-12);
        EXPECT_LE(store.cpu_cores(i), caps.cpu_cores + 1e-12);
        EXPECT_LE(store.data_size(i), caps.data_size + 1e-12);
        EXPECT_GE(store.theta(i), store.theta_lo());
        EXPECT_LE(store.theta(i), store.theta_hi());
    }
}

TEST(PopulationStore, ViewsMirrorTheStoreAfterEvolve) {
    const stats::UniformDistribution theta(0.5, 1.5);
    stats::Rng rng(9);
    MecPopulation population(make_shards(50), 10, theta, dynamic_spec(), rng);
    stats::Rng ev(10);
    population.evolve(ev);
    const PopulationStore& store = population.store();
    for (std::size_t i = 0; i < population.size(); ++i) {
        const EdgeNode& node = population.node(i);
        EXPECT_EQ(node.id(), i);
        EXPECT_EQ(node.theta(), store.theta(i));
        EXPECT_EQ(node.resources().data_size, store.data_size(i));
        EXPECT_EQ(node.resources().category_proportion, store.category_proportion(i));
        EXPECT_EQ(node.resources().bandwidth_mbps, store.bandwidth_mbps(i));
        EXPECT_EQ(node.resources().cpu_cores, store.cpu_cores(i));
        EXPECT_EQ(node.caps().data_size, store.caps(i).data_size);
    }
}

TEST(PopulationStore, SnapshotRestoreIsBitExact) {
    // Checkpoint/restore contract: restoring a snapshot into a store built
    // identically (same shards, same seed) reproduces the evolved columns
    // AND the salt history bit-exactly, so a resumed run's future evolves
    // match the uninterrupted twin's.
    PopulationStore evolved = make_store(80);
    stats::Rng rng(21);
    for (int round = 0; round < 4; ++round) evolved.evolve(rng);
    const PopulationSnapshot snap = evolved.snapshot();
    EXPECT_EQ(snap.salt_history.size(), 4u);
    EXPECT_EQ(snap.columns.size(), 9u);

    PopulationStore fresh = make_store(80);
    fresh.restore(snap);
    expect_stores_equal(evolved, fresh);
    EXPECT_EQ(fresh.salt_history(), evolved.salt_history());

    // Both continue identically from the restored state.
    stats::Rng a(33);
    stats::Rng b(33);
    evolved.evolve(a);
    fresh.evolve(b);
    expect_stores_equal(evolved, fresh);
}

TEST(PopulationStore, RestoreRejectsWrongShape) {
    PopulationStore store = make_store(40);
    PopulationSnapshot snap = store.snapshot();
    snap.columns.pop_back();
    EXPECT_THROW(store.restore(snap), std::invalid_argument);

    PopulationSnapshot wrong_size = store.snapshot();
    for (auto& col : wrong_size.columns) col.resize(col.size() - 1);
    EXPECT_THROW(store.restore(wrong_size), std::invalid_argument);

    PopulationSnapshot wrong_offset = store.snapshot();
    wrong_offset.node_offset = 999;
    EXPECT_THROW(store.restore(wrong_offset), std::invalid_argument);
}

TEST(PopulationStore, SyntheticPopulationRespectsRanges) {
    const stats::UniformDistribution theta(0.5, 1.5);
    PopulationSpec spec = dynamic_spec();
    spec.bandwidth_lo = 100.0;
    spec.bandwidth_hi = 400.0;
    SyntheticDataSpec data;
    data.data_lo = 30.0;
    data.data_hi = 90.0;
    data.category_lo = 0.2;
    data.category_hi = 0.8;
    stats::Rng rng(13);
    const PopulationStore store(5000, data, theta, spec, rng);
    ASSERT_EQ(store.size(), 5000u);
    for (std::size_t i = 0; i < store.size(); ++i) {
        const ResourceState caps = store.caps(i);
        EXPECT_GE(caps.data_size, 30.0);
        EXPECT_LE(caps.data_size, 90.0);
        EXPECT_GE(caps.category_proportion, 0.2);
        EXPECT_LE(caps.category_proportion, 0.8);
        EXPECT_GE(caps.bandwidth_mbps, 100.0);
        EXPECT_LE(caps.bandwidth_mbps, 400.0);
        EXPECT_LE(store.data_size(i), caps.data_size);
        EXPECT_LE(store.bandwidth_mbps(i), caps.bandwidth_mbps);
    }
}

TEST(PopulationStore, AdoptedStorePowersAPopulation) {
    const stats::UniformDistribution theta(0.5, 1.5);
    stats::Rng rng(17);
    PopulationStore store(128, SyntheticDataSpec{}, theta, dynamic_spec(), rng);
    MecPopulation population(std::move(store));
    EXPECT_EQ(population.size(), 128u);
    stats::Rng ev(18);
    const double before = population.store().bandwidth_mbps(0);
    population.evolve(ev);
    // Mirror refreshes lazily and reflects the evolved store.
    EXPECT_EQ(population.node(0).resources().bandwidth_mbps,
              population.store().bandwidth_mbps(0));
    (void)before;
}

TEST(PopulationStore, RejectsBadInputs) {
    const stats::UniformDistribution theta(0.5, 1.5);
    stats::Rng rng(19);
    EXPECT_THROW(PopulationStore({}, 10, theta, PopulationSpec{}, rng),
                 std::invalid_argument);
    EXPECT_THROW(PopulationStore(0, SyntheticDataSpec{}, theta, PopulationSpec{}, rng),
                 std::invalid_argument);
    SyntheticDataSpec bad;
    bad.data_lo = 10.0;
    bad.data_hi = 5.0;
    EXPECT_THROW(PopulationStore(10, bad, theta, PopulationSpec{}, rng),
                 std::invalid_argument);
}

} // namespace
} // namespace fmore::mec
