// The streaming market's virtual clock: closed-loop (per-node latency)
// and open-loop (Poisson) arrival schedules. What matters downstream is
// that schedules are sorted, deterministic under a seed, name every node
// exactly once, and parse/print their spec-layer enum round-trip.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "fmore/mec/arrival_model.hpp"
#include "fmore/mec/cluster.hpp"
#include "fmore/mec/population.hpp"
#include "fmore/stats/rng.hpp"

namespace fmore::mec {
namespace {

TEST(StreamingArrival, ClosedLoopSortsByLatencyThenNode) {
    const ArrivalModel model = ArrivalModel::closed_loop({0.3, 0.1, 0.3, 0.0});
    ASSERT_EQ(model.size(), 4u);
    const std::vector<Arrival>& schedule = model.schedule();
    EXPECT_EQ(schedule[0].node, 3u);
    EXPECT_EQ(schedule[1].node, 1u);
    // Equal latencies tie-break on the node id, ascending.
    EXPECT_EQ(schedule[2].node, 0u);
    EXPECT_EQ(schedule[3].node, 2u);
    for (std::size_t i = 1; i < schedule.size(); ++i)
        EXPECT_LE(schedule[i - 1].seconds, schedule[i].seconds);
}

TEST(StreamingArrival, ClosedLoopRejectsBadLatencies) {
    EXPECT_THROW(ArrivalModel::closed_loop({0.1, -0.2}), std::invalid_argument);
    EXPECT_THROW(ArrivalModel::closed_loop({0.1, std::nan("")}),
                 std::invalid_argument);
}

TEST(StreamingArrival, PoissonNamesEveryNodeOnceSortedAndDeterministic) {
    const std::size_t n = 200;
    stats::Rng rng_a(42);
    stats::Rng rng_b(42);
    const ArrivalModel a = ArrivalModel::poisson(n, 50.0, rng_a);
    const ArrivalModel b = ArrivalModel::poisson(n, 50.0, rng_b);
    ASSERT_EQ(a.size(), n);
    std::vector<bool> seen(n, false);
    double prev = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const Arrival& arrival = a.schedule()[i];
        ASSERT_LT(arrival.node, n);
        EXPECT_FALSE(seen[arrival.node]) << "node bid twice";
        seen[arrival.node] = true;
        EXPECT_GE(arrival.seconds, prev);
        prev = arrival.seconds;
        // Same seed, same schedule — the streaming round is replayable.
        EXPECT_EQ(arrival.node, b.schedule()[i].node);
        EXPECT_EQ(arrival.seconds, b.schedule()[i].seconds);
    }
    // Exponential gaps at 50 bids/s: 200 arrivals land around 4 virtual
    // seconds — sanity-check the rate is actually applied.
    EXPECT_GT(a.schedule().back().seconds, 1.0);
    EXPECT_LT(a.schedule().back().seconds, 20.0);
}

TEST(StreamingArrival, PoissonRejectsBadRates) {
    stats::Rng rng(1);
    EXPECT_THROW(ArrivalModel::poisson(4, 0.0, rng), std::invalid_argument);
    EXPECT_THROW(ArrivalModel::poisson(4, -2.0, rng), std::invalid_argument);
}

TEST(StreamingArrival, FromClusterTimeScalesStragglerFactors) {
    // Heterogeneous straggler factors: each node's bid latency is its
    // factor times the auction overhead, so slow nodes bid late.
    stats::Rng pop_rng(9);
    stats::UniformDistribution theta(0.5, 1.5);
    PopulationSpec spec;
    SyntheticDataSpec data;
    MecPopulation population(PopulationStore(16, data, theta, spec, pop_rng));
    ClusterTimeConfig tc;
    tc.latency_spread = 0.8;
    stats::Rng factor_rng(31);
    const ClusterTimeModel time_model(population, tc, /*auction_round=*/true,
                                      factor_rng);
    const ArrivalModel model = ArrivalModel::from_cluster_time(time_model, 16);
    ASSERT_EQ(model.size(), 16u);
    for (const Arrival& arrival : model.schedule()) {
        EXPECT_EQ(arrival.seconds, time_model.latency_factor(arrival.node)
                                       * tc.auction_overhead_s);
    }
}

TEST(StreamingArrival, ProcessEnumRoundTripsAndRejectsUnknown) {
    EXPECT_EQ(to_string(ArrivalProcess::latency), "latency");
    EXPECT_EQ(to_string(ArrivalProcess::poisson), "poisson");
    EXPECT_EQ(parse_arrival_process("latency"), ArrivalProcess::latency);
    EXPECT_EQ(parse_arrival_process("poisson"), ArrivalProcess::poisson);
    try {
        (void)parse_arrival_process("uniform");
        FAIL() << "unknown arrival process accepted";
    } catch (const std::invalid_argument& error) {
        EXPECT_NE(std::string(error.what()).find("latency, poisson"),
                  std::string::npos)
            << "message should list the valid values: " << error.what();
    }
}

} // namespace
} // namespace fmore::mec
