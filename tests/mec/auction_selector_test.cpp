#include <gtest/gtest.h>

#include <set>

#include "fmore/mec/auction_selector.hpp"
#include "fmore/ml/synthetic.hpp"

namespace fmore::mec {
namespace {

class AuctionSelectorTest : public ::testing::Test {
protected:
    AuctionSelectorTest()
        : theta_(0.5, 1.5),
          scoring_(25.0, 2,
                   {stats::MinMaxNormalizer(0.0, 60.0), stats::MinMaxNormalizer(0.0, 1.0)}),
          cost_({6.0 / 60.0, 2.0}) {
        stats::Rng rng(1);
        ml::ImageDatasetSpec spec;
        spec.samples = 1200;
        const ml::Dataset data = ml::make_synthetic_images(spec, rng);
        stats::Rng prng(2);
        shards_ = ml::partition_non_iid_variable(data, 30, 1, 4, prng);
        ml::resize_shards(shards_, data, 10, 60, prng);

        PopulationSpec pop_spec;
        stats::Rng pop_rng(3);
        population_ = std::make_unique<MecPopulation>(shards_, 10, theta_, pop_spec, pop_rng);

        auction::EquilibriumConfig eq;
        eq.num_bidders = 30;
        eq.num_winners = 6;
        strategy_ = std::make_unique<auction::EquilibriumStrategy>(
            auction::EquilibriumSolver(scoring_, cost_, theta_, {1.0, 0.05}, {60.0, 1.0}, eq)
                .solve());
    }

    AuctionSelector make_selector(double psi = 1.0) {
        auction::WinnerDeterminationConfig wd;
        wd.num_winners = 6;
        wd.psi = psi;
        return AuctionSelector(*population_, scoring_, *strategy_, wd,
                               data_category_extractor(), /*data_dimension=*/0);
    }

    stats::UniformDistribution theta_;
    auction::ScaledProductScoring scoring_;
    auction::AdditiveCost cost_;
    std::vector<ml::ClientShard> shards_;
    std::unique_ptr<MecPopulation> population_;
    std::unique_ptr<auction::EquilibriumStrategy> strategy_;
};

TEST_F(AuctionSelectorTest, SelectsKWithPaymentsAndScores) {
    AuctionSelector selector = make_selector();
    stats::Rng rng(4);
    const fl::SelectionRecord record = selector.select(1, 6, rng);
    ASSERT_EQ(record.selected.size(), 6u);
    EXPECT_EQ(record.all_scores.size(), 30u);
    for (const auto& sel : record.selected) {
        EXPECT_LT(sel.client, 30u);
        EXPECT_GT(sel.payment, 0.0);
        ASSERT_TRUE(sel.train_samples.has_value());
        EXPECT_GE(*sel.train_samples, 1u);
    }
}

TEST_F(AuctionSelectorTest, BidsClippedToAvailableResources) {
    AuctionSelector selector = make_selector();
    stats::Rng rng(5);
    (void)selector.select(1, 6, rng);
    for (const auction::Bid& bid : selector.last_bids()) {
        const EdgeNode& node = population_->node(bid.node);
        EXPECT_LE(bid.quality[0], node.resources().data_size + 1e-9);
        EXPECT_LE(bid.quality[1], node.resources().category_proportion + 1e-9);
    }
}

TEST_F(AuctionSelectorTest, PaymentsAreIndividuallyRational) {
    AuctionSelector selector = make_selector();
    stats::Rng rng(6);
    (void)selector.select(1, 6, rng);
    for (const auction::Bid& bid : selector.last_bids()) {
        const EdgeNode& node = population_->node(bid.node);
        EXPECT_GE(bid.payment, cost_.cost(bid.quality, node.theta()) - 1e-9);
    }
}

TEST_F(AuctionSelectorTest, WinnersHaveTopScores) {
    AuctionSelector selector = make_selector();
    stats::Rng rng(7);
    const fl::SelectionRecord record = selector.select(1, 6, rng);
    std::vector<double> sorted = record.all_scores; // already descending
    for (std::size_t i = 0; i < record.selected.size(); ++i) {
        EXPECT_NEAR(record.selected[i].score, sorted[i], 1e-9);
    }
}

TEST_F(AuctionSelectorTest, TrainSamplesMatchBidDataDimension) {
    AuctionSelector selector = make_selector();
    stats::Rng rng(8);
    const fl::SelectionRecord record = selector.select(1, 6, rng);
    for (const auto& sel : record.selected) {
        const auction::Bid& bid = selector.last_bids()[sel.client];
        EXPECT_EQ(*sel.train_samples,
                  static_cast<std::size_t>(std::floor(bid.quality[0])));
    }
}

TEST_F(AuctionSelectorTest, PsiVariantNamesItself) {
    AuctionSelector plain = make_selector(1.0);
    AuctionSelector psi = make_selector(0.5);
    EXPECT_EQ(plain.name(), "FMore");
    EXPECT_EQ(psi.name(), "psi-FMore");
}

TEST_F(AuctionSelectorTest, PsiBroadensTheWinnerPool) {
    stats::Rng rng(9);
    AuctionSelector plain = make_selector(1.0);
    std::set<std::size_t> plain_winners;
    for (int r = 1; r <= 30; ++r) {
        for (const auto& sel : plain.select(r, 6, rng).selected) {
            plain_winners.insert(sel.client);
        }
    }
    stats::Rng rng2(9);
    AuctionSelector psi = make_selector(0.3);
    std::set<std::size_t> psi_winners;
    for (int r = 1; r <= 30; ++r) {
        for (const auto& sel : psi.select(r, 6, rng2).selected) {
            psi_winners.insert(sel.client);
        }
    }
    EXPECT_GT(psi_winners.size(), plain_winners.size());
}

TEST_F(AuctionSelectorTest, ResourcesEvolveBetweenRounds) {
    AuctionSelector selector = make_selector();
    stats::Rng rng(10);
    (void)selector.select(1, 6, rng);
    const auto bids_r1 = selector.last_bids();
    (void)selector.select(2, 6, rng);
    const auto bids_r2 = selector.last_bids();
    // Dynamic resources should change at least one bid's quality.
    bool changed = false;
    for (std::size_t i = 0; i < bids_r1.size(); ++i) {
        if (bids_r1[i].quality != bids_r2[i].quality) changed = true;
    }
    EXPECT_TRUE(changed);
}

} // namespace
} // namespace fmore::mec
