// Victim process of the crash-recovery harness (crash_resume_test.cpp and
// the CI smoke leg). Runs one trial of a spec file under a named policy;
// when the spec's fault plan carries `ckill=<R>` / `ckill_mid=<R>` the run
// SIGKILLs itself at round R — the launcher observes the 128+9 status and
// then proves a resumed run is bit-identical to an uninterrupted twin.
//
// Usage: crash_resume_child <spec_file> <policy> <trial_index> [--resume]
//
// `--resume` continues from the newest valid checkpoint under the spec's
// `timing.checkpoint_dir` (exactly what `run_scenario --resume` does).
// Exit codes: 0 success, 2 usage/I-O error, 3 run error.

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "fmore/core/experiment.hpp"
#include "fmore/core/run_checkpoint.hpp"

int main(int argc, char** argv) {
    using namespace fmore;
    if (argc < 4) {
        std::fprintf(stderr,
                     "usage: crash_resume_child <spec_file> <policy> "
                     "<trial_index> [--resume]\n");
        return 2;
    }
    const std::string spec_path = argv[1];
    const std::string policy = argv[2];
    const std::size_t trial_index =
        static_cast<std::size_t>(std::strtoull(argv[3], nullptr, 10));
    const bool resume = argc > 4 && std::string(argv[4]) == "--resume";

    std::ifstream in(spec_path);
    if (!in) {
        std::fprintf(stderr, "crash_resume_child: cannot open spec '%s'\n",
                     spec_path.c_str());
        return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();

    try {
        const core::ExperimentSpec spec =
            core::parse_experiment_spec(text.str());
        core::ExperimentTrial trial(spec, trial_index);
        std::optional<core::RunCheckpoint> ckpt;
        if (resume) {
            ckpt = core::find_latest_valid(core::checkpoint_run_dir(
                spec.timing.checkpoint_dir, policy, trial_index));
            if (!ckpt) {
                std::fprintf(stderr,
                             "crash_resume_child: no valid checkpoint under "
                             "'%s'\n",
                             spec.timing.checkpoint_dir.c_str());
                return 3;
            }
        }
        const fl::RunResult result =
            trial.run_resumable(policy, ckpt ? &*ckpt : nullptr);
        std::printf("rounds=%zu final_accuracy=%.17g\n", result.rounds.size(),
                    result.final_accuracy());
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "crash_resume_child: %s\n", e.what());
        return 3;
    }
}
