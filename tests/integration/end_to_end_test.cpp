// End-to-end checks of the paper's headline behaviour on scaled-down
// workloads: the incentive-driven selector must beat random/fixed selection
// under non-IID data, and the wall-clock model must favour FMore when it
// buys fast nodes.

#include <gtest/gtest.h>

#include "fmore/core/realworld.hpp"
#include "fmore/core/simulation.hpp"
#include "fmore/core/trials.hpp"

namespace fmore::core {
namespace {

SimulationConfig small_sim(DatasetKind dataset) {
    SimulationConfig config = default_simulation(dataset);
    config.train_samples = 3000;
    config.test_samples = 600;
    config.num_nodes = 50;
    config.winners = 10;
    config.rounds = 10;
    config.data_lo = 15;
    config.data_hi = 90;
    config.eval_cap = 400;
    return config;
}

TEST(EndToEnd, FMoreBeatsBaselinesOnAverage) {
    // Average three trials (the paper averages five full-size ones); FMore
    // must end ahead of both baselines on the easy image task.
    std::vector<fl::RunResult> fmore_runs;
    std::vector<fl::RunResult> rand_runs;
    std::vector<fl::RunResult> fix_runs;
    for (std::size_t t = 0; t < 3; ++t) {
        SimulationTrial trial(small_sim(DatasetKind::mnist_o), t);
        fmore_runs.push_back(trial.run(Strategy::fmore));
        rand_runs.push_back(trial.run(Strategy::randfl));
        fix_runs.push_back(trial.run(Strategy::fixfl));
    }
    const auto fmore = average_runs(fmore_runs);
    const auto rand = average_runs(rand_runs);
    const auto fix = average_runs(fix_runs);
    EXPECT_GT(fmore.accuracy.back(), rand.accuracy.back() - 0.02);
    EXPECT_GT(fmore.accuracy.back(), fix.accuracy.back() - 0.02);
    // And it must actually learn.
    EXPECT_GT(fmore.accuracy.back(), 0.55);
}

TEST(EndToEnd, FMoreSelectsBetterNodesThanAverage) {
    // The causal channel of the paper: winners hold more data x diversity
    // than the population average.
    SimulationTrial trial(small_sim(DatasetKind::mnist_o), 0);
    const fl::RunResult result = trial.run(Strategy::fmore);
    const auto& shards = trial.shards();
    double population_mass = 0.0;
    for (const auto& shard : shards) {
        population_mass += static_cast<double>(shard.indices.size())
                           * shard.category_proportion(10);
    }
    population_mass /= static_cast<double>(shards.size());

    double winner_mass = 0.0;
    std::size_t winner_count = 0;
    for (const auto& round : result.rounds) {
        for (const auto& sel : round.selection.selected) {
            winner_mass += static_cast<double>(shards[sel.client].indices.size())
                           * shards[sel.client].category_proportion(10);
            ++winner_count;
        }
    }
    winner_mass /= static_cast<double>(winner_count);
    EXPECT_GT(winner_mass, population_mass * 1.3);
}

TEST(EndToEnd, PsiFMoreTradesScoreForDiversity) {
    SimulationConfig config = small_sim(DatasetKind::mnist_o);
    config.psi = 0.4;
    SimulationTrial trial(config, 0);
    const fl::RunResult plain = trial.run(Strategy::fmore);
    const fl::RunResult psi = trial.run(Strategy::psi_fmore);
    // psi-FMore admits lower-scored winners on average.
    double plain_score = 0.0;
    double psi_score = 0.0;
    for (std::size_t r = 0; r < plain.rounds.size(); ++r) {
        plain_score += plain.rounds[r].mean_winner_score;
        psi_score += psi.rounds[r].mean_winner_score;
    }
    EXPECT_LT(psi_score, plain_score);
}

TEST(EndToEnd, RealWorldFMoreFasterToAccuracy) {
    // Fig. 13's claim is time-to-accuracy: FMore buys fast nodes AND more
    // data, so even when its rounds are not individually shorter it reaches
    // a given accuracy in less wall-clock time. Average two trials to tame
    // selection noise at this scale.
    RealWorldConfig config;
    config.train_samples = 3000;
    config.test_samples = 500;
    config.rounds = 12;
    config.eval_cap = 400;
    std::vector<fl::RunResult> fmore_runs;
    std::vector<fl::RunResult> rand_runs;
    for (std::size_t t = 0; t < 2; ++t) {
        RealWorldTrial trial(config, t);
        fmore_runs.push_back(trial.run(Strategy::fmore));
        rand_runs.push_back(trial.run(Strategy::randfl));
    }
    const double target = 0.30;
    const double fmore_s = mean_seconds_to_accuracy(fmore_runs, target);
    const double rand_s = mean_seconds_to_accuracy(rand_runs, target);
    EXPECT_LT(fmore_s, rand_s * 1.05);
    // And the wall-clock model must actually be engaged.
    EXPECT_GT(fmore_runs[0].total_seconds(), 0.0);
}

} // namespace
} // namespace fmore::core
