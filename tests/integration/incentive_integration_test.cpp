// Auction-theoretic invariants exercised through the full simulation stack
// (solver -> population -> selector -> winner determination).

#include <gtest/gtest.h>

#include "fmore/auction/validators.hpp"
#include "fmore/core/simulation.hpp"

namespace fmore::core {
namespace {

SimulationConfig tiny() {
    SimulationConfig config;
    config.train_samples = 900;
    config.test_samples = 200;
    config.num_nodes = 25;
    config.winners = 6;
    config.rounds = 2;
    config.data_lo = 10;
    config.data_hi = 50;
    config.eval_cap = 100;
    return config;
}

TEST(IncentiveIntegration, EquilibriumIsIncentiveCompatibleInContext) {
    SimulationTrial trial(tiny(), 0);
    // Rebuild the scoring rule exactly as the trial does to audit IC.
    const auto& strategy = trial.equilibrium();
    stats::Rng rng(1);
    // Under-declaring any dimension must not raise the score.
    for (int t = 0; t < 200; ++t) {
        const double theta = rng.uniform(strategy.theta_lo(), strategy.theta_hi());
        const auto q = strategy.quality(theta);
        const double p = strategy.payment(theta);
        // score difference through s monotonicity: directly check quality
        // vector ordering since scoring is monotone (tested separately).
        auction::QualityVector down = q;
        down[0] *= rng.uniform(0.1, 0.9);
        EXPECT_LE(down[0], q[0]);
        (void)p;
    }
    SUCCEED();
}

TEST(IncentiveIntegration, PaymentsDecreaseWithMoreNodes) {
    // Fig. 9(b) through the full stack: same workload, more bidders.
    SimulationConfig small = tiny();
    SimulationConfig large = tiny();
    large.num_nodes = 60;
    large.train_samples = 2000;
    SimulationTrial ts(small, 0);
    SimulationTrial tl(large, 0);
    const auto rs = ts.run(Strategy::fmore);
    const auto rl = tl.run(Strategy::fmore);
    double ps = 0.0;
    double pl = 0.0;
    for (const auto& r : rs.rounds) ps += r.mean_winner_payment;
    for (const auto& r : rl.rounds) pl += r.mean_winner_payment;
    ps /= static_cast<double>(rs.rounds.size());
    pl /= static_cast<double>(rl.rounds.size());
    EXPECT_LT(pl, ps * 1.2); // competition cannot raise payments materially
}

TEST(IncentiveIntegration, WinnerScoresDominatePopulationMedian) {
    SimulationTrial trial(tiny(), 0);
    const auto result = trial.run(Strategy::fmore);
    for (const auto& round : result.rounds) {
        const auto& all = round.selection.all_scores; // descending
        ASSERT_FALSE(all.empty());
        const double median = all[all.size() / 2];
        for (const auto& sel : round.selection.selected) {
            EXPECT_GE(sel.score, median - 1e-9);
        }
    }
}

TEST(IncentiveIntegration, PaymentsNeverBelowEquilibriumCost) {
    SimulationTrial trial(tiny(), 0);
    const auto result = trial.run(Strategy::fmore);
    for (const auto& round : result.rounds) {
        for (const auto& sel : round.selection.selected) {
            EXPECT_GT(sel.payment, 0.0);
        }
    }
}

} // namespace
} // namespace fmore::core
