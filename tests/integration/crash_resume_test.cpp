// The crash-recovery harness — the durability headline under test:
// SIGKILL the coordinator at any round, including from inside a
// checkpoint write, resume from disk, and winners / payments / metrics /
// health are bit-identical to a never-interrupted twin. The kill legs run
// in a dedicated child process (crash_resume_child.cpp — forking this
// binary with its live thread pool would deadlock); the resume and twin
// legs run in-process and are compared field-exact, across the sync,
// sharded, async and streaming(+adaptive quorum) lanes.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "fmore/auction/mechanism.hpp"
#include "fmore/core/experiment.hpp"
#include "fmore/core/run_checkpoint.hpp"
#include "fmore/fl/metrics.hpp"

namespace fmore::core {
namespace {

namespace fs = std::filesystem;

class TempDir {
public:
    TempDir() {
        static int counter = 0;
        dir_ = fs::temp_directory_path()
               / ("fmore_crash_resume_" + std::to_string(::getpid()) + "_"
                  + std::to_string(counter++));
        fs::create_directories(dir_);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    [[nodiscard]] std::string path(const std::string& name) const {
        return (dir_ / name).string();
    }
    [[nodiscard]] std::string str() const { return dir_.string(); }

private:
    fs::path dir_;
};

/// Path of the victim helper — it lands next to this suite's binary.
std::string child_path() {
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0) return "crash_resume_child";
    return (fs::path(std::string(buf, static_cast<std::size_t>(n)))
                .parent_path()
            / "crash_resume_child")
        .string();
}

/// Launch the victim; normalize death-by-signal to the shell convention
/// (128 + signo) so SIGKILL reads as 137 whether or not the shell exec'd
/// the command directly.
int run_child(const std::string& spec_file, const std::string& policy,
              std::size_t trial, bool resume) {
    std::string cmd = child_path() + " '" + spec_file + "' " + policy + " "
                      + std::to_string(trial);
    if (resume) cmd += " --resume";
    cmd += " > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    if (status == -1) return -1;
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    return -2;
}

void write_spec_file(const std::string& path, const ExperimentSpec& spec) {
    std::ofstream out(path);
    out << to_text(spec);
}

/// Tiny simulator world — small enough that a six-round run is cheap,
/// big enough that every round still holds a real auction.
ExperimentSpec tiny_sim_spec(const std::string& checkpoint_dir) {
    ExperimentSpec spec = default_experiment(DatasetKind::mnist_o);
    spec.seed = 20260808;
    spec.population.num_nodes = 12;
    spec.population.data_lo = 10;
    spec.population.data_hi = 40;
    spec.auction.winners = 4;
    spec.training.train_samples = 400;
    spec.training.test_samples = 120;
    spec.training.rounds = 6;
    spec.training.eval_cap = 100;
    spec.timing.checkpoint_every = 2;
    spec.timing.checkpoint_dir = checkpoint_dir;
    spec.timing.checkpoint_keep = 3;
    return spec;
}

/// Tiny testbed twin of the above (wall-clock model, async/streaming lanes).
ExperimentSpec tiny_testbed_spec(const std::string& checkpoint_dir) {
    ExperimentSpec spec = default_testbed_experiment();
    spec.seed = 20260809;
    spec.population.num_nodes = 12;
    spec.population.data_lo = 10;
    spec.population.data_hi = 40;
    spec.auction.winners = 4;
    spec.training.train_samples = 400;
    spec.training.test_samples = 120;
    spec.training.rounds = 6;
    spec.training.eval_cap = 100;
    spec.timing.checkpoint_every = 2;
    spec.timing.checkpoint_dir = checkpoint_dir;
    spec.timing.checkpoint_keep = 3;
    return spec;
}

/// The spec as the uninterrupted twin runs it: no coordinator kill, no
/// checkpointing — everything a durable run does must be invisible here.
ExperimentSpec twin_of(ExperimentSpec spec) {
    spec.auction.fault_plan.clear();
    spec.timing.checkpoint_every = 0;
    spec.timing.checkpoint_dir.clear();
    return spec;
}

void expect_rounds_equal(const std::vector<fl::RoundMetrics>& a,
                         const std::vector<fl::RoundMetrics>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("round " + std::to_string(i + 1));
        const fl::RoundMetrics& x = a[i];
        const fl::RoundMetrics& y = b[i];
        EXPECT_EQ(x.round, y.round);
        EXPECT_EQ(x.test_accuracy, y.test_accuracy);
        EXPECT_EQ(x.test_loss, y.test_loss);
        EXPECT_EQ(x.train_loss, y.train_loss);
        EXPECT_EQ(x.mean_winner_payment, y.mean_winner_payment);
        EXPECT_EQ(x.mean_winner_score, y.mean_winner_score);
        EXPECT_EQ(x.round_seconds, y.round_seconds);
        EXPECT_EQ(x.aggregated_updates, y.aggregated_updates);
        EXPECT_EQ(x.mean_staleness, y.mean_staleness);
        EXPECT_EQ(x.dropped_shards, y.dropped_shards);
        ASSERT_EQ(x.selection.selected.size(), y.selection.selected.size());
        for (std::size_t j = 0; j < x.selection.selected.size(); ++j) {
            EXPECT_EQ(x.selection.selected[j].client,
                      y.selection.selected[j].client);
            EXPECT_EQ(x.selection.selected[j].payment,
                      y.selection.selected[j].payment);
            EXPECT_EQ(x.selection.selected[j].score,
                      y.selection.selected[j].score);
            EXPECT_EQ(x.selection.selected[j].train_samples,
                      y.selection.selected[j].train_samples);
        }
        EXPECT_EQ(x.selection.all_scores, y.selection.all_scores);
        EXPECT_EQ(x.selection.scores_by_node, y.selection.scores_by_node);
        EXPECT_EQ(x.selection.dropped_shards, y.selection.dropped_shards);
        EXPECT_EQ(x.selection.close_reason, y.selection.close_reason);
        EXPECT_EQ(x.selection.close_time_s, y.selection.close_time_s);
        EXPECT_EQ(x.selection.arrived_bids, y.selection.arrived_bids);
        EXPECT_EQ(x.selection.bid_quorum, y.selection.bid_quorum);
        EXPECT_EQ(x.selection.shard_health.live_shards,
                  y.selection.shard_health.live_shards);
        EXPECT_EQ(x.selection.shard_health.evictions,
                  y.selection.shard_health.evictions);
        EXPECT_EQ(x.selection.shard_health.respawns,
                  y.selection.shard_health.respawns);
        EXPECT_EQ(x.selection.shard_health.corrupt_frames,
                  y.selection.shard_health.corrupt_frames);
        EXPECT_EQ(x.selection.shard_health.frame_retries,
                  y.selection.shard_health.frame_retries);
    }
}

/// Full resume bit-identity inside one process: run the checkpointed spec
/// to completion, re-load the round-`resume_round` checkpoint, resume, and
/// demand the two tapes match field-exactly.
void expect_in_process_resume_identity(const ExperimentSpec& spec,
                                       const std::string& policy,
                                       std::size_t resume_round) {
    ExperimentTrial full(spec, /*trial_index=*/0);
    const fl::RunResult reference = full.run_resumable(policy, nullptr);
    ASSERT_EQ(reference.rounds.size(), spec.training.rounds);

    const std::string run_dir =
        checkpoint_run_dir(spec.timing.checkpoint_dir, policy, 0);
    const RunCheckpoint mid =
        load_checkpoint(run_dir + "/" + checkpoint_filename(resume_round));
    ASSERT_EQ(mid.completed_rounds, resume_round);

    ExperimentTrial resumed(spec, /*trial_index=*/0);
    const fl::RunResult result = resumed.run_resumable(policy, &mid);
    expect_rounds_equal(reference.rounds, result.rounds);
}

// ---------------------------------------------------------------------------
// Kill legs: a real process dies by SIGKILL and the run still finishes.
// ---------------------------------------------------------------------------

TEST(CrashResume, SigkillAtRoundThenResumeMatchesUninterruptedTwin) {
    TempDir tmp;
    ExperimentSpec spec = tiny_sim_spec(tmp.path("ckpt"));
    spec.auction.fault_plan = "ckill=3";
    const std::string spec_file = tmp.path("spec.txt");
    write_spec_file(spec_file, spec);

    // The victim dies by SIGKILL right after round 3's checkpoint.
    ASSERT_EQ(run_child(spec_file, "fmore", 0, /*resume=*/false), 137);
    const std::string run_dir =
        checkpoint_run_dir(spec.timing.checkpoint_dir, "fmore", 0);
    const auto latest = find_latest_valid(run_dir);
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->completed_rounds, 3u); // kill rounds force a save
    EXPECT_EQ(latest->policy, "fmore");

    // Resume in-process; the kill round is behind the checkpoint, so the
    // plan never re-fires. The twin never checkpointed and never died.
    ExperimentTrial resumed(spec, 0);
    const fl::RunResult result = resumed.run_resumable("fmore", &*latest);
    ASSERT_EQ(result.rounds.size(), spec.training.rounds);

    ExperimentTrial twin(twin_of(spec), 0);
    const fl::RunResult reference = twin.run_resumable("fmore", nullptr);
    expect_rounds_equal(reference.rounds, result.rounds);
}

TEST(CrashResume, SigkillMidCheckpointWriteNeverConsumesTornFile) {
    TempDir tmp;
    ExperimentSpec spec = tiny_sim_spec(tmp.path("ckpt"));
    spec.auction.fault_plan = "ckill_mid=4";
    const std::string spec_file = tmp.path("spec.txt");
    write_spec_file(spec_file, spec);

    ASSERT_EQ(run_child(spec_file, "fmore", 0, /*resume=*/false), 137);
    const std::string run_dir =
        checkpoint_run_dir(spec.timing.checkpoint_dir, "fmore", 0);
    // The round-4 write died halfway: its bytes sit in a `.tmp` the reader
    // never looks at, and the newest VALID checkpoint is still round 2.
    EXPECT_TRUE(
        fs::exists(run_dir + "/" + checkpoint_filename(4) + ".tmp"));
    EXPECT_FALSE(fs::exists(run_dir + "/" + checkpoint_filename(4)));
    const auto latest = find_latest_valid(run_dir);
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->completed_rounds, 2u);

    // Resume replays rounds 3..6 (including the one that died mid-write)
    // and still matches the twin bit-for-bit.
    ExperimentTrial resumed(spec, 0);
    const fl::RunResult result = resumed.run_resumable("fmore", &*latest);
    ExperimentTrial twin(twin_of(spec), 0);
    const fl::RunResult reference = twin.run_resumable("fmore", nullptr);
    expect_rounds_equal(reference.rounds, result.rounds);
}

TEST(CrashResume, ChildResumeFlagCompletesTheRunOutOfProcess) {
    // End-to-end shape of the CI smoke leg: kill, then a SECOND process
    // resumes via the same spec file, runs to completion and leaves a
    // final-round checkpoint whose tape matches the twin's.
    TempDir tmp;
    ExperimentSpec spec = tiny_sim_spec(tmp.path("ckpt"));
    spec.auction.fault_plan = "ckill=3";
    const std::string spec_file = tmp.path("spec.txt");
    write_spec_file(spec_file, spec);

    ASSERT_EQ(run_child(spec_file, "fmore", 0, /*resume=*/false), 137);
    ASSERT_EQ(run_child(spec_file, "fmore", 0, /*resume=*/true), 0);

    const std::string run_dir =
        checkpoint_run_dir(spec.timing.checkpoint_dir, "fmore", 0);
    const auto final_ckpt = find_latest_valid(run_dir);
    ASSERT_TRUE(final_ckpt.has_value());
    ASSERT_EQ(final_ckpt->completed_rounds, spec.training.rounds);

    ExperimentTrial twin(twin_of(spec), 0);
    const fl::RunResult reference = twin.run_resumable("fmore", nullptr);
    expect_rounds_equal(reference.rounds, final_ckpt->rounds);
}

// ---------------------------------------------------------------------------
// Lane sweep: mid-run resume is bit-identical in every coordinator lane.
// ---------------------------------------------------------------------------

TEST(CrashResume, SimulationSyncLaneResumesBitIdentically) {
    TempDir tmp;
    expect_in_process_resume_identity(tiny_sim_spec(tmp.path("ckpt")), "fmore",
                                      /*resume_round=*/2);
}

TEST(CrashResume, ShardedMarketLaneResumesBitIdentically) {
    TempDir tmp;
    ExperimentSpec spec = tiny_sim_spec(tmp.path("ckpt"));
    spec.auction.shards = 3;
    expect_in_process_resume_identity(spec, "fmore", /*resume_round=*/4);
}

TEST(CrashResume, AsyncLaneResumesWithInFlightCarry) {
    TempDir tmp;
    ExperimentSpec spec = tiny_testbed_spec(tmp.path("ckpt"));
    spec.timing.round_mode = fl::RoundMode::async;
    spec.timing.min_updates = 2;
    spec.timing.latency_spread = 0.4; // stragglers keep updates in flight
    expect_in_process_resume_identity(spec, "fmore", /*resume_round=*/2);
}

TEST(CrashResume, StreamingAdaptiveQuorumLaneResumesBitIdentically) {
    TempDir tmp;
    ExperimentSpec spec = tiny_testbed_spec(tmp.path("ckpt"));
    spec.timing.streaming = true;
    spec.timing.min_updates = 3;
    spec.timing.round_deadline_s = 30.0;
    spec.timing.adaptive_quorum = true;
    expect_in_process_resume_identity(spec, "fmore", /*resume_round=*/4);
}

TEST(CrashResume, EveryRegisteredMechanismResumesBitIdentically) {
    // The headline invariant holds per registered wire mechanism, not just
    // for the default: resume must replay the exact pricing rule, whatever
    // it is.
    for (const std::string& name :
         auction::MechanismRegistry::instance().names()) {
        SCOPED_TRACE("mechanism " + name);
        TempDir tmp;
        ExperimentSpec spec = tiny_sim_spec(tmp.path("ckpt"));
        spec.auction.mechanism = name;
        expect_in_process_resume_identity(spec, "fmore", /*resume_round=*/2);
    }
}

TEST(CrashResume, ShardFaultPlanSurvivesResume) {
    // Active shard faults + checkpointing: the injected drops replay
    // identically after a resume because the virtual-clock plan is pure in
    // (seed, shard, round).
    TempDir tmp;
    ExperimentSpec spec = tiny_sim_spec(tmp.path("ckpt"));
    spec.auction.shards = 3;
    spec.auction.shard_timeout_s = 1.0;
    spec.auction.fault_plan = "seed=5,crash=0.2";
    expect_in_process_resume_identity(spec, "fmore", /*resume_round=*/2);
}

// ---------------------------------------------------------------------------
// Guard rails
// ---------------------------------------------------------------------------

TEST(CrashResume, ResumeRejectsForeignCheckpoints) {
    TempDir tmp;
    const ExperimentSpec spec = tiny_sim_spec(tmp.path("ckpt"));
    ExperimentTrial trial(spec, 0);
    (void)trial.run_resumable("fmore", nullptr);
    const std::string run_dir =
        checkpoint_run_dir(spec.timing.checkpoint_dir, "fmore", 0);
    const auto ckpt = find_latest_valid(run_dir);
    ASSERT_TRUE(ckpt.has_value());

    // Wrong policy: the checkpoint names the run it belongs to.
    ExperimentTrial other_policy(spec, 0);
    EXPECT_THROW((void)other_policy.run_resumable("randfl", &*ckpt),
                 std::invalid_argument);

    // Wrong spec: a drifted seed must refuse to resume, not silently fork
    // the run's history.
    ExperimentSpec drifted = spec;
    drifted.seed += 1;
    ExperimentTrial other_spec(drifted, 0);
    EXPECT_THROW((void)other_spec.run_resumable("fmore", &*ckpt),
                 std::invalid_argument);
}

TEST(CrashResume, RetentionBoundsTheCheckpointDirectory) {
    TempDir tmp;
    ExperimentSpec spec = tiny_sim_spec(tmp.path("ckpt"));
    spec.timing.checkpoint_every = 1;
    spec.timing.checkpoint_keep = 2;
    ExperimentTrial trial(spec, 0);
    (void)trial.run_resumable("fmore", nullptr);
    const std::string run_dir =
        checkpoint_run_dir(spec.timing.checkpoint_dir, "fmore", 0);
    std::size_t files = 0;
    for (const auto& entry : fs::directory_iterator(run_dir)) {
        (void)entry;
        ++files;
    }
    EXPECT_EQ(files, 2u);
    EXPECT_TRUE(fs::exists(run_dir + "/" + checkpoint_filename(5)));
    EXPECT_TRUE(fs::exists(run_dir + "/" + checkpoint_filename(6)));
}

} // namespace
} // namespace fmore::core
