// Golden-determinism suite: the full experiment surface (spec -> trials ->
// rounds -> metrics) must be bit-identical for every combination of trial-
// and round-thread counts, for the synchronous coordinator AND the async/
// semi-sync modes. This promotes the CI-script-only "serial vs 8-thread
// scenario table diff" into a ctest that fails with the first differing
// metric instead of a useless textual diff.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "fmore/core/scenarios.hpp"
#include "fmore/core/trials.hpp"

namespace fmore::core {
namespace {

/// Scale a scenario down so three full runs stay inside a test budget.
ExperimentSpec tiny(const std::string& scenario) {
    ExperimentSpec spec = named_scenario(scenario);
    spec.training.train_samples = 900;
    spec.training.test_samples = 200;
    spec.training.rounds = 3;
    spec.training.eval_cap = 120;
    return spec;
}

/// Two trials of `spec` under explicit trial- and round-thread counts. The
/// round count rides the FMORE_ROUND_THREADS override — the same knob the
/// CI smoke used — restored afterwards so sibling tests see a clean env.
std::vector<fl::RunResult> runs_with(const ExperimentSpec& spec,
                                     const std::string& policy,
                                     std::size_t trial_threads,
                                     std::size_t round_threads) {
    const char* previous = std::getenv("FMORE_ROUND_THREADS");
    const std::string saved = previous ? previous : "";
    ::setenv("FMORE_ROUND_THREADS", std::to_string(round_threads).c_str(), 1);
    TrialRunnerOptions options;
    options.threads = trial_threads;
    std::vector<fl::RunResult> runs;
    try {
        runs = run_experiment_trials(spec, policy, 2, options);
    } catch (...) {
        if (previous) ::setenv("FMORE_ROUND_THREADS", saved.c_str(), 1);
        else ::unsetenv("FMORE_ROUND_THREADS");
        throw;
    }
    if (previous) ::setenv("FMORE_ROUND_THREADS", saved.c_str(), 1);
    else ::unsetenv("FMORE_ROUND_THREADS");
    return runs;
}

void expect_golden(const std::vector<fl::RunResult>& golden,
                   const std::vector<fl::RunResult>& other,
                   const std::string& label) {
    ASSERT_EQ(golden.size(), other.size()) << label;
    for (std::size_t t = 0; t < golden.size(); ++t) {
        ASSERT_EQ(golden[t].rounds.size(), other[t].rounds.size()) << label;
        for (std::size_t r = 0; r < golden[t].rounds.size(); ++r) {
            SCOPED_TRACE(label + ", trial " + std::to_string(t) + ", round "
                         + std::to_string(r + 1));
            const fl::RoundMetrics& a = golden[t].rounds[r];
            const fl::RoundMetrics& b = other[t].rounds[r];
            EXPECT_EQ(a.test_accuracy, b.test_accuracy);
            EXPECT_EQ(a.test_loss, b.test_loss);
            EXPECT_EQ(a.train_loss, b.train_loss);
            EXPECT_EQ(a.mean_winner_payment, b.mean_winner_payment);
            EXPECT_EQ(a.mean_winner_score, b.mean_winner_score);
            EXPECT_EQ(a.round_seconds, b.round_seconds);
            EXPECT_EQ(a.aggregated_updates, b.aggregated_updates);
            EXPECT_EQ(a.mean_staleness, b.mean_staleness);
            EXPECT_EQ(a.dropped_shards, b.dropped_shards);
        }
    }
}

TEST(DeterminismGolden, SyncScenarioBitIdenticalAcrossThreadCounts) {
    const ExperimentSpec spec = tiny("paper/fig04");
    const auto golden = runs_with(spec, "fmore", 1, 1);
    expect_golden(golden, runs_with(spec, "fmore", 1, 8), "round_threads 8");
    expect_golden(golden, runs_with(spec, "fmore", 2, 2), "2x2 trial/round threads");
}

TEST(DeterminismGolden, AsyncScenarioBitIdenticalAcrossThreadCounts) {
    // The heavy-straggler preset exercises everything the async mode adds:
    // lognormal latency factors, dropout draws, min_updates triggering,
    // staleness-weighted merging of carried updates.
    const ExperimentSpec spec = tiny("straggler/heavy");
    const auto golden = runs_with(spec, "fmore", 1, 1);
    expect_golden(golden, runs_with(spec, "fmore", 1, 8), "round_threads 8");
    expect_golden(golden, runs_with(spec, "fmore", 2, 2), "2x2 trial/round threads");
}

TEST(DeterminismGolden, SemiSyncDeadlineBitIdenticalAcrossThreadCounts) {
    ExperimentSpec spec = tiny("straggler/mild");
    spec.timing.round_deadline_s = 20.0;
    const auto golden = runs_with(spec, "fmore", 1, 1);
    expect_golden(golden, runs_with(spec, "fmore", 2, 8), "2x8 trial/round threads");
}

TEST(DeterminismGolden, ZeroSpreadSemiSyncMatchesSyncEngine) {
    // The acceptance contract of the async subsystem: with no latency
    // spread, no dropouts and min_updates = K, the semi_sync and async
    // engines reproduce the synchronous testbed run bit-identically —
    // wall-clock metrics included.
    ExperimentSpec sync_spec = tiny("testbed/default");
    const auto sync_runs = runs_with(sync_spec, "fmore", 1, 1);
    for (const fl::RoundMode mode : {fl::RoundMode::semi_sync, fl::RoundMode::async}) {
        ExperimentSpec spec = sync_spec;
        spec.timing.round_mode = mode;
        spec.timing.min_updates = spec.auction.winners;
        expect_golden(sync_runs, runs_with(spec, "fmore", 1, 1),
                      "mode " + fl::to_string(mode));
        expect_golden(sync_runs, runs_with(spec, "fmore", 1, 8),
                      "mode " + fl::to_string(mode) + ", round_threads 8");
    }
}

TEST(DeterminismGolden, ShardedScaleMarketBitIdenticalToMonolithic) {
    // Sharding is an execution strategy, not a different market: a shrunk
    // scale/10k world must produce the same metrics for S = 1 and for every
    // (shard count, round-thread count) pairing — dropped_shards included.
    ExperimentSpec spec = named_scenario("scale/10k");
    spec.population.num_nodes = 2'000;
    spec.training.train_samples = 4'000;
    spec.training.test_samples = 100;
    spec.training.rounds = 2;
    spec.training.eval_cap = 60;
    spec.auction.shards = 1;
    const auto golden = runs_with(spec, "fmore", 1, 1);
    struct Grid {
        std::size_t shards;
        std::size_t round_threads;
    };
    for (const Grid g : {Grid{4, 1}, Grid{4, 8}, Grid{8, 2}}) {
        ExperimentSpec sharded = spec;
        sharded.auction.shards = g.shards;
        expect_golden(golden, runs_with(sharded, "fmore", 1, g.round_threads),
                      "shards " + std::to_string(g.shards) + ", round_threads "
                          + std::to_string(g.round_threads));
    }
}

} // namespace
} // namespace fmore::core
