#include <gtest/gtest.h>

#include "fmore/stats/summary.hpp"

namespace fmore::stats {
namespace {

TEST(RunningSummary, BasicMoments) {
    RunningSummary s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningSummary, SingleValue) {
    RunningSummary s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningSummary, EmptyThrows) {
    const RunningSummary s;
    EXPECT_THROW(s.mean(), std::logic_error);
    EXPECT_THROW(s.min(), std::logic_error);
    EXPECT_THROW(s.max(), std::logic_error);
}

TEST(BatchStats, MeanAndStddev) {
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_NEAR(stddev(xs), 1.2909944487358056, 1e-12);
    EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(BatchStats, PercentileInterpolates) {
    std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 30.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 20.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 12.5), 15.0);
}

TEST(BatchStats, PercentileUnsortedInput) {
    std::vector<double> xs{50.0, 10.0, 30.0, 20.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 30.0);
}

} // namespace
} // namespace fmore::stats
