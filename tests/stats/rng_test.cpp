#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fmore/stats/rng.hpp"

namespace fmore::stats {
namespace {

TEST(Rng, UniformRespectsBounds) {
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-2.5, 7.5);
        EXPECT_GE(x, -2.5);
        EXPECT_LT(x, 7.5);
    }
}

TEST(Rng, UniformMeanIsCentered) {
    Rng rng(2);
    double total = 0.0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) total += rng.uniform(0.0, 1.0);
    EXPECT_NEAR(total / n, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
    Rng rng(3);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 5));
    EXPECT_EQ(seen.size(), 6u);
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(Rng, UniformThrowsOnBadBounds) {
    Rng rng(4);
    EXPECT_THROW(rng.uniform(1.0, 0.0), std::invalid_argument);
    EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, NormalMatchesMoments) {
    Rng rng(5);
    double total = 0.0;
    double sq = 0.0;
    constexpr int n = 40000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(2.0, 3.0);
        total += x;
        sq += x * x;
    }
    const double mean = total / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.08);
    EXPECT_NEAR(var, 9.0, 0.35);
}

TEST(Rng, BernoulliFrequency) {
    Rng rng(6);
    int heads = 0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.3)) ++heads;
    }
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliClampsProbability) {
    Rng rng(7);
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(Rng, DeterministicAcrossInstances) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
    }
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
    Rng rng(8);
    const auto sample = rng.sample_without_replacement(50, 20);
    EXPECT_EQ(sample.size(), 20u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 20u);
    for (const std::size_t s : sample) EXPECT_LT(s, 50u);
}

TEST(Rng, SampleWithoutReplacementFullSet) {
    Rng rng(9);
    const auto sample = rng.sample_without_replacement(10, 10);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversizedRequest) {
    Rng rng(10);
    EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementIsUnbiased) {
    // Each of 10 items should appear in a 5-sample ~half the time.
    Rng rng(11);
    std::vector<int> counts(10, 0);
    constexpr int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        for (const std::size_t s : rng.sample_without_replacement(10, 5)) ++counts[s];
    }
    for (const int c : counts) {
        EXPECT_NEAR(static_cast<double>(c) / trials, 0.5, 0.04);
    }
}

TEST(Rng, SplitProducesIndependentStreams) {
    Rng parent(12);
    Rng child1 = parent.split();
    Rng child2 = parent.split();
    // Streams should differ from each other.
    bool all_equal = true;
    for (int i = 0; i < 32; ++i) {
        if (child1.uniform(0.0, 1.0) != child2.uniform(0.0, 1.0)) all_equal = false;
    }
    EXPECT_FALSE(all_equal);
}

TEST(Rng, ShufflePreservesElements) {
    Rng rng(13);
    std::vector<std::size_t> items{0, 1, 2, 3, 4, 5, 6, 7};
    auto copy = items;
    rng.shuffle(copy);
    std::sort(copy.begin(), copy.end());
    EXPECT_EQ(copy, items);
}

} // namespace
} // namespace fmore::stats
