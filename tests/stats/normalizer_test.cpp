#include <gtest/gtest.h>

#include "fmore/stats/normalizer.hpp"

namespace fmore::stats {
namespace {

TEST(MinMaxNormalizer, MapsRangeToUnitInterval) {
    const MinMaxNormalizer norm(1000.0, 5000.0);
    EXPECT_DOUBLE_EQ(norm.transform(1000.0), 0.0);
    EXPECT_DOUBLE_EQ(norm.transform(5000.0), 1.0);
    EXPECT_DOUBLE_EQ(norm.transform(3000.0), 0.5);
}

TEST(MinMaxNormalizer, PaperWalkthroughValues) {
    // Section III.B normalizes data in [1000, 5000] and bandwidth in
    // [5, 100]; node A's (4000, 85Mb) maps to (0.75, 80/95).
    const MinMaxNormalizer data(1000.0, 5000.0);
    const MinMaxNormalizer bw(5.0, 100.0);
    EXPECT_NEAR(data.transform(4000.0), 0.75, 1e-12);
    EXPECT_NEAR(bw.transform(85.0), 80.0 / 95.0, 1e-12);
}

TEST(MinMaxNormalizer, ClampsOutOfRange) {
    const MinMaxNormalizer norm(0.0, 10.0);
    EXPECT_DOUBLE_EQ(norm.transform(-5.0), 0.0);
    EXPECT_DOUBLE_EQ(norm.transform(15.0), 1.0);
}

TEST(MinMaxNormalizer, InverseRoundTrips) {
    const MinMaxNormalizer norm(-4.0, 6.0);
    for (double x : {-4.0, -1.0, 0.0, 3.7, 6.0}) {
        EXPECT_NEAR(norm.inverse(norm.transform(x)), x, 1e-12);
    }
}

TEST(MinMaxNormalizer, FitFromValues) {
    const auto norm = MinMaxNormalizer::fit({3.0, 9.0, 5.0, 7.0});
    EXPECT_DOUBLE_EQ(norm.lo(), 3.0);
    EXPECT_DOUBLE_EQ(norm.hi(), 9.0);
    EXPECT_DOUBLE_EQ(norm.transform(6.0), 0.5);
}

TEST(MinMaxNormalizer, FitRejectsDegenerate) {
    EXPECT_THROW(MinMaxNormalizer::fit({1.0}), std::invalid_argument);
    EXPECT_THROW(MinMaxNormalizer::fit({2.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(MinMaxNormalizer(5.0, 5.0), std::invalid_argument);
}

TEST(MinMaxNormalizer, DefaultIsIdentityOnUnitInterval) {
    const MinMaxNormalizer norm;
    EXPECT_DOUBLE_EQ(norm.transform(0.3), 0.3);
}

} // namespace
} // namespace fmore::stats
