#include <gtest/gtest.h>

#include "fmore/stats/histogram.hpp"

namespace fmore::stats {
namespace {

TEST(Histogram, AssignsToCorrectBins) {
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);  // bin 0
    h.add(2.5);  // bin 1
    h.add(9.9);  // bin 4
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(4), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange) {
    Histogram h(0.0, 1.0, 4);
    h.add(-3.0);
    h.add(5.0);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, UpperEdgeGoesToLastBin) {
    Histogram h(0.0, 1.0, 4);
    h.add(1.0);
    EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, ProportionsSumToOne) {
    Histogram h(0.0, 1.0, 10);
    for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) / 10.0 + 0.05);
    double total = 0.0;
    for (std::size_t b = 0; b < h.bin_count(); ++b) total += h.proportion(b);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, EmptyHistogramHasZeroProportions) {
    const Histogram h(0.0, 1.0, 3);
    EXPECT_DOUBLE_EQ(h.proportion(0), 0.0);
}

TEST(Histogram, BinGeometry) {
    const Histogram h(100.0, 1000.0, 9);
    const auto [lo, hi] = h.bin_range(0);
    EXPECT_DOUBLE_EQ(lo, 100.0);
    EXPECT_DOUBLE_EQ(hi, 200.0);
    EXPECT_DOUBLE_EQ(h.bin_center(0), 150.0);
    EXPECT_DOUBLE_EQ(h.bin_center(8), 950.0);
}

TEST(Histogram, RejectsBadConstruction) {
    EXPECT_THROW(Histogram(1.0, 0.0, 4), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, AddAllMatchesIndividualAdds) {
    Histogram a(0.0, 1.0, 4);
    Histogram b(0.0, 1.0, 4);
    const std::vector<double> xs{0.1, 0.3, 0.6, 0.9, 0.2};
    for (const double x : xs) a.add(x);
    b.add_all(xs);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(a.count(i), b.count(i));
}

} // namespace
} // namespace fmore::stats
