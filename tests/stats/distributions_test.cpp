#include <gtest/gtest.h>

#include <memory>

#include "fmore/stats/distributions.hpp"

namespace fmore::stats {
namespace {

TEST(UniformDistribution, CdfEndpointsAndMidpoint) {
    const UniformDistribution u(2.0, 6.0);
    EXPECT_DOUBLE_EQ(u.cdf(2.0), 0.0);
    EXPECT_DOUBLE_EQ(u.cdf(6.0), 1.0);
    EXPECT_DOUBLE_EQ(u.cdf(4.0), 0.5);
    EXPECT_DOUBLE_EQ(u.cdf(0.0), 0.0);
    EXPECT_DOUBLE_EQ(u.cdf(9.0), 1.0);
}

TEST(UniformDistribution, PdfIsConstantInside) {
    const UniformDistribution u(0.0, 4.0);
    EXPECT_DOUBLE_EQ(u.pdf(1.0), 0.25);
    EXPECT_DOUBLE_EQ(u.pdf(3.9), 0.25);
    EXPECT_DOUBLE_EQ(u.pdf(-0.1), 0.0);
    EXPECT_DOUBLE_EQ(u.pdf(4.1), 0.0);
}

TEST(UniformDistribution, QuantileInvertsCdf) {
    const UniformDistribution u(1.0, 3.0);
    for (double p : {0.0, 0.25, 0.5, 0.9, 1.0}) {
        EXPECT_NEAR(u.cdf(u.quantile(p)), p, 1e-12);
    }
}

TEST(UniformDistribution, RejectsEmptySupport) {
    EXPECT_THROW(UniformDistribution(1.0, 1.0), std::invalid_argument);
    EXPECT_THROW(UniformDistribution(2.0, 1.0), std::invalid_argument);
}

TEST(UniformDistribution, SamplesStayInSupport) {
    const UniformDistribution u(0.5, 1.5);
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        const double x = u.sample(rng);
        EXPECT_GE(x, 0.5);
        EXPECT_LE(x, 1.5);
    }
}

TEST(TruncatedNormal, CdfMonotoneAndNormalized) {
    const TruncatedNormalDistribution t(1.0, 0.5, 0.5, 1.5);
    EXPECT_DOUBLE_EQ(t.cdf(0.5), 0.0);
    EXPECT_DOUBLE_EQ(t.cdf(1.5), 1.0);
    double prev = 0.0;
    for (double x = 0.5; x <= 1.5; x += 0.05) {
        const double c = t.cdf(x);
        EXPECT_GE(c, prev - 1e-12);
        prev = c;
    }
}

TEST(TruncatedNormal, SymmetricCaseHasMedianAtMean) {
    const TruncatedNormalDistribution t(1.0, 0.4, 0.0, 2.0);
    EXPECT_NEAR(t.cdf(1.0), 0.5, 1e-9);
    EXPECT_NEAR(t.quantile(0.5), 1.0, 1e-6);
}

TEST(TruncatedNormal, PdfIntegratesToOne) {
    const TruncatedNormalDistribution t(0.8, 0.3, 0.5, 1.5);
    double integral = 0.0;
    constexpr int n = 4000;
    for (int i = 0; i < n; ++i) {
        const double x = 0.5 + (i + 0.5) / n;
        integral += t.pdf(x) / n;
    }
    EXPECT_NEAR(integral, 1.0, 1e-4);
}

TEST(TruncatedNormal, RejectsBadParameters) {
    EXPECT_THROW(TruncatedNormalDistribution(0.0, 0.0, 0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(TruncatedNormalDistribution(0.0, 1.0, 2.0, 1.0), std::invalid_argument);
}

TEST(ScaledBeta, UniformSpecialCase) {
    // Beta(1,1) is uniform: CDF should be linear.
    const ScaledBetaDistribution b(1.0, 1.0, 0.0, 2.0);
    EXPECT_NEAR(b.cdf(0.5), 0.25, 1e-9);
    EXPECT_NEAR(b.cdf(1.0), 0.50, 1e-9);
    EXPECT_NEAR(b.cdf(1.5), 0.75, 1e-9);
}

TEST(ScaledBeta, SkewedMassLocation) {
    // Beta(2,5) has most mass below the midpoint.
    const ScaledBetaDistribution b(2.0, 5.0, 0.0, 1.0);
    EXPECT_GT(b.cdf(0.5), 0.85);
    // Beta(5,2) mirrors it.
    const ScaledBetaDistribution c(5.0, 2.0, 0.0, 1.0);
    EXPECT_LT(c.cdf(0.5), 0.15);
}

TEST(ScaledBeta, QuantileInvertsCdf) {
    const ScaledBetaDistribution b(2.5, 3.5, 1.0, 4.0);
    for (double p : {0.05, 0.3, 0.5, 0.7, 0.95}) {
        EXPECT_NEAR(b.cdf(b.quantile(p)), p, 1e-6);
    }
}

TEST(ScaledBeta, PdfIntegratesToOne) {
    const ScaledBetaDistribution b(3.0, 2.0, 0.0, 5.0);
    double integral = 0.0;
    constexpr int n = 5000;
    for (int i = 0; i < n; ++i) {
        const double x = (i + 0.5) * 5.0 / n;
        integral += b.pdf(x) * 5.0 / n;
    }
    EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(ScaledBeta, RejectsBadShapes) {
    EXPECT_THROW(ScaledBetaDistribution(0.0, 1.0, 0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(ScaledBetaDistribution(1.0, -1.0, 0.0, 1.0), std::invalid_argument);
}

// The theta model assumptions of the paper: positive density over a bounded
// support [theta_lo, theta_hi] with 0 < theta_lo < theta_hi < inf.
TEST(DistributionContract, AllFamiliesHavePositiveDensityInside) {
    std::vector<std::unique_ptr<Distribution>> dists;
    dists.push_back(std::make_unique<UniformDistribution>(0.5, 1.5));
    dists.push_back(std::make_unique<TruncatedNormalDistribution>(1.0, 0.4, 0.5, 1.5));
    dists.push_back(std::make_unique<ScaledBetaDistribution>(2.0, 2.0, 0.5, 1.5));
    for (const auto& d : dists) {
        for (double x = 0.55; x < 1.5; x += 0.1) {
            EXPECT_GT(d->pdf(x), 0.0);
        }
        EXPECT_LT(d->support_lo(), d->support_hi());
    }
}

} // namespace
} // namespace fmore::stats
