#include <gtest/gtest.h>

#include "fmore/stats/empirical_cdf.hpp"

namespace fmore::stats {
namespace {

TEST(EmpiricalCdf, EndpointsAndMonotonicity) {
    const EmpiricalCdf ecdf({3.0, 1.0, 2.0, 4.0});
    EXPECT_DOUBLE_EQ(ecdf.cdf(1.0), 0.0);
    EXPECT_DOUBLE_EQ(ecdf.cdf(4.0), 1.0);
    double prev = 0.0;
    for (double x = 1.0; x <= 4.0; x += 0.1) {
        const double c = ecdf.cdf(x);
        EXPECT_GE(c, prev - 1e-12);
        prev = c;
    }
}

TEST(EmpiricalCdf, InterpolatesBetweenOrderStatistics) {
    const EmpiricalCdf ecdf({0.0, 1.0, 2.0});
    EXPECT_NEAR(ecdf.cdf(0.5), 0.25, 1e-12);
    EXPECT_NEAR(ecdf.cdf(1.5), 0.75, 1e-12);
}

TEST(EmpiricalCdf, QuantileRoundTrip) {
    const EmpiricalCdf ecdf({0.5, 0.8, 1.1, 1.4, 1.5});
    for (double p : {0.0, 0.2, 0.5, 0.8, 1.0}) {
        EXPECT_NEAR(ecdf.cdf(ecdf.quantile(p)), p, 1e-9);
    }
}

TEST(EmpiricalCdf, RejectsDegenerateInput) {
    EXPECT_THROW(EmpiricalCdf({1.0}), std::invalid_argument);
    EXPECT_THROW(EmpiricalCdf({2.0, 2.0, 2.0}), std::invalid_argument);
}

TEST(EmpiricalCdf, ConvergesToTrueDistribution) {
    // The paper has nodes learn F(theta) from history; with more history the
    // learned CDF should approach the truth (Glivenko-Cantelli).
    const UniformDistribution truth(0.5, 1.5);
    Rng rng(17);
    auto draw = [&](std::size_t n) {
        std::vector<double> xs(n);
        for (double& x : xs) x = truth.sample(rng);
        return EmpiricalCdf(xs).ks_distance(truth);
    };
    const double d_small = draw(50);
    const double d_large = draw(5000);
    EXPECT_LT(d_large, d_small);
    EXPECT_LT(d_large, 0.05);
}

TEST(EmpiricalCdf, PdfIsPiecewiseDensity) {
    const EmpiricalCdf ecdf({0.0, 1.0, 3.0});
    // Two gaps of width 1 and 2, each carrying probability mass 1/2.
    EXPECT_NEAR(ecdf.pdf(0.5), 0.5, 1e-12);
    EXPECT_NEAR(ecdf.pdf(2.0), 0.25, 1e-12);
    EXPECT_DOUBLE_EQ(ecdf.pdf(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(ecdf.pdf(4.0), 0.0);
}

TEST(EmpiricalCdf, WorksAsThetaModelSupport) {
    const EmpiricalCdf ecdf({0.6, 0.8, 1.0, 1.2, 1.4});
    EXPECT_DOUBLE_EQ(ecdf.support_lo(), 0.6);
    EXPECT_DOUBLE_EQ(ecdf.support_hi(), 1.4);
    EXPECT_EQ(ecdf.sample_count(), 5u);
}

} // namespace
} // namespace fmore::stats
