// Walk-through example of Section III.B, reproduced bid-for-bid: five edge
// nodes {A..E} auction (data size, bandwidth) with the Leontief scoring rule
// S(q, p) = min(0.5*q1n, 0.5*q2n) - p, min-max normalized over
// [1000, 5000] x [5Mb, 100Mb]. The printed scores match the paper's Fig. 3
// to three decimals and the winner sets are {A, D, E} then {A, C, E}.

#include <iostream>

#include "fmore/auction/scoring.hpp"
#include "fmore/auction/winner_determination.hpp"
#include "fmore/core/report.hpp"
#include "fmore/stats/normalizer.hpp"

int main() {
    using namespace fmore;

    std::vector<stats::MinMaxNormalizer> norms;
    norms.emplace_back(1000.0, 5000.0); // data size
    norms.emplace_back(5.0, 100.0);     // bandwidth (Mb)
    const auction::LeontiefScoring scoring({0.5, 0.5}, norms);

    const char* names = "ABCDE";
    const std::vector<auction::Bid> round1 = {
        {0, {4000.0, 85.0}, 0.20}, {1, {3000.0, 35.0}, 0.10}, {2, {3500.0, 75.0}, 0.18},
        {3, {5000.0, 85.0}, 0.20}, {4, {5000.0, 100.0}, 0.20},
    };
    const std::vector<auction::Bid> round2 = {
        {0, {4000.0, 85.0}, 0.16}, {1, {3500.0, 45.0}, 0.10}, {2, {4000.0, 80.0}, 0.15},
        {3, {4000.0, 80.0}, 0.20}, {4, {5000.0, 100.0}, 0.30},
    };

    auction::WinnerDeterminationConfig wd;
    wd.num_winners = 3;
    wd.payment_rule = auction::PaymentRule::first_price;
    const auction::WinnerDetermination determination(scoring, wd);
    stats::Rng rng(1);

    int round_no = 1;
    for (const auto& bids : {round1, round2}) {
        const auction::AuctionOutcome outcome = determination.run(bids, rng);
        std::cout << "Round " << round_no++ << " ranking (paper Fig. 3):\n";
        core::TablePrinter table(std::cout, {"node", "score", "bid_p", "winner"});
        for (const auction::ScoredBid& sb : outcome.ranking) {
            bool won = false;
            for (const auction::Winner& w : outcome.winners) {
                if (w.node == sb.bid.node) won = true;
            }
            table.row({std::string(1, names[sb.bid.node]), core::fixed(sb.score, 3),
                       core::fixed(sb.bid.payment, 2), won ? "yes" : ""});
        }
        std::cout << '\n';
    }
    std::cout << "Expected winner sets from the paper: {A, D, E} then {A, C, E}.\n";
    return 0;
}
