// Streaming market: the FMore auction as a long-lived ingestion service.
// Instead of collecting one batch of sealed bids, the aggregator opens a
// round, bids trickle in one at a time on a virtual clock, a running top-K
// is maintained incrementally, and the round closes on deadline expiry or
// bid quorum — whichever fires first. Closing emits exactly what the batch
// market would emit over the same arrived set, bit for bit.
//
// Shows: StreamingAuctionSelector vs the batch AuctionSelector (equality
// per round under closed-loop arrivals), a deadline cutting off the
// straggler tail, and a Poisson-arrival round racing a quorum against the
// deadline.

#include <iostream>

#include "fmore/auction/cost.hpp"
#include "fmore/auction/equilibrium.hpp"
#include "fmore/auction/scoring.hpp"
#include "fmore/core/report.hpp"
#include "fmore/mec/auction_selector.hpp"
#include "fmore/mec/streaming_selector.hpp"
#include "fmore/stats/normalizer.hpp"

int main() {
    using namespace fmore;

    // The simulator's market (Section V.A): two-dimensional scaled-product
    // scoring over (data size, category diversity), linear private costs.
    std::vector<stats::MinMaxNormalizer> norms;
    norms.emplace_back(0.0, 150.0);
    norms.emplace_back(0.0, 1.0);
    const auction::ScaledProductScoring scoring(25.0, 2, norms);
    const auction::AdditiveCost cost({6.0 / 150.0, 2.0});
    const stats::UniformDistribution theta(0.5, 1.5);

    constexpr std::size_t kNodes = 400;
    constexpr std::size_t kWinners = 12;
    constexpr std::uint64_t kSeed = 77;

    auction::EquilibriumConfig eq;
    eq.num_bidders = kNodes;
    eq.num_winners = kWinners;
    const auction::EquilibriumStrategy strategy =
        auction::EquilibriumSolver(scoring, cost, theta, {1.0, 0.05}, {150.0, 1.0}, eq)
            .solve();

    auto make_store = [&](std::uint64_t seed) {
        mec::PopulationSpec spec;
        spec.dynamics.resource_jitter = 0.1;
        spec.dynamics.theta_jitter = 0.03;
        mec::SyntheticDataSpec data;
        data.data_lo = 20.0;
        data.data_hi = 150.0;
        stats::Rng rng(seed);
        return mec::PopulationStore(kNodes, data, theta, spec, rng);
    };

    // Per-node bid latencies: a deterministic straggler profile between
    // 0 and ~110 ms — arrival order is NOT node order, which is the point.
    std::vector<double> latencies(kNodes);
    for (std::size_t i = 0; i < kNodes; ++i)
        latencies[i] = 0.005 * static_cast<double>((i * 13 + 5) % 23);

    auction::WinnerDeterminationConfig wd;
    wd.num_winners = kWinners;
    wd.full_ranking = false;

    const mec::QualityLayout layout{mec::ResourceDim::data_size,
                                    mec::ResourceDim::category_proportion};

    // 1. Equality: no deadline, no quorum — the streaming round collects
    // every bid and must reproduce the batch round exactly.
    mec::MecPopulation batch_pop(make_store(kSeed));
    mec::MecPopulation stream_pop(make_store(kSeed));
    mec::AuctionSelector batch(batch_pop, scoring, strategy, wd,
                               mec::data_category_extractor(),
                               /*data_dimension=*/0);
    mec::StreamingRoundConfig open_ended;
    open_ended.bid_latencies_s = latencies;
    mec::StreamingAuctionSelector streaming(stream_pop, scoring, strategy, wd, layout,
                                            /*data_dimension=*/0, open_ended);

    std::cout << "Batch vs streaming market, N=" << kNodes << ", K=" << kWinners
              << " (closed-loop arrivals, no close trigger):\n";
    core::TablePrinter table(std::cout, {"round", "arrived", "close_s", "churn",
                                         "top_score", "winners_equal"});
    stats::Rng batch_rng(kSeed ^ 0xf00dULL);
    stats::Rng stream_rng(kSeed ^ 0xf00dULL);
    for (std::size_t round = 1; round <= 4; ++round) {
        const auction::AuctionOutcome& a =
            batch.run_auction_round(round, kWinners, batch_rng);
        const auction::AuctionOutcome& b =
            streaming.run_auction_round(round, kWinners, stream_rng);
        bool equal = a.winners.size() == b.winners.size();
        for (std::size_t i = 0; equal && i < a.winners.size(); ++i) {
            equal = a.winners[i].node == b.winners[i].node
                    && a.winners[i].payment == b.winners[i].payment;
        }
        table.row({static_cast<double>(round),
                   static_cast<double>(streaming.last_arrived()),
                   streaming.last_close_time_s(),
                   static_cast<double>(streaming.last_head_churn()),
                   b.winners.front().score, equal ? 1.0 : 0.0},
                  3);
    }

    // 2. Deadline close: the same market with a 60 ms bid deadline — the
    // straggler tail misses the round, and the market prices whoever made
    // the cut instead of stalling.
    mec::MecPopulation deadline_pop(make_store(kSeed));
    mec::StreamingRoundConfig with_deadline = open_ended;
    with_deadline.deadline_s = 0.06;
    mec::StreamingAuctionSelector cutoff(deadline_pop, scoring, strategy, wd, layout,
                                         /*data_dimension=*/0, with_deadline);
    std::cout << "\nSame market with a 60 ms bid deadline:\n";
    stats::Rng cutoff_rng(kSeed ^ 0xf00dULL);
    for (std::size_t round = 1; round <= 3; ++round) {
        const auction::AuctionOutcome& outcome =
            cutoff.run_auction_round(round, kWinners, cutoff_rng);
        std::cout << "  round " << round << ": closed on "
                  << auction::to_string(cutoff.last_close_reason()) << " at "
                  << cutoff.last_close_time_s() << " s, " << cutoff.last_arrived()
                  << "/" << kNodes << " bids arrived, " << outcome.winners.size()
                  << " winners\n";
    }

    // 3. Open-loop traffic: Poisson arrivals at 2000 bids/s racing a
    // 64-bid quorum against a 33 ms deadline — per round, whichever trigger
    // fires first closes the auction.
    mec::MecPopulation poisson_pop(make_store(kSeed));
    mec::StreamingRoundConfig traffic;
    traffic.process = mec::ArrivalProcess::poisson;
    traffic.arrival_rate_hz = 2000.0;
    traffic.quorum = 64;
    traffic.deadline_s = 0.033;
    mec::StreamingAuctionSelector service(poisson_pop, scoring, strategy, wd, layout,
                                          /*data_dimension=*/0, traffic);
    std::cout << "\nPoisson traffic at 2000 bids/s, quorum 64 vs 33 ms deadline:\n";
    stats::Rng service_rng(kSeed ^ 0xabcULL);
    for (std::size_t round = 1; round <= 5; ++round) {
        (void)service.run_auction_round(round, kWinners, service_rng);
        std::cout << "  round " << round << ": closed on "
                  << auction::to_string(service.last_close_reason()) << " at "
                  << service.last_close_time_s() << " s with "
                  << service.last_arrived() << " bids\n";
    }

    // 4. Sharded streaming with the adaptive quorum controller: 4 market
    // shards close each round through the virtual carve + head merge (the
    // same composition the cross-process aggregator streams over its
    // pipes, bit-identical to the monolithic close), while the controller
    // walks an over-ambitious 256-bid quorum down from the deadline-close
    // telemetry — the schedule is a pure function of the close reasons, so
    // a replay reproduces it byte for byte.
    mec::MecPopulation sharded_pop(make_store(kSeed));
    mec::StreamingRoundConfig sharded = traffic;
    sharded.quorum = 256;
    sharded.shards = 4;
    sharded.adaptive_quorum = true;
    mec::StreamingAuctionSelector tuned(sharded_pop, scoring, strategy, wd, layout,
                                        /*data_dimension=*/0, sharded);
    std::cout << "\nSharded streaming (4 shards) with timing.adaptive_quorum:\n";
    stats::Rng tuned_rng(kSeed ^ 0xadaULL);
    for (std::size_t round = 1; round <= 10; ++round) {
        (void)tuned.run_auction_round(round, kWinners, tuned_rng);
        std::cout << "  round " << round << ": opened with quorum "
                  << tuned.last_quorum() << ", closed on "
                  << auction::to_string(tuned.last_close_reason()) << " at "
                  << tuned.last_close_time_s() << " s\n";
    }
    std::cout << "  quorum schedule:";
    for (const std::size_t q : tuned.quorum_schedule()) std::cout << ' ' << q;
    std::cout << '\n';

    std::cout << "\nThe streaming close reproduced the batch auction bit for bit;\n"
                 "deadline and quorum bound how long a round stays open, not what\n"
                 "the market decides about the bids that arrived — and the adaptive\n"
                 "controller retunes the quorum between rounds without touching\n"
                 "either invariant.\n";
    return 0;
}
