// MEC marketplace: drive the auction layer directly (no federated learning)
// to watch the market clear round by round — the scenario the paper's
// introduction motivates. Thirty heterogeneous edge nodes with drifting
// resources bid (data, bandwidth) each round; the aggregator broadcasts a
// Leontief (perfect-complementary) rule and buys the best K bundles.
//
// Shows: bid formation from the Nash-equilibrium strategy (Theorem 1),
// resource-capped bids, per-round payments, aggregator profit and social
// surplus.

#include <algorithm>
#include <iostream>

#include "fmore/auction/game.hpp"
#include "fmore/auction/validators.hpp"
#include "fmore/core/report.hpp"
#include "fmore/mec/edge_node.hpp"
#include "fmore/stats/normalizer.hpp"

int main() {
    using namespace fmore;

    // The aggregator prices data volume against bandwidth as complements:
    // an edge node is only as useful as its weaker resource.
    std::vector<stats::MinMaxNormalizer> norms;
    norms.emplace_back(1000.0, 5000.0); // data samples
    norms.emplace_back(5.0, 100.0);     // Mbps
    const auction::LeontiefScoring scoring({12.0, 12.0}, norms);
    const auction::AdditiveCost cost({4.0 / 5000.0, 3.0 / 100.0});
    const stats::UniformDistribution theta(0.5, 1.5);

    auction::EquilibriumConfig eq;
    eq.num_bidders = 30;
    eq.num_winners = 6;
    const auction::EquilibriumSolver solver(scoring, cost, theta, {1000.0, 5.0},
                                            {5000.0, 100.0}, eq);
    const auction::EquilibriumStrategy strategy = solver.solve();

    std::cout << "Equilibrium bid schedule (what a node offers/asks by type):\n";
    core::TablePrinter schedule(std::cout,
                                {"theta", "data_q1", "bw_q2", "ask_p", "win_prob"});
    for (double th = 0.5; th <= 1.51; th += 0.25) {
        const auto q = strategy.quality(th);
        schedule.row({th, q[0], q[1], strategy.payment(th),
                      strategy.win_probability_at(th)},
                     2);
    }

    // A small marketplace with resource-capped nodes: caps drift each round.
    stats::Rng rng(2024);
    std::vector<mec::EdgeNode> nodes;
    for (std::size_t i = 0; i < 30; ++i) {
        mec::ResourceState caps;
        caps.data_size = rng.uniform(1000.0, 5000.0);
        caps.bandwidth_mbps = rng.uniform(5.0, 100.0);
        caps.category_proportion = 1.0;
        caps.cpu_cores = 4.0;
        nodes.emplace_back(i, theta.sample(rng), caps, caps);
    }

    auction::WinnerDeterminationConfig wd;
    wd.num_winners = 6;
    const auction::WinnerDetermination determination(scoring, wd);
    mec::ResourceDynamics dynamics;
    dynamics.resource_jitter = 0.15;
    // Nodes also re-estimate their private cost between rounds — reason (2)
    // in the paper's walk-through for why bids change.
    dynamics.theta_jitter = 0.08;

    std::cout << "\nMarketplace rounds (capped bids, first-price payments):\n";
    core::TablePrinter market(std::cout, {"round", "clearing_score", "mean_payment",
                                          "aggregator_V", "surplus"});
    for (int round = 1; round <= 5; ++round) {
        std::vector<auction::Bid> bids;
        for (const mec::EdgeNode& node : nodes) {
            auction::QualityVector q = strategy.quality(node.theta());
            q[0] = std::min(q[0], node.resources().data_size);
            q[1] = std::min(q[1], node.resources().bandwidth_mbps);
            bids.push_back({node.id(), q, strategy.payment_for(q, node.theta())});
        }
        const auction::AuctionOutcome outcome = determination.run(bids, rng);
        double mean_payment = 0.0;
        double profit = 0.0;
        double surplus = 0.0;
        for (const auction::Winner& w : outcome.winners) {
            const auction::Bid& bid = bids[w.node];
            mean_payment += w.payment / 6.0;
            profit += scoring.quality_score(bid.quality) - w.payment;
            surplus += scoring.quality_score(bid.quality)
                       - cost.cost(bid.quality, nodes[w.node].theta());
        }
        market.row({static_cast<double>(round), outcome.winners.back().score,
                    mean_payment, profit, surplus},
                   3);
        for (mec::EdgeNode& node : nodes) node.evolve(dynamics, 0.5, 1.5, rng);
    }

    std::cout << "\nEvery winner's payment covered its private cost (IR), and the\n"
                 "complementary rule bought balanced (data, bandwidth) bundles.\n";
    return 0;
}
