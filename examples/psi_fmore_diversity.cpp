// psi-FMore in the catastrophic regime of Section III.C: tiny shards and
// stable resources, where plain FMore keeps re-selecting the same few
// top-score nodes and the global model overfits their labels. Randomizing
// acceptance (psi < 1) trades per-round score for data diversity.
//
// Prints: winner-set churn, label coverage per round and final accuracy for
// psi in {1.0, 0.6, 0.3}, plus the Pr(psi) feasibility formula.

#include <iostream>
#include <set>

#include "fmore/auction/win_probability.hpp"
#include "fmore/core/report.hpp"
#include "fmore/core/simulation.hpp"

int main() {
    using namespace fmore;

    core::SimulationConfig config = core::default_simulation(core::DatasetKind::mnist_f);
    config.rounds = 16;
    config.data_lo = 8;   // tiny shards: the paper's "local data size is
    config.data_hi = 30;  // tremendously small" scenario
    config.resource_jitter = 0.0; // stable resources
    config.theta_jitter = 0.0;

    std::cout << "psi-FMore under tiny stable shards (MNIST-F, N=" << config.num_nodes
              << ", K=" << config.winners << ")\n\n";

    core::TablePrinter table(std::cout, {"psi", "distinct_winners", "mean_labels/round",
                                         "final_acc"});
    for (const double psi : {1.0, 0.6, 0.3}) {
        config.psi = psi;
        core::SimulationTrial trial(config, 0);
        const fl::RunResult run =
            trial.run(psi >= 1.0 ? core::Strategy::fmore : core::Strategy::psi_fmore);

        std::set<std::size_t> distinct;
        double label_cover = 0.0;
        for (const auto& round : run.rounds) {
            std::set<int> labels;
            for (const auto& sel : round.selection.selected) {
                distinct.insert(sel.client);
                const auto& shard = trial.shards()[sel.client];
                for (std::size_t c = 0; c < shard.label_count.size(); ++c) {
                    if (shard.label_count[c] > 0) labels.insert(static_cast<int>(c));
                }
            }
            label_cover += static_cast<double>(labels.size())
                           / static_cast<double>(run.rounds.size());
        }
        table.row({core::fixed(psi, 1), std::to_string(distinct.size()),
                   core::fixed(label_cover, 1), core::percent(run.final_accuracy())});
    }

    std::cout << "\nFeasibility of the scan (Pr[K winners found among N nodes]):\n";
    core::TablePrinter pr(std::cout, {"psi", "Pr_negbinomial", "paper_formula"});
    for (const double psi : {0.2, 0.4, 0.6, 0.8}) {
        pr.row({psi,
                auction::psi_success_probability_negbinomial(psi, config.num_nodes,
                                                             config.winners),
                auction::psi_success_probability_paper(psi, config.num_nodes,
                                                       config.winners)},
               4);
    }
    std::cout << "\n(The paper's printed formula uses C(i+K, i) and exceeds 1 — the\n"
                 "negative-binomial column is the normalized probability; see\n"
                 "bench/ablation_auction and tests for the comparison.)\n";
    return 0;
}
