// psi-FMore in the catastrophic regime of Section III.C: tiny shards and
// stable resources, where plain FMore keeps re-selecting the same few
// top-score nodes and the global model overfits their labels. Randomizing
// acceptance (psi < 1) trades per-round score for data diversity.
//
// Prints: winner-set churn, label coverage per round and final accuracy for
// psi in {1.0, 0.6, 0.3}, plus the Pr(psi) feasibility formula.

#include <iostream>
#include <set>

#include "fmore/auction/win_probability.hpp"
#include "fmore/core/experiment.hpp"
#include "fmore/core/report.hpp"

int main() {
    using namespace fmore;

    core::ExperimentSpec spec = core::default_experiment(core::DatasetKind::mnist_f);
    spec.training.rounds = 16;
    spec.population.data_lo = 8;   // tiny shards: the paper's "local data size is
    spec.population.data_hi = 30;  // tremendously small" scenario
    spec.population.resource_jitter = 0.0; // stable resources
    spec.population.theta_jitter = 0.0;

    std::cout << "psi-FMore under tiny stable shards (MNIST-F, N="
              << spec.population.num_nodes << ", K=" << spec.auction.winners << ")\n\n";

    core::TablePrinter table(std::cout, {"psi", "distinct_winners", "mean_labels/round",
                                         "final_acc"});
    for (const double psi : {1.0, 0.6, 0.3}) {
        spec.auction.psi = psi;
        core::ExperimentTrial trial(spec, 0);
        const fl::RunResult run = trial.run(psi >= 1.0 ? "fmore" : "psi_fmore");

        std::set<std::size_t> distinct;
        double label_cover = 0.0;
        for (const auto& round : run.rounds) {
            std::set<int> labels;
            for (const auto& sel : round.selection.selected) {
                distinct.insert(sel.client);
                const auto& shard = trial.shards()[sel.client];
                for (std::size_t c = 0; c < shard.label_count.size(); ++c) {
                    if (shard.label_count[c] > 0) labels.insert(static_cast<int>(c));
                }
            }
            label_cover += static_cast<double>(labels.size())
                           / static_cast<double>(run.rounds.size());
        }
        table.row({core::fixed(psi, 1), std::to_string(distinct.size()),
                   core::fixed(label_cover, 1), core::percent(run.final_accuracy())});
    }

    std::cout << "\nFeasibility of the scan (Pr[K winners found among N nodes]):\n";
    core::TablePrinter pr(std::cout, {"psi", "Pr_negbinomial", "paper_formula"});
    for (const double psi : {0.2, 0.4, 0.6, 0.8}) {
        pr.row({psi,
                auction::psi_success_probability_negbinomial(
                    psi, spec.population.num_nodes, spec.auction.winners),
                auction::psi_success_probability_paper(psi, spec.population.num_nodes,
                                                       spec.auction.winners)},
               4);
    }
    std::cout << "\n(The paper's printed formula uses C(i+K, i) and exceeds 1 — the\n"
                 "negative-binomial column is the normalized probability; see\n"
                 "bench/ablation_auction and tests for the comparison.)\n";
    return 0;
}
