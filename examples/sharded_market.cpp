// Sharded market: the FMore auction partitioned over S contiguous node
// ranges — the execution strategy behind the scale/10m preset. One
// coordinator draws the round's drift salt, every shard runs the fused
// collect + score + top-K pass over its own rows, and the S bounded heads
// merge under the market's strict total order. Same winners, same
// payments, bit for bit — sharding changes where the work runs, never
// what the market decides.
//
// Shows: owned-mode ShardedAuctionSelector over PopulationStore::split,
// per-round equality against the monolithic AuctionSelector, graceful
// degradation when a shard misses its bid deadline (the K winners are
// refilled from the responsive shards and the drop is reported), and the
// supervised multi-process marketplace: a deterministic fault plan
// crashing a forked worker mid-run, the supervisor respawning it, and the
// rejoined rounds matching a never-faulted twin bit for bit.

#include <iostream>

#include "fmore/auction/cost.hpp"
#include "fmore/auction/equilibrium.hpp"
#include "fmore/auction/scoring.hpp"
#include "fmore/core/report.hpp"
#include "fmore/mec/auction_selector.hpp"
#include "fmore/mec/shard_aggregator.hpp"
#include "fmore/mec/sharded_selector.hpp"
#include "fmore/stats/normalizer.hpp"
#include "fmore/util/fault_injector.hpp"

int main() {
    using namespace fmore;

    // The simulator's market (Section V.A): two-dimensional scaled-product
    // scoring over (data size, category diversity), linear private costs.
    std::vector<stats::MinMaxNormalizer> norms;
    norms.emplace_back(0.0, 150.0);
    norms.emplace_back(0.0, 1.0);
    const auction::ScaledProductScoring scoring(25.0, 2, norms);
    const auction::AdditiveCost cost({6.0 / 150.0, 2.0});
    const stats::UniformDistribution theta(0.5, 1.5);

    constexpr std::size_t kNodes = 3'000;
    constexpr std::size_t kWinners = 16;
    constexpr std::size_t kShards = 6;

    auction::EquilibriumConfig eq;
    eq.num_bidders = kNodes;
    eq.num_winners = kWinners;
    const auction::EquilibriumStrategy strategy =
        auction::EquilibriumSolver(scoring, cost, theta, {1.0, 0.05}, {150.0, 1.0}, eq)
            .solve();

    // Two independently built but identically seeded populations: one stays
    // whole for the monolithic selector, one is split into 6 shard stores.
    // Per-node drift streams are keyed by (salt, GLOBAL node id), so a
    // shard is the market restricted to its range — never a different one.
    auto make_store = [&](std::uint64_t seed) {
        mec::PopulationSpec spec;
        spec.dynamics.resource_jitter = 0.1;
        spec.dynamics.theta_jitter = 0.03;
        mec::SyntheticDataSpec data;
        data.data_lo = 20.0;
        data.data_hi = 150.0;
        stats::Rng rng(seed);
        return mec::PopulationStore(kNodes, data, theta, spec, rng);
    };
    constexpr std::uint64_t kSeed = 77;

    auction::WinnerDeterminationConfig wd;
    wd.num_winners = kWinners;
    wd.full_ranking = false; // fused O(N log K) per shard

    mec::MecPopulation population(make_store(kSeed));
    mec::AuctionSelector monolithic(population, scoring, strategy, wd,
                                    mec::data_category_extractor(),
                                    /*data_dimension=*/0);
    mec::ShardedAuctionSelector sharded(
        make_store(kSeed).split_even(kShards), scoring, strategy, wd,
        {mec::ResourceDim::data_size, mec::ResourceDim::category_proportion},
        /*data_dimension=*/0);

    std::cout << "Monolithic vs sharded market, N=" << kNodes << ", K=" << kWinners
              << ", S=" << kShards << ":\n";
    core::TablePrinter table(std::cout, {"round", "top_score", "mean_payment",
                                         "winners_equal"});
    stats::Rng mono_rng(kSeed ^ 0xf00dULL);
    stats::Rng shard_rng(kSeed ^ 0xf00dULL);
    for (std::size_t round = 1; round <= 5; ++round) {
        const auction::AuctionOutcome& mono =
            monolithic.run_auction_round(round, kWinners, mono_rng);
        const auction::AuctionOutcome& shard =
            sharded.run_auction_round(round, kWinners, shard_rng);
        bool equal = mono.winners.size() == shard.winners.size();
        double mean_payment = 0.0;
        for (std::size_t i = 0; equal && i < mono.winners.size(); ++i) {
            equal = mono.winners[i].node == shard.winners[i].node
                    && mono.winners[i].payment == shard.winners[i].payment;
        }
        for (const auction::Winner& w : shard.winners) {
            mean_payment += w.payment / static_cast<double>(shard.winners.size());
        }
        table.row({static_cast<double>(round), shard.winners.front().score,
                   mean_payment, equal ? 1.0 : 0.0},
                  3);
    }

    // Degradation: give shard 2 a virtual 9s bid latency against a 1s
    // deadline from round 3 on. The round proceeds over the other five
    // shards — K winners still clear, none from the silent range — and the
    // drop is surfaced instead of stalling the market.
    sharded.set_shard_timeout(1.0);
    sharded.set_virtual_latency([](std::size_t shard, std::size_t round) {
        return shard == 2 && round >= 3 ? 9.0 : 0.1;
    });
    std::cout << "\nSame market with shard 2 missing its 1s deadline from round 3:\n";
    for (std::size_t round = 1; round <= 4; ++round) {
        stats::Rng rng(kSeed ^ (0xbeefULL + round));
        const auction::AuctionOutcome& outcome =
            sharded.run_auction_round(round, kWinners, rng);
        std::cout << "  round " << round << ": " << outcome.winners.size()
                  << " winners, dropped shards:";
        if (sharded.last_dropped_shards().empty()) std::cout << " none";
        for (const std::size_t s : sharded.last_dropped_shards())
            std::cout << ' ' << s;
        std::cout << '\n';
    }

    // Supervision: the same market as forked worker processes, with a
    // deterministic fault plan crashing shard 1 before it replies in round
    // 2. The supervisor evicts it (the round degrades, it does not stall),
    // respawns it at the next round boundary, and replays the salt history
    // over the fresh worker — so every later round matches a twin
    // aggregator that never saw a fault, bit for bit.
    std::cout << "\nMulti-process market, shard 1 crashing in round 2 "
                 "(supervised respawn):\n";
    auction::WinnerDeterminationConfig wire_wd = wd;
    wire_wd.tie_break = auction::TieBreak::salted; // the wire contract
    mec::ShardSupervisorConfig supervisor;
    supervisor.faults = util::FaultInjector::from_events(
        {{/*shard=*/1, /*round=*/2, util::FaultKind::crash_before_reply, 0.0}});
    supervisor.max_respawns = 2;
    constexpr std::size_t kProcShards = 4;
    mec::ProcessShardAggregator supervised(
        make_store(kSeed), scoring, strategy, wire_wd,
        {mec::ResourceDim::data_size, mec::ResourceDim::category_proportion},
        kProcShards, /*shard_timeout_s=*/1.0, supervisor);
    mec::ProcessShardAggregator never_faulted(
        make_store(kSeed), scoring, strategy, wire_wd,
        {mec::ResourceDim::data_size, mec::ResourceDim::category_proportion},
        kProcShards, /*shard_timeout_s=*/30.0);
    stats::Rng sup_rng(kSeed ^ 0xcafeULL);
    stats::Rng twin_rng(kSeed ^ 0xcafeULL);
    for (std::size_t round = 1; round <= 4; ++round) {
        const auction::AuctionOutcome& a =
            supervised.run_round(round, kWinners, sup_rng);
        const auction::AuctionOutcome& b =
            never_faulted.run_round(round, kWinners, twin_rng);
        bool equal = a.winners.size() == b.winners.size();
        for (std::size_t i = 0; equal && i < a.winners.size(); ++i)
            equal = a.winners[i].node == b.winners[i].node
                    && a.winners[i].payment == b.winners[i].payment;
        const mec::ShardHealth& health = supervised.last_health();
        std::cout << "  round " << round << ": " << a.winners.size()
                  << " winners, evictions " << health.evictions << ", respawns "
                  << health.respawns << ", live " << health.live_shards << '/'
                  << kProcShards << ", matches clean twin: "
                  << (equal ? "yes"
                            : supervised.last_dropped_shards().empty()
                                  ? "NO"
                                  : "no (degraded round, by design)")
                  << '\n';
    }

    std::cout << "\nThe merged shard heads reproduced the monolithic auction bit for\n"
                 "bit; a slow shard degrades the round instead of blocking it, a\n"
                 "crashed worker is respawned and rejoins bit-identically.\n";
    return 0;
}
