// run_scenario: drive any named or file-based experiment from the command
// line — the one CLI the whole experiment surface hangs off.
//
//   run_scenario --list                          # what scenarios exist
//   run_scenario paper/fig04                     # reproduce Fig. 4's world
//   run_scenario paper/fig12 --trials 2          # testbed, 2 trials
//   run_scenario paper/fig05 --policies fmore,randfl
//   run_scenario paper/fig11 --set auction.psi=0.3 --policies psi_fmore
//   run_scenario sim/default --set auction.mechanism=second_score
//   run_scenario --file my_scenario.txt          # key=value spec file
//   run_scenario paper/fig04 --dump              # print the resolved spec
//   run_scenario paper/fig10 --sweep auction.winners=5,25 --policies fmore
//
// `--set section.key=value` overrides any spec field; `--dump` prints the
// resolved key=value form (paste it into a file to fork a scenario).
// `--sweep key=a,b,c` (repeatable) grids the scenario over spec overrides
// and prints one table per grid point — the generic replacement for the
// hand-rolled parameter loops the fig09/fig10/fig11 benches used to carry.
// The
// output table for `paper/fig04` with the default policies is bit-identical
// to bench/fig04_mnist_o's measured table for the same seed and trial
// count — both drive core::averaged_experiment over the same registered
// spec and print through core::print_accuracy_loss.

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "fmore/core/report.hpp"
#include "fmore/core/run_checkpoint.hpp"
#include "fmore/core/scenarios.hpp"
#include "fmore/core/sweep.hpp"
#include "fmore/core/trials.hpp"

namespace {

using namespace fmore;

int usage(std::ostream& out, int exit_code) {
    out << "usage: run_scenario <scenario> [options]\n"
           "       run_scenario --file <spec.txt> [options]\n"
           "       run_scenario --list\n"
           "options:\n"
           "  --policies a,b,c   selection policies to run (default:\n"
           "                     fmore,randfl,fixfl; testbed: fmore,randfl)\n"
           "  --trials N         trials per policy (default: FMORE_BENCH_TRIALS or 3)\n"
           "  --set key=value    override a spec field (repeatable)\n"
           "  --sweep key=a,b,c  grid over spec overrides (repeatable; cross\n"
           "                     product, one result table per grid point)\n"
           "  --dump             print the resolved spec (pre-sweep) and exit\n"
           "  --validate         validate the resolved spec and exit\n"
           "  --resume DIR       continue interrupted runs from the newest valid\n"
           "                     checkpoints under DIR (a timing.checkpoint_dir);\n"
           "                     the spec is recovered from the checkpoints, so\n"
           "                     no scenario/--file is given\n"
           "  --health           print the end-of-run fl::RoundHealth roll-up\n"
           "                     (close-reason mix, tail close latency, shard\n"
           "                     supervision counters) per policy and trial\n";
    return exit_code;
}

/// Newest valid checkpoint under any `<policy>-t<trial>` run directory of
/// `base` — the spec source for `--resume` (every run of one scenario
/// records the same normalized spec text).
std::optional<core::RunCheckpoint> newest_checkpoint_under(const std::string& base) {
    std::optional<core::RunCheckpoint> best;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(base, ec)) {
        if (!entry.is_directory()) continue;
        std::optional<core::RunCheckpoint> found =
            core::find_latest_valid(entry.path().string());
        if (found && (!best || found->completed_rounds > best->completed_rounds))
            best = std::move(found);
    }
    return best;
}

void print_health(std::ostream& out, const std::string& policy, std::size_t trial,
                  const fl::RoundHealth& h) {
    out << "  " << policy << " trial " << trial << ": rounds=" << h.rounds
        << " streaming=" << h.streaming_rounds;
    if (h.streaming_rounds > 0) {
        char buffer[128];
        std::snprintf(buffer, sizeof buffer,
                      " quorum=%.0f%% deadline=%.0f%% close_p50=%.2fs close_p99=%.2fs",
                      100.0 * h.quorum_close_fraction, 100.0 * h.deadline_close_fraction,
                      h.close_p50_s, h.close_p99_s);
        out << buffer;
    }
    out << " degraded=" << h.rounds_degraded << " evictions=" << h.shard_evictions
        << " respawns=" << h.shard_respawns << " corrupt_frames=" << h.corrupt_frames
        << " frame_retries=" << h.frame_retries << '\n';
}

std::vector<std::string> split_commas(const std::string& text) {
    std::vector<std::string> out;
    std::string token;
    std::istringstream stream(text);
    while (std::getline(stream, token, ',')) {
        if (!token.empty()) out.push_back(token);
    }
    return out;
}

} // namespace

int main(int argc, char** argv) {
    std::string scenario;
    std::string spec_file;
    std::string policies_arg;
    std::size_t trials = core::bench_trial_count();
    std::vector<std::pair<std::string, std::string>> overrides;
    std::vector<core::SweepAxis> sweep_axes;
    std::string resume_dir;
    bool dump = false;
    bool validate_only = false;
    bool show_health = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "run_scenario: " << flag << " needs a value\n";
                std::exit(usage(std::cerr, 2));
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
        if (arg == "--list") {
            const auto entries = core::ScenarioRegistry::instance().list();
            std::size_t width = 0;
            for (const auto& entry : entries) width = std::max(width, entry.name.size());
            for (const auto& entry : entries) {
                std::cout << "  " << entry.name
                          << std::string(width - entry.name.size() + 2, ' ')
                          << entry.description << '\n';
            }
            return 0;
        }
        if (arg == "--file") {
            spec_file = next_value("--file");
        } else if (arg == "--policies") {
            policies_arg = next_value("--policies");
        } else if (arg == "--trials") {
            const std::string value = next_value("--trials");
            char* end = nullptr;
            errno = 0;
            const unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0'
                || value.find('-') != std::string::npos || errno == ERANGE
                || parsed == 0 || parsed > 100000) {
                std::cerr << "run_scenario: --trials needs a positive integer, got '"
                          << value << "'\n";
                return 2;
            }
            trials = static_cast<std::size_t>(parsed);
        } else if (arg == "--set") {
            const std::string assignment = next_value("--set");
            const std::size_t eq = assignment.find('=');
            if (eq == std::string::npos) {
                std::cerr << "run_scenario: --set expects key=value, got '" << assignment
                          << "'\n";
                return 2;
            }
            overrides.emplace_back(assignment.substr(0, eq), assignment.substr(eq + 1));
        } else if (arg == "--sweep") {
            const std::string axis = next_value("--sweep");
            try {
                sweep_axes.push_back(core::parse_sweep_axis(axis));
            } catch (const std::exception& error) {
                std::cerr << "run_scenario: " << error.what() << '\n';
                return 2;
            }
        } else if (arg == "--resume") {
            resume_dir = next_value("--resume");
        } else if (arg == "--health") {
            show_health = true;
        } else if (arg == "--dump") {
            dump = true;
        } else if (arg == "--validate") {
            validate_only = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "run_scenario: unknown option '" << arg << "'\n";
            return usage(std::cerr, 2);
        } else if (scenario.empty()) {
            scenario = arg;
        } else {
            std::cerr << "run_scenario: more than one scenario named ('" << scenario
                      << "' and '" << arg << "')\n";
            return 2;
        }
    }
    if (scenario.empty() && spec_file.empty() && resume_dir.empty())
        return usage(std::cerr, 2);
    if ((!scenario.empty() && !spec_file.empty())
        || (!resume_dir.empty() && (!scenario.empty() || !spec_file.empty()))) {
        std::cerr << "run_scenario: a scenario, --file and --resume are all spec "
                     "sources; pick exactly one\n";
        return 2;
    }
    if (!resume_dir.empty() && !sweep_axes.empty()) {
        std::cerr << "run_scenario: --resume continues one recorded spec and "
                     "cannot be combined with --sweep\n";
        return 2;
    }

    try {
        core::ExperimentSpec spec;
        if (!resume_dir.empty()) {
            const std::optional<core::RunCheckpoint> newest =
                newest_checkpoint_under(resume_dir);
            if (!newest) {
                std::cerr << "run_scenario: no valid checkpoint under '" << resume_dir
                          << "' (expected <policy>-t<trial>/ckpt_round_*.fmsnap "
                             "run directories)\n";
                return 1;
            }
            spec = core::parse_experiment_spec(newest->spec_text);
        } else if (!spec_file.empty()) {
            std::ifstream in(spec_file);
            if (!in) {
                std::cerr << "run_scenario: cannot open spec file '" << spec_file
                          << "'\n";
                return 1;
            }
            std::ostringstream text;
            text << in.rdbuf();
            spec = core::parse_experiment_spec(text.str());
        } else {
            spec = core::named_scenario(scenario);
        }
        for (const auto& [key, value] : overrides) {
            core::apply_key_value(spec, key, value);
        }

        if (dump) {
            std::cout << core::to_text(spec);
            return 0;
        }

        const std::vector<core::SweepPoint> points =
            core::expand_sweep(spec, sweep_axes);
        for (const core::SweepPoint& point : points) {
            const std::vector<std::string> problems = core::validate(point.spec);
            if (problems.empty()) continue;
            std::cerr << "run_scenario: the resolved spec"
                      << (point.label.empty() ? "" : " (" + point.label + ")")
                      << " has " << problems.size() << " problem(s):\n";
            for (const std::string& problem : problems)
                std::cerr << "  - " << problem << '\n';
            return 1;
        }
        if (validate_only) {
            std::cout << (points.size() == 1 ? "spec OK\n"
                                             : std::to_string(points.size())
                                                   + " sweep point(s) OK\n");
            return 0;
        }

        std::vector<std::string> policies = split_commas(policies_arg);
        if (policies.empty()) {
            policies = spec.kind == core::ExperimentKind::testbed
                           ? std::vector<std::string>{"fmore", "randfl"}
                           : std::vector<std::string>{"fmore", "randfl", "fixfl"};
        }

        const std::string title = !scenario.empty()  ? scenario
                                  : !spec_file.empty() ? spec_file
                                                       : resume_dir + " (resumed)";
        bool first = true;
        for (const core::SweepPoint& point : points) {
            if (!first) std::cout << '\n';
            first = false;
            const core::ExperimentSpec& run_spec = point.spec;
            std::cout << title;
            if (!point.label.empty()) std::cout << " [" << point.label << ']';
            std::cout << ": " << core::to_string(run_spec.training.dataset)
                      << ", N=" << run_spec.population.num_nodes
                      << ", K=" << run_spec.auction.winners << ", "
                      << run_spec.training.rounds << " rounds, " << trials
                      << " trial(s) averaged";
            if (run_spec.timing.round_mode != fl::RoundMode::sync) {
                std::cout << ", " << fl::to_string(run_spec.timing.round_mode)
                          << " rounds (min_updates="
                          << run_spec.timing.min_updates << ")";
            }
            std::cout << "\n\n";

            std::vector<core::NamedSeries> all;
            std::vector<std::pair<std::string, std::vector<fl::RunResult>>> raw_runs;
            for (const std::string& policy : policies) {
                std::vector<fl::RunResult> runs;
                if (resume_dir.empty()) {
                    runs = core::run_experiment_trials(run_spec, policy, trials);
                } else {
                    // Resume-or-fresh per (policy, trial): a run directory
                    // with a valid checkpoint continues mid-tape; anything
                    // else (missing, torn, corrupted) starts from round 1.
                    runs = core::run_trials(trials, [&](std::size_t t) {
                        core::ExperimentTrial trial(run_spec, t);
                        const std::optional<core::RunCheckpoint> ckpt =
                            core::find_latest_valid(
                                core::checkpoint_run_dir(resume_dir, policy, t));
                        return trial.run_resumable(policy,
                                                   ckpt ? &*ckpt : nullptr);
                    });
                }
                all.push_back(core::NamedSeries{core::policy_display_name(policy),
                                                core::average_runs(runs)});
                if (show_health) raw_runs.emplace_back(policy, std::move(runs));
            }
            core::print_accuracy_loss(std::cout, all);

            if (show_health) {
                std::cout << "\nround health:\n";
                for (const auto& [policy, runs] : raw_runs)
                    for (std::size_t t = 0; t < runs.size(); ++t)
                        print_health(std::cout, policy, t, runs[t].health());
            }

            if (run_spec.timing.enabled) {
                std::cout << "\ncumulative training time by round (seconds):\n";
                std::vector<std::string> headers{"round"};
                for (const core::NamedSeries& s : all) headers.push_back(s.name + "_s");
                core::TablePrinter table(std::cout, headers);
                for (std::size_t r = 0; r < all.front().series.rounds(); ++r) {
                    std::vector<double> row{static_cast<double>(r + 1)};
                    for (const core::NamedSeries& s : all)
                        row.push_back(s.series.cumulative_seconds[r]);
                    table.row(row, 2);
                }
            }

            std::cout << "\nfinal accuracy:";
            for (const core::NamedSeries& s : all) {
                std::cout << ' ' << s.name << ' '
                          << core::percent(s.series.accuracy.back());
            }
            std::cout << '\n';
        }
        return 0;
    } catch (const std::exception& error) {
        std::cerr << "run_scenario: " << error.what() << '\n';
        return 1;
    }
}
