// Quickstart: run the paper's core comparison — FMore vs RandFL vs FixFL on
// a non-IID image workload — in a few lines using the experiment layer.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/quickstart

#include <cstdlib>
#include <iostream>

#include "fmore/core/experiment.hpp"
#include "fmore/core/report.hpp"

int main(int argc, char** argv) {
    using namespace fmore;

    core::ExperimentSpec spec = core::default_experiment(core::DatasetKind::mnist_o);
    spec.training.rounds = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 12;

    std::cout << "FMore quickstart: " << core::to_string(spec.training.dataset) << ", N="
              << spec.population.num_nodes << ", K=" << spec.auction.winners << ", "
              << spec.training.rounds << " rounds\n\n";

    core::ExperimentTrial trial(spec, /*trial_index=*/0);
    const fl::RunResult fmore = trial.run("fmore");
    const fl::RunResult rand = trial.run("randfl");
    const fl::RunResult fix = trial.run("fixfl");

    core::TablePrinter table(std::cout,
                             {"round", "FMore_acc", "RandFL_acc", "FixFL_acc",
                              "FMore_loss", "RandFL_loss", "FixFL_loss"});
    for (std::size_t r = 0; r < spec.training.rounds; ++r) {
        table.row({static_cast<double>(r + 1), fmore.rounds[r].test_accuracy,
                   rand.rounds[r].test_accuracy, fix.rounds[r].test_accuracy,
                   fmore.rounds[r].test_loss, rand.rounds[r].test_loss,
                   fix.rounds[r].test_loss});
    }

    std::cout << "\nFinal accuracy: FMore " << core::percent(fmore.final_accuracy())
              << ", RandFL " << core::percent(rand.final_accuracy()) << ", FixFL "
              << core::percent(fix.final_accuracy()) << "\n";
    std::cout << "Mean winner payment (FMore, last round): "
              << core::fixed(fmore.rounds.back().mean_winner_payment) << "\n";
    return 0;
}
