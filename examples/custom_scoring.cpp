// Custom scoring rules: how an aggregator designs its bid-ask.
//
// Walks through the three utility families of Section III.A (perfect
// substitution, perfect complements, Cobb-Douglas), shows how the same
// bidder population responds to each, and uses Proposition 4 to pick
// Cobb-Douglas weights that buy a target resource mix.

#include <cmath>
#include <iostream>
#include <memory>

#include "fmore/auction/equilibrium.hpp"
#include "fmore/auction/validators.hpp"
#include "fmore/core/report.hpp"
#include "fmore/stats/normalizer.hpp"

int main() {
    using namespace fmore;

    // Two resources, both normalized to [0, 1]: GPU-hours and bandwidth.
    const stats::UniformDistribution theta(0.5, 1.5);
    const auction::AdditiveCost cost({0.6, 0.4});

    struct Candidate {
        const char* description;
        std::unique_ptr<auction::ScoringRule> rule;
    };
    std::vector<Candidate> candidates;
    candidates.push_back({"perfect substitution  s = 1.5 q1 + 1.0 q2",
                          std::make_unique<auction::AdditiveScoring>(
                              std::vector<double>{1.5, 1.0})});
    candidates.push_back({"perfect complements   s = min(2.4 q1, 2.4 q2)",
                          std::make_unique<auction::LeontiefScoring>(
                              std::vector<double>{2.4, 2.4})});
    candidates.push_back({"Cobb-Douglas          s = 2.2 q1^0.6 q2^0.4 (via coeff)",
                          std::make_unique<auction::CobbDouglasScoring>(
                              std::vector<double>{0.6, 0.4})});

    std::cout << "How the same bidder type (theta = 1.0) answers each rule:\n\n";
    core::TablePrinter table(std::cout, {"q1*", "q2*", "ask_p", "surplus_u0"});
    for (const Candidate& candidate : candidates) {
        std::cout << candidate.description << '\n';
        auction::EquilibriumConfig eq;
        eq.num_bidders = 40;
        eq.num_winners = 8;
        const auto strategy =
            auction::EquilibriumSolver(*candidate.rule, cost, theta, {0.01, 0.01},
                                       {1.0, 1.0}, eq)
                .solve();
        const auto q = strategy.quality(1.0);
        table.row({q[0], q[1], strategy.payment(1.0), strategy.max_surplus(1.0)}, 3);
    }

    // Proposition 4: the aggregator wants resources in the ratio 3:1 under
    // estimated cost coefficients beta = (0.6, 0.4). Solve for alphas:
    // q1/q2 = (a1 b2)/(a2 b1) = 3  ->  a1/a2 = 3 b1/b2 = 4.5.
    std::cout << "\nProposition 4 guidance: target mix q1:q2 = 3:1 under "
                 "beta=(0.6, 0.4)\n";
    const std::vector<double> alphas{4.5 / 5.5, 1.0 / 5.5};
    const std::vector<double> betas{0.6, 0.4};
    const auto q_star = auction::proposition4_optimal_qualities(alphas, betas,
                                                                /*theta=*/1.0,
                                                                /*budget=*/2.0);
    std::cout << "  alphas = (" << core::fixed(alphas[0], 3) << ", "
              << core::fixed(alphas[1], 3) << ")  ->  q* = ("
              << core::fixed(q_star[0], 3) << ", " << core::fixed(q_star[1], 3)
              << "), ratio " << core::fixed(q_star[0] / q_star[1], 2) << ":1\n";

    std::cout << "\nDesign notes (Section III.A):\n"
                 "  * additive rules suit substitutable resources (CPU vs GPU);\n"
                 "  * Leontief suits jointly-required resources (compute + uplink);\n"
                 "  * Cobb-Douglas lets Proposition 4 dial the purchased mix.\n";
    return 0;
}
